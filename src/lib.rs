//! Umbrella package for the PUFatt reproduction workspace.
//!
//! This crate exists so that the repository root can host workspace-wide
//! integration tests (`tests/`) and runnable examples (`examples/`). All
//! functionality lives in the member crates and is re-exported through the
//! [`pufatt`] crate.

pub use pufatt;
pub use pufatt_alupuf as alupuf;
pub use pufatt_ecc as ecc;
pub use pufatt_modeling as modeling;
pub use pufatt_pe32 as pe32;
pub use pufatt_silicon as silicon;
pub use pufatt_swatt as swatt;
