//! Golden-vector regression tests for the simulation engine.
//!
//! The exact response bits of a fixed (design, chip, challenge, noise-seed)
//! tuple are pinned here. Any change to the event-driven simulator, the
//! delay model, the arbiter noise streams or the batch scheduling that
//! alters observable behaviour trips these tests — refactors of the hot
//! path (scratch reuse, CSR sharing, parallel batching) must reproduce
//! these words bit for bit.

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufChip, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHIP_SEED: u64 = 0x601D;
const CHALLENGE_SEED: u64 = 0x1CE;
const NOISE_SEED: u64 = 0xBEEF;

/// Device responses for the fixed tuple, one 32-bit word per challenge.
const GOLDEN_DEVICE: [u64; 8] = [
    0x93680be8, 0x8b2c19ec, 0x83ecfbe9, 0x836c1ffc, 0x9378bf7e, 0x836c8fe2, 0x83fc9bea, 0x93ec3bee,
];

/// Noise-free emulator responses for the same tuple.
const GOLDEN_EMULATOR: [u64; 8] = [
    0x83e81fe8, 0x8bac1be8, 0x83ecbbe8, 0x83e89bf8, 0x93e8bffc, 0x832c9fe2, 0x93fc1bea, 0x93ec3bea,
];

fn fixture() -> (AluPufDesign, PufChip, Vec<Challenge>) {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(CHIP_SEED);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let mut chrng = ChaCha8Rng::seed_from_u64(CHALLENGE_SEED);
    let challenges = (0..8).map(|_| Challenge::random(&mut chrng, 32)).collect();
    (design, chip, challenges)
}

#[test]
fn device_batch_reproduces_golden_bits() {
    let (design, chip, challenges) = fixture();
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let got = inst.evaluate_batch(&challenges, NOISE_SEED, 1);
    let bits: Vec<u64> = got.iter().map(|r| r.bits()).collect();
    assert_eq!(bits, GOLDEN_DEVICE, "device golden vectors drifted");
}

#[test]
fn emulator_batch_reproduces_golden_bits() {
    let (design, chip, challenges) = fixture();
    let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
    let bits: Vec<u64> = emu.emulate_batch(&challenges, 1).iter().map(|r| r.bits()).collect();
    assert_eq!(bits, GOLDEN_EMULATOR, "emulator golden vectors drifted");
}

#[test]
fn golden_bits_are_thread_count_invariant() {
    let (design, chip, challenges) = fixture();
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
    for threads in [1, 4, 8] {
        let dev: Vec<u64> = inst
            .evaluate_batch(&challenges, NOISE_SEED, threads)
            .iter()
            .map(|r| r.bits())
            .collect();
        assert_eq!(dev, GOLDEN_DEVICE, "device batch diverged at {threads} threads");
        let emu_bits: Vec<u64> = emu.emulate_batch(&challenges, threads).iter().map(|r| r.bits()).collect();
        assert_eq!(emu_bits, GOLDEN_EMULATOR, "emulator batch diverged at {threads} threads");
    }
}

#[test]
fn device_and_emulator_agree_modulo_arbiter_noise() {
    // The emulator shares the device's delay table; they may differ only on
    // metastable bits flipped by the device's arbiter noise.
    let width = 32u32;
    let mut noisy_bits = 0u32;
    for (d, e) in GOLDEN_DEVICE.iter().zip(&GOLDEN_EMULATOR) {
        noisy_bits += (d ^ e).count_ones();
    }
    let agreement = 1.0 - f64::from(noisy_bits) / f64::from(width * 8);
    assert!(agreement > 0.80, "device/emulator agreement {agreement}");

    // And the pinned vectors still reflect live behaviour, not stale data:
    // fresh evaluations must land within the same noise envelope.
    let (design, chip, challenges) = fixture();
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let live = pufatt_alupuf::emulate::emulation_agreement(&inst, &emu, &challenges, &mut rng);
    assert!(live > 0.80, "live device/emulator agreement {live}");
}
