//! End-to-end integration tests: the full protocol across crates.

use pufatt::adversary::{memory_copy_attack, overclock_evasion_attack, proxy_attack};
use pufatt::enroll::{enroll, enroll_fleet};
use pufatt::protocol::{
    provision, puf_limited_clock, run_session, run_session_with_retry, AttestationRequest, Channel,
};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn params() -> SwattParams {
    SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 }
}

#[test]
fn honest_attestation_across_devices() {
    let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 500, 3).expect("supported width");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (i, enrolled) in fleet.iter().enumerate() {
        let clock = puf_limited_clock(enrolled, 1.10, 96, 900 + i as u64);
        let (mut prover, verifier, _) =
            provision(enrolled, params(), clock, Channel::sensor_link(), 40 + i as u64, 1.10).expect("provisioning");
        let (verdict, attempts) = run_session_with_retry(&mut prover, &verifier, &mut rng, 3).expect("session");
        assert!(verdict.accepted, "device {i} must attest: {verdict}");
        assert!(attempts <= 2, "device {i} needed {attempts} attempts");
    }
}

#[test]
fn every_attack_is_rejected() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 700, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 7);
    let channel = Channel::sensor_link();
    let (mut prover, verifier, _) = provision(&enrolled, params(), clock, channel, 9, 1.10).expect("provisioning");
    let region = prover.expected_region();
    let request = AttestationRequest { x0: 0x1000, r0: 0x2000 };

    let mc = memory_copy_attack(enrolled.device_handle(70), &verifier, &region, request).expect("attack");
    assert!(!mc.verdict.accepted && mc.verdict.response_ok && !mc.verdict.time_ok, "{mc}");

    let oc = overclock_evasion_attack(enrolled.device_handle(71), &verifier, &region, request, 4.0).expect("attack");
    assert!(!oc.verdict.accepted && oc.verdict.time_ok && !oc.verdict.response_ok, "{oc}");

    let honest_report = prover.attest(request).expect("honest report");
    let px = proxy_attack(&verifier, &honest_report, channel);
    assert!(!px.verdict.accepted && !px.verdict.time_ok, "{px}");
}

#[test]
fn impersonation_with_same_design_fails() {
    // Two chips from the same mask set: the protocol binds to silicon, not
    // to the design.
    let genuine = enroll(AluPufConfig::paper_32bit(), 800, 0).expect("supported width");
    let imposter = enroll(AluPufConfig::paper_32bit(), 801, 0).expect("supported width");
    let clock = puf_limited_clock(&genuine, 1.10, 96, 3);
    let (_, verifier, _) = provision(&genuine, params(), clock, Channel::sensor_link(), 5, 1.10).expect("provisioning");
    let (mut imposter_prover, _, _) =
        provision(&imposter, params(), clock, Channel::sensor_link(), 5, 1.10).expect("provisioning");
    let mut rejected = 0;
    for seed in 0..3u32 {
        let request = AttestationRequest { x0: seed, r0: seed.wrapping_mul(77) };
        let (verdict, _) = run_session(&mut imposter_prover, &verifier, request).expect("session");
        rejected += (!verdict.response_ok) as u32;
    }
    assert_eq!(rejected, 3, "the imposter must never produce a verifiable response");
}

#[test]
fn helper_data_volume_matches_parameters() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 900, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 1);
    let p = params();
    let (mut prover, verifier, _) =
        provision(&enrolled, p, clock, Channel::sensor_link(), 2, 1.10).expect("provisioning");
    let report = prover.attest(AttestationRequest { x0: 1, r0: 2 }).expect("report");
    assert_eq!(report.helper_words.len() as u32, p.puf_queries() * 8);
    assert_eq!(report.helper_words.len(), verifier.expected_helper_words());
    // Helper words are 26-bit syndromes.
    assert!(report.helper_words.iter().all(|&h| h < (1 << 26)));
}

#[test]
fn time_bound_scales_with_rounds() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 950, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 1);
    let small = SwattParams { region_bits: 9, rounds: 512, puf_interval: 16 };
    let large = SwattParams { region_bits: 9, rounds: 2048, puf_interval: 16 };
    let (_, v_small, c_small) =
        provision(&enrolled, small, clock, Channel::sensor_link(), 2, 1.10).expect("provisioning");
    let (_, v_large, c_large) =
        provision(&enrolled, large, clock, Channel::sensor_link(), 2, 1.10).expect("provisioning");
    assert!(c_large > 3 * c_small, "cycles must scale with rounds");
    assert!(v_large.delta_s > v_small.delta_s, "delta must scale with work");
}

#[test]
fn verifier_rejects_truncated_helper_stream() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 960, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 1);
    let (mut prover, verifier, _) =
        provision(&enrolled, params(), clock, Channel::sensor_link(), 2, 1.10).expect("provisioning");
    let request = AttestationRequest { x0: 3, r0: 4 };
    let mut report = prover.attest(request).expect("report");
    report.helper_words.truncate(report.helper_words.len() / 2);
    let compute_s = prover.clock().duration_ns(report.cycles) * 1e-9;
    let verdict = verifier.verify(request, &report, compute_s);
    assert!(!verdict.response_ok, "truncated helper data must not verify");
}
