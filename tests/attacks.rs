//! Integration tests for the security extensions: hardware tampering,
//! side-channel leakage, aging, and the modeling attack — all against the
//! full enrolled-device stack.

use pufatt::enroll::enroll;
use pufatt::sidechannel::{leakage_correlation, PowerModel};
use pufatt_alupuf::aging::{age_chip, AgingModel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use pufatt_alupuf::tamper::Tamper;
use pufatt_silicon::env::Environment;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn divergence_from_emulator(
    enrolled: &pufatt::EnrolledDevice,
    chip: &pufatt_alupuf::device::PufChip,
    n: usize,
    seed: u64,
) -> f64 {
    let verifier = enrolled.verifier_puf().expect("supported width");
    let instance = PufInstance::new(enrolled.design(), chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut hd = 0u32;
    for _ in 0..n {
        let ch = Challenge::random(&mut rng, 32);
        hd += instance.evaluate_voted(ch, 5, &mut rng).hamming_distance(verifier.emulate(ch));
    }
    hd as f64 / (n as f64 * 32.0)
}

#[test]
fn tamper_divergence_scales_with_magnitude() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x300, 0).expect("supported width");
    let noise_floor = divergence_from_emulator(&enrolled, enrolled.chip(), 40, 1);
    let mut last = noise_floor;
    for (i, extra) in [0.03, 0.08, 0.15].into_iter().enumerate() {
        let chip = Tamper::ProbeLoad { stride: 3, extra_fraction: extra }.apply(enrolled.design(), enrolled.chip());
        let d = divergence_from_emulator(&enrolled, &chip, 40, 2 + i as u64);
        assert!(d >= noise_floor, "tampering cannot reduce divergence below the floor");
        last = last.max(d);
    }
    assert!(
        last > noise_floor + 0.05,
        "heavy tampering must be clearly visible: floor {noise_floor}, max {last}"
    );
}

#[test]
fn aging_and_tampering_are_distinguishable_in_magnitude() {
    // One year of NBTI moves responses far less than a capability-adding
    // modification — the verifier can budget for aging without opening the
    // door to tampering.
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x301, 0).expect("supported width");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let aged = age_chip(enrolled.design(), enrolled.chip(), &AgingModel::nbti_45nm(), 8760.0, &mut rng);
    let islanded = Tamper::VoltageIsland {
        from: 0,
        to: enrolled.design().netlist().gate_count() / 2,
        delta_vth_v: -0.02,
    }
    .apply(enrolled.design(), enrolled.chip());
    let d_aged = divergence_from_emulator(&enrolled, &aged, 40, 4);
    let d_tampered = divergence_from_emulator(&enrolled, &islanded, 40, 5);
    assert!(
        d_tampered > d_aged + 0.05,
        "tampering ({d_tampered}) must stand out from a year of aging ({d_aged})"
    );
}

#[test]
fn sidechannel_leak_tracks_real_responses_and_dual_rail_does_not() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x302, 0).expect("supported width");
    let instance = PufInstance::new(enrolled.design(), enrolled.chip(), Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let raw: Vec<u64> = (0..400)
        .map(|_| instance.evaluate(Challenge::random(&mut rng, 32), &mut rng).bits())
        .collect();
    let hw: Vec<f64> = raw.iter().map(|y| y.count_ones() as f64).collect();
    let leaky: Vec<f64> = raw
        .iter()
        .map(|&y| PowerModel::HammingWeight { noise_sigma: 1.5 }.sample(y, 32, &mut rng))
        .collect();
    let hardened: Vec<f64> = raw
        .iter()
        .map(|&y| PowerModel::DualRail { noise_sigma: 1.5 }.sample(y, 32, &mut rng))
        .collect();
    assert!(leakage_correlation(&hw, &leaky) > 0.6);
    assert!(leakage_correlation(&hw, &hardened).abs() < 0.15);
}

#[test]
fn modeling_attack_cannot_forge_an_attestation_grade_prediction() {
    // Even at its best, the raw-CRP model's per-response accuracy implies a
    // negligible chance of predicting a full 32-bit response exactly — let
    // alone the dozens of obfuscated z values an attestation needs.
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x303, 0).expect("supported width");
    let instance = PufInstance::new(enrolled.design(), enrolled.chip(), Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let report = pufatt_modeling::attack::attack_raw(
        &instance,
        pufatt_modeling::attack::FeatureMap::CarryAware,
        250,
        120,
        &pufatt_modeling::lr::TrainConfig::default(),
        &mut rng,
    );
    // P(all 32 bits right) under independent per-bit accuracies.
    let p_exact: f64 = report.per_bit_accuracy.iter().product();
    assert!(report.mean_accuracy() > 0.6, "the per-bit attack itself works");
    assert!(p_exact < 0.05, "whole-response prediction must stay improbable: {p_exact}");
}

#[test]
fn uniform_probe_load_is_the_stealthiest_tamper() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x304, 0).expect("supported width");
    let uniform = Tamper::ProbeLoad { stride: 1, extra_fraction: 0.08 }.apply(enrolled.design(), enrolled.chip());
    let lopsided = Tamper::ProbeLoad { stride: 2, extra_fraction: 0.08 }.apply(enrolled.design(), enrolled.chip());
    let d_uniform = divergence_from_emulator(&enrolled, &uniform, 40, 8);
    let d_lopsided = divergence_from_emulator(&enrolled, &lopsided, 40, 9);
    assert!(
        d_uniform < d_lopsided,
        "symmetric loading must cancel differentially: uniform {d_uniform} vs lopsided {d_lopsided}"
    );
}

#[test]
fn power_model_is_deterministic_given_rng() {
    let model = PowerModel::HammingWeight { noise_sigma: 2.0 };
    let a: Vec<f64> = {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        (0..50).map(|i| model.sample(i as u64 * 7919, 32, &mut rng)).collect()
    };
    let b: Vec<f64> = {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        (0..50).map(|i| model.sample(i as u64 * 7919, 32, &mut rng)).collect()
    };
    assert_eq!(a, b);
}
