//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning the workspace crates.

use proptest::prelude::*;
use pufatt::obfuscate::{fold_halves, obfuscate, phase1_pair};
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_ecc::gf2::{BitMatrix, BitVec};
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::{Decoder, ReverseFuzzyExtractor};
use pufatt_pe32::isa::{AluOp, BranchCond, Instruction, Reg};
use pufatt_silicon::gen::ripple_carry_adder;
use pufatt_silicon::netlist::Netlist;
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::sta::ArrivalTimes;
use pufatt_swatt::checksum::{compute, NoPuf, SwattParams};
use pufatt_swatt::prg::TFunction;

// ---------------------------------------------------------------- silicon

proptest! {
    /// The event simulator's final values equal the zero-delay functional
    /// evaluation for any adder stimulus (delays shift *when*, never *what*).
    #[test]
    fn sim_final_values_match_functional(a in any::<u16>(), b in any::<u16>(), from_a in any::<u16>(), from_b in any::<u16>()) {
        let mut nl = Netlist::new();
        let p = ripple_carry_adder(&mut nl, 16, "alu");
        let delays: Vec<f64> = (0..nl.gate_count()).map(|i| 5.0 + (i % 11) as f64).collect();
        let from = nl.input_vector(&[(&p.a, from_a as u64), (&p.b, from_b as u64)]);
        let to = nl.input_vector(&[(&p.a, a as u64), (&p.b, b as u64)]);
        let result = EventSimulator::new(&nl, &delays).run_transition(&from, &to);
        prop_assert_eq!(result.word(&p.sum), ((a as u64) + (b as u64)) & 0xFFFF);
        // And no net settles after the STA bound.
        let sta = ArrivalTimes::compute(&nl, &delays);
        prop_assert!(result.max_settle_ps() <= sta.critical_path_ps() + 1e-9);
    }
}

/// Builds a random combinational netlist from a recipe: `inputs` primary
/// inputs, then gates whose operands are chosen (mod available nets) from
/// already-created nets — always a valid DAG by construction.
fn build_random_netlist(inputs: usize, recipe: &[(u8, u16, u16)]) -> Netlist {
    use pufatt_silicon::netlist::GateKind;
    let mut nl = Netlist::new();
    let mut nets: Vec<pufatt_silicon::netlist::NetId> = (0..inputs).map(|i| nl.input(format!("in{i}"))).collect();
    for &(kind, a, b) in recipe {
        let ka = GateKind::ALL[kind as usize % GateKind::ALL.len()];
        let na = nets[a as usize % nets.len()];
        let nb = nets[b as usize % nets.len()];
        let out = match ka.arity() {
            1 => nl.gate(ka, &[na]),
            _ => nl.gate(ka, &[na, nb]),
        };
        nets.push(out);
    }
    nl.mark_output(*nets.last().expect("nonempty"), "out");
    nl
}

proptest! {
    /// For ANY random combinational circuit: the event simulator's final
    /// values equal functional evaluation, settle times respect the STA
    /// bound, and the netlist validates.
    #[test]
    fn random_netlists_are_consistent(
        inputs in 1usize..6,
        recipe in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..40),
        stimulus in any::<u64>(),
        from in any::<u64>(),
    ) {
        let nl = build_random_netlist(inputs, &recipe);
        prop_assert!(nl.validate().is_ok());
        let delays: Vec<f64> = (0..nl.gate_count()).map(|i| 3.0 + (i % 13) as f64).collect();
        let bits = |word: u64| -> Vec<bool> { (0..inputs).map(|i| (word >> i) & 1 == 1).collect() };
        let from_v = bits(from);
        let to_v = bits(stimulus);
        let result = EventSimulator::new(&nl, &delays).run_transition(&from_v, &to_v);
        let functional = nl.evaluate(&to_v);
        prop_assert_eq!(&result.values, &functional, "sim must settle to the functional values");
        let sta = ArrivalTimes::compute(&nl, &delays);
        prop_assert!(result.max_settle_ps() <= sta.critical_path_ps() + 1e-9);
    }
}

// -------------------------------------------------------------------- ecc

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

proptest! {
    /// XOR is associative/commutative and distance is a metric compatible
    /// with it: d(a, b) = weight(a ⊕ b).
    #[test]
    fn bitvec_xor_distance(a in bitvec_strategy(48), b in bitvec_strategy(48)) {
        prop_assert_eq!(a.distance(&b), a.xor(&b).weight());
        prop_assert_eq!(a.xor(&b), b.xor(&a));
        prop_assert_eq!(a.xor(&a).weight(), 0);
    }

    /// Matrix–vector multiplication is linear.
    #[test]
    fn matrix_mul_is_linear(rows in prop::collection::vec(bitvec_strategy(20), 6), x in bitvec_strategy(20), y in bitvec_strategy(20)) {
        let m = BitMatrix::from_rows(rows);
        let lhs = m.mul_vec(&x.xor(&y));
        let rhs = m.mul_vec(&x).xor(&m.mul_vec(&y));
        prop_assert_eq!(lhs, rhs);
    }

    /// Every syndrome the code can emit is solvable, and the solution's
    /// syndrome round-trips.
    #[test]
    fn coset_solving_round_trips(word in any::<u32>()) {
        let code = ReedMuller1::bch_32_6_16();
        let y = BitVec::from_word(word as u64, 32);
        let s = code.code().syndrome(&y).unwrap();
        let v = code.code().coset_representative(&s).unwrap();
        prop_assert_eq!(code.code().syndrome(&v).unwrap(), s);
    }

    /// RM(1,5) ML decoding corrects EVERY pattern of weight ≤ 7 on any
    /// codeword — the guarantee the attestation's reliability rests on.
    #[test]
    fn rm_corrects_all_weight_le7(msg in 0u64..64, positions in prop::collection::btree_set(0usize..32, 0..=7)) {
        let code = ReedMuller1::bch_32_6_16();
        let cw = code.encode(&BitVec::from_word(msg, 6)).unwrap();
        let mut noisy = cw.clone();
        for &p in &positions {
            noisy.flip(p);
        }
        let (decoded, _) = code.decode_ml(&noisy).unwrap();
        prop_assert_eq!(decoded.as_word(), msg);
    }

    /// The reverse fuzzy extractor reconstructs the prover's exact noisy
    /// word whenever the noise stays within the decoding radius.
    #[test]
    fn reverse_fe_reconstruction(reference in any::<u32>(), positions in prop::collection::btree_set(0usize..32, 0..=7)) {
        let fe = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());
        let y_ref = BitVec::from_word(reference as u64, 32);
        let mut noisy = y_ref.clone();
        for &p in &positions {
            noisy.flip(p);
        }
        let helper = fe.generate(&noisy).unwrap();
        let rec = fe.reproduce(&y_ref, &helper).unwrap();
        prop_assert_eq!(rec.response, noisy);
        prop_assert_eq!(rec.corrected_errors, positions.len());
    }
}

// ------------------------------------------------------------------- pe32

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    let reg = (0u8..16).prop_map(Reg::new);
    let alu = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
    ]);
    let cond = prop::sample::select(vec![
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ]);
    prop_oneof![
        (alu.clone(), reg.clone(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| Instruction::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (alu, reg.clone(), reg.clone(), any::<i16>()).prop_map(|(op, rd, rs1, imm)| Instruction::AluImm {
            op,
            rd,
            rs1,
            imm
        }),
        (reg.clone(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (reg.clone(), reg.clone(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instruction::Lw { rd, rs1, imm }),
        (reg.clone(), reg.clone(), any::<i16>()).prop_map(|(rs2, rs1, imm)| Instruction::Sw { rs2, rs1, imm }),
        (cond, reg.clone(), reg.clone(), any::<i16>()).prop_map(|(cond, rs1, rs2, imm)| Instruction::Branch {
            cond,
            rs1,
            rs2,
            imm
        }),
        (reg.clone(), any::<i16>()).prop_map(|(rd, imm)| Instruction::Jal { rd, imm }),
        (reg.clone(), reg.clone()).prop_map(|(rd, rs1)| Instruction::Jalr { rd, rs1 }),
        Just(Instruction::Halt),
        Just(Instruction::Nop),
        Just(Instruction::Pstart),
        Just(Instruction::Pend),
        reg.clone().prop_map(|rd| Instruction::Pread { rd }),
        (reg, any::<i16>()).prop_map(|(rd, imm)| Instruction::Phelp { rd, imm }),
    ]
}

proptest! {
    /// Every instruction encodes and decodes losslessly.
    #[test]
    fn isa_encode_decode_round_trip(inst in instruction_strategy()) {
        prop_assert_eq!(Instruction::decode(inst.encode()), Ok(inst));
    }

    /// The textual form of any instruction re-assembles to the same word
    /// (the disassembler and assembler are inverse).
    #[test]
    fn display_reassembles(inst in instruction_strategy()) {
        let text = inst.to_string();
        let program = pufatt_pe32::asm::assemble(&text).map_err(|e| TestCaseError::fail(format!("{e}: `{text}`")))?;
        prop_assert_eq!(program.image, vec![inst.encode()], "text was `{}`", text);
    }

    /// ALU semantics agree with the host CPU for the operations that have
    /// native counterparts.
    #[test]
    fn alu_matches_host(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        prop_assert_eq!(AluOp::Sll.apply(a, b), a.wrapping_shl(b & 31));
    }
}

// ------------------------------------------------------------------ swatt

proptest! {
    /// Any single-word change inside the attested region changes the
    /// checksum (with the default 4x coverage, collisions would require a
    /// state-cycle coincidence; none exist over this input space).
    #[test]
    fn checksum_detects_any_single_word_change(seed in any::<u32>(), pos in 0usize..256, flip in 1u32..) {
        let params = SwattParams { region_bits: 8, rounds: 1024, puf_interval: 0 };
        let memory: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut tampered = memory.clone();
        tampered[pos] ^= flip;
        let clean = compute(&memory, seed, 77, &params, &mut NoPuf);
        let dirty = compute(&tampered, seed, 77, &params, &mut NoPuf);
        prop_assert_ne!(clean.response, dirty.response);
    }

    /// The T-function is a bijection step: distinct states map to distinct
    /// successors.
    #[test]
    fn tfunction_is_injective(x in any::<u32>(), y in any::<u32>()) {
        prop_assume!(x != y);
        prop_assert_ne!(TFunction::new(x).next(), TFunction::new(y).next());
    }
}

// ------------------------------------------------------------- core/obfus

proptest! {
    /// The obfuscation network is XOR-linear in every input.
    #[test]
    fn obfuscation_linearity(ys in prop::collection::vec(any::<u32>(), 8), delta in any::<u32>(), idx in 0usize..8) {
        let base: [u64; 8] = std::array::from_fn(|i| ys[i] as u64);
        let mut shifted = base;
        shifted[idx] ^= delta as u64;
        let lhs = obfuscate(&shifted, 32);
        let expected_delta = if idx % 2 == 0 {
            phase1_pair(delta as u64, 0, 32)
        } else {
            phase1_pair(0, delta as u64, 32)
        };
        prop_assert_eq!(lhs, obfuscate(&base, 32) ^ expected_delta);
    }

    /// Folding is an involution-compatible projection: folding a folded
    /// value's zero-extension gives the fold of its halves.
    #[test]
    fn fold_is_half_projection(y in any::<u32>()) {
        let folded = fold_halves(y as u64, 32);
        prop_assert!(folded <= 0xFFFF);
        prop_assert_eq!(folded, ((y ^ (y >> 16)) & 0xFFFF) as u64);
    }

    /// Challenge packing round-trips at every width.
    #[test]
    fn challenge_packing(a in any::<u64>(), b in any::<u64>(), w in 1usize..=64) {
        let ch = Challenge::new(a, b, w);
        prop_assert_eq!(Challenge::from_packed(ch.to_packed(w), w), ch);
    }

    /// Response Hamming distance is a metric.
    #[test]
    fn response_distance_metric(x in any::<u32>(), y in any::<u32>(), z in any::<u32>()) {
        let (rx, ry, rz) = (RawResponse::new(x as u64, 32), RawResponse::new(y as u64, 32), RawResponse::new(z as u64, 32));
        prop_assert_eq!(rx.hamming_distance(ry), ry.hamming_distance(rx));
        prop_assert!(rx.hamming_distance(rz) <= rx.hamming_distance(ry) + ry.hamming_distance(rz));
        prop_assert_eq!(rx.hamming_distance(rx), 0);
    }
}
