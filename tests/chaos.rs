//! Chaos-layer properties spanning the workspace: the BCH t = 7 boundary,
//! replay determinism of fault-injected sessions, and worker-count
//! invariance of whole chaos campaigns.
//!
//! These are the robustness layer's contract tests: everything the
//! fault-injection machinery reports must be reproducible (same seed, same
//! plan ⇒ same verdicts, whatever the parallelism) and must respect the
//! paper's error-correction boundary (≤ 7 flipped bits always recover,
//! heavier bursts are never mis-accepted).

use proptest::prelude::*;
use pufatt::enroll::{enroll, EnrolledDevice};
use pufatt::protocol::{provision, Channel};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::noise::exact_weight_error;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::ReverseFuzzyExtractor;
use pufatt_faults::{
    apply_device_faults, run_chaos_session, run_noise_sweep, FaultPlan, LossyChannel, RetryPolicy, SweepConfig, PAPER_T,
};
use pufatt_fleet::{run_campaign, small_test_config, ChaosConfig, FleetStatus};
use pufatt_pe32::cpu::Clock;
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

// ------------------------------------------------------- the t = 7 boundary

proptest! {
    /// Any error of weight ≤ t on any reference word is corrected exactly,
    /// within the verifier's bounded-distance rule.
    #[test]
    fn errors_within_t_always_recover(reference in any::<u32>(), weight in 0u32..=PAPER_T, pos_seed in any::<u64>()) {
        let extractor = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());
        let mut rng = ChaCha8Rng::seed_from_u64(pos_seed);
        let reference = BitVec::from_word(u64::from(reference), 32);
        let noisy = reference.xor(&exact_weight_error(32, weight as usize, &mut rng));
        let helper = extractor.generate(&noisy).expect("generate");
        let rec = extractor.reproduce(&reference, &helper).expect("weight <= t must reconstruct");
        prop_assert_eq!(&rec.response, &noisy, "reconstruction must be exact at weight {}", weight);
        prop_assert!(rec.corrected_errors <= PAPER_T as usize, "corrected {} > t", rec.corrected_errors);
    }

    /// No error heavier than t ever survives the bounded-distance rule: the
    /// decode either fails, lands on a different word, or reports more than
    /// t corrections — which the verifier rejects as out-of-tolerance.
    #[test]
    fn errors_beyond_t_never_pass_the_bound(reference in any::<u32>(), weight in (PAPER_T + 1)..=16u32, pos_seed in any::<u64>()) {
        let extractor = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());
        let mut rng = ChaCha8Rng::seed_from_u64(pos_seed);
        let reference = BitVec::from_word(u64::from(reference), 32);
        let noisy = reference.xor(&exact_weight_error(32, weight as usize, &mut rng));
        let within_bound = extractor
            .generate(&noisy)
            .and_then(|helper| extractor.reproduce(&reference, &helper))
            .map(|rec| rec.response == noisy && rec.corrected_errors <= PAPER_T as usize)
            .unwrap_or(false);
        prop_assert!(!within_bound, "weight {} must never pass as <= t corrections", weight);
    }
}

/// Full protocol sessions agree with the extractor-level boundary: the
/// sweep recovers every weight ≤ t and accepts nothing at weight 9.
#[test]
fn session_level_boundary_matches_the_paper() {
    let config = SweepConfig {
        seed: 0xB0B,
        extractor_trials: 30,
        sessions_per_weight: 3,
        max_weight: 9,
    };
    let sweep = run_noise_sweep(&config).expect("sweep runs");
    assert!(sweep.boundary_holds(), "t = 7 boundary must hold:\n{sweep}");
    assert_eq!(sweep.row(9).expect("row").accepts, 0, "9-bit bursts are never mis-accepted:\n{sweep}");
}

// --------------------------------------------------- session replayability

fn chaos_enrolled() -> &'static EnrolledDevice {
    static ENROLLED: OnceLock<EnrolledDevice> = OnceLock::new();
    ENROLLED.get_or_init(|| enroll(AluPufConfig::paper_32bit(), 42, 0).expect("enroll"))
}

proptest! {
    /// One fault-injected session replays bit-for-bit from (plan, seed):
    /// identical verdicts, attempt counts, drop tallies, and elapsed time.
    #[test]
    fn chaos_sessions_replay_from_their_seed(
        seed in any::<u64>(),
        drop in 0.0f64..0.6,
        flip in 0.0f64..0.03,
        jitter_ms in 0.0f64..2.0,
    ) {
        let plan = FaultPlan::clean(seed).with_drops(drop).with_bit_flips(flip).with_jitter_ms(jitter_ms);
        let run = || {
            let params = SwattParams { region_bits: 8, rounds: 128, puf_interval: 32 };
            let (mut prover, verifier, _) =
                provision(chaos_enrolled(), params, Clock::new(100.0), Channel::sensor_link(), 7, 1.10)
                    .expect("provision");
            apply_device_faults(&mut prover, &plan);
            let channel = LossyChannel::from_plan(verifier.channel(), &plan);
            let policy = RetryPolicy::for_verifier(&verifier, 3);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng)
        };
        prop_assert_eq!(run(), run());
    }
}

// ------------------------------------------- campaign worker invariance

proptest! {
    /// A chaos campaign's verdict sequence is a pure function of (seed,
    /// plan): per-device records and the final snapshot are identical at
    /// any worker count.
    #[test]
    fn chaos_campaigns_are_worker_count_invariant(
        seed in any::<u32>(),
        workers in 2usize..5,
        drop in 0.0f64..0.5,
        flip in 0.0f64..0.02,
    ) {
        let chaos = Some(ChaosConfig {
            plan: FaultPlan::clean(u64::from(seed)).with_drops(drop).with_bit_flips(flip),
            flaky_fraction: 0.5,
        });
        let mut serial = small_test_config(4, 1, u64::from(seed));
        serial.chaos = chaos.clone();
        let mut parallel = small_test_config(4, workers, u64::from(seed));
        parallel.chaos = chaos;
        let a = run_campaign(&serial).expect("serial campaign");
        let b = run_campaign(&parallel).expect("parallel campaign");
        prop_assert_eq!(&a.device_records, &b.device_records, "records must not depend on workers");
        prop_assert_eq!(&a.snapshot, &b.snapshot);
    }
}

/// Heavy loss drives flaky devices into quarantine while clean devices
/// stay active — the graceful-degradation contract, end to end.
#[test]
fn flaky_devices_quarantine_and_clean_devices_stay_active() {
    let mut cfg = small_test_config(12, 3, 0xCAFE);
    cfg.sessions_per_device = 4;
    cfg.tamper_fraction = 0.0;
    cfg.policy.quarantine_after = 2;
    cfg.policy.revoke_after = 6;
    cfg.chaos = Some(ChaosConfig {
        plan: FaultPlan::clean(0xCAFE).with_drops(0.9).with_jitter_ms(1.0),
        flaky_fraction: 0.4,
    });
    let report = run_campaign(&cfg).expect("campaign");
    assert!(report.snapshot.sessions_lost > 0, "heavy drops must lose sessions: {}", report.snapshot);
    let mut demoted_flaky = 0;
    for record in &report.device_records {
        if record.flaky {
            demoted_flaky += u32::from(record.status != FleetStatus::Active);
        } else {
            assert_eq!(record.status, FleetStatus::Active, "clean device {} must stay active", record.id);
        }
    }
    assert!(demoted_flaky > 0, "some flaky device must be demoted:\n{:#?}", report.device_records);
}
