//! Engine-equivalence suite: every evaluation path must be bit-identical.
//!
//! The hot path has three engines — the scalar event-driven simulator
//! (`PufInstance::evaluate` / `PufEmulator::emulate`), the bit-sliced
//! 64-lane waveform engine behind the batch paths, and the incremental
//! cone re-simulation the bit-sliced engine performs when it is reused
//! across consecutive blocks. This suite pins all of them to the scalar
//! reference for every shipped design (paper 32-bit, FPGA 16-bit, and the
//! carry-lookahead / carry-select ablations) at thread counts 1/2/4/8,
//! and checks that pooled-engine reuse across repeated batch calls never
//! changes a response.

use std::sync::OnceLock;

use proptest::prelude::*;
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{challenge_stream_seed, AdderKind, AluPufConfig, AluPufDesign, PufChip, PufInstance};
use pufatt_alupuf::emulate::{DelayTable, PufEmulator, SharedPufEmulator};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use std::sync::Arc;

const CHIP_SEED: u64 = 0x601D;
const CHALLENGE_SEED: u64 = 0x1CE;
const NOISE_SEED: u64 = 0xBEEF;
/// 161 challenges = two full 64-lane blocks plus a 33-lane partial block,
/// so every test crosses block boundaries and exercises the masked tail.
const N: usize = 161;

/// Every shipped design: the two paper configurations plus the two adder
/// ablations the design-space bench ships.
fn shipped_configs() -> Vec<(&'static str, AluPufConfig)> {
    let cla = AluPufConfig {
        adder: AdderKind::CarryLookahead,
        ..AluPufConfig::paper_32bit()
    };
    let csel = AluPufConfig { adder: AdderKind::CarrySelect, ..AluPufConfig::paper_32bit() };
    vec![
        ("paper_32bit", AluPufConfig::paper_32bit()),
        ("fpga_16bit", AluPufConfig::fpga_16bit()),
        ("paper_32bit_cla", cla),
        ("paper_32bit_csel", csel),
    ]
}

fn fixture(config: AluPufConfig) -> (AluPufDesign, PufChip, Vec<Challenge>) {
    let width = config.width;
    let design = AluPufDesign::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(CHIP_SEED);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let mut chrng = ChaCha8Rng::seed_from_u64(CHALLENGE_SEED);
    let challenges = (0..N).map(|_| Challenge::random(&mut chrng, width)).collect();
    (design, chip, challenges)
}

/// Device batch path (bit-sliced + work stealing + engine pool) must equal
/// the scalar event-driven path at every thread count, for every design.
/// The scalar reference seeds each challenge's noise stream exactly as the
/// batch does — from `(noise_seed, global index)` — so any divergence is an
/// engine discrepancy, never an RNG artefact.
#[test]
fn device_batch_matches_scalar_for_all_designs() {
    for (name, config) in shipped_configs() {
        let (design, chip, challenges) = fixture(config);
        let inst = PufInstance::new(&design, &chip, Environment::nominal());
        let scalar: Vec<u64> = challenges
            .iter()
            .enumerate()
            .map(|(i, &ch)| {
                let mut rng = ChaCha8Rng::seed_from_u64(challenge_stream_seed(NOISE_SEED, i as u64));
                inst.evaluate(ch, &mut rng).bits()
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let batch: Vec<u64> = inst
                .evaluate_batch(&challenges, NOISE_SEED, threads)
                .iter()
                .map(|r| r.bits())
                .collect();
            assert_eq!(batch, scalar, "{name}: batch at {threads} threads diverged from scalar");
        }
    }
}

/// Emulator paths — scalar `PufEmulator::emulate`, its batch, and all three
/// `SharedPufEmulator` entry points — must agree bit for bit on every
/// shipped design at every thread count.
#[test]
fn emulator_paths_bit_identical_for_all_designs() {
    for (name, config) in shipped_configs() {
        let (design, chip, challenges) = fixture(config.clone());
        let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let scalar: Vec<u64> = challenges.iter().map(|&ch| emu.emulate(ch).bits()).collect();
        for threads in [1usize, 2, 4, 8] {
            let batch: Vec<u64> = emu.emulate_batch(&challenges, threads).iter().map(|r| r.bits()).collect();
            assert_eq!(batch, scalar, "{name}: emulate_batch at {threads} threads diverged");
        }

        let table = DelayTable::extract(&design, &chip, Environment::nominal());
        let shared = SharedPufEmulator::new(Arc::new(AluPufDesign::new(config)), table);
        let one_by_one: Vec<u64> = challenges.iter().map(|&ch| shared.emulate(ch).bits()).collect();
        assert_eq!(one_by_one, scalar, "{name}: SharedPufEmulator::emulate diverged");
        let many: Vec<u64> = shared.emulate_many(&challenges).iter().map(|r| r.bits()).collect();
        assert_eq!(many, scalar, "{name}: emulate_many diverged");
        for threads in [2usize, 4, 8] {
            let batch: Vec<u64> = shared.emulate_batch(&challenges, threads).iter().map(|r| r.bits()).collect();
            assert_eq!(batch, scalar, "{name}: shared emulate_batch at {threads} threads diverged");
        }
    }
}

/// Repeated batch calls reuse pooled engines (and, on the single-thread
/// path, the incremental dirty-cone state from the previous block/call).
/// Reuse must never change a response — run the same and permuted batches
/// repeatedly through one instance and demand identical bits every time.
#[test]
fn pooled_engine_reuse_is_response_invariant() {
    let (design, chip, challenges) = fixture(AluPufConfig::paper_32bit());
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());

    let first: Vec<u64> = inst
        .evaluate_batch(&challenges, NOISE_SEED, 4)
        .iter()
        .map(|r| r.bits())
        .collect();
    let emu_first: Vec<u64> = emu.emulate_batch(&challenges, 1).iter().map(|r| r.bits()).collect();
    // A different challenge order in between maximally dirties the
    // incremental engines' retained waveforms.
    let mut reversed = challenges.clone();
    reversed.reverse();
    let rev_expected: Vec<u64> = {
        let mut v = emu_first.clone();
        v.reverse();
        v
    };
    let rev: Vec<u64> = emu.emulate_batch(&reversed, 1).iter().map(|r| r.bits()).collect();
    assert_eq!(rev, rev_expected, "reversed batch must be the reversed responses");
    for round in 0..3 {
        let again: Vec<u64> = inst
            .evaluate_batch(&challenges, NOISE_SEED, round + 1)
            .iter()
            .map(|r| r.bits())
            .collect();
        assert_eq!(again, first, "device batch changed on reuse round {round}");
        let emu_again: Vec<u64> = emu.emulate_batch(&challenges, 1).iter().map(|r| r.bits()).collect();
        assert_eq!(emu_again, emu_first, "emulator batch changed on reuse round {round}");
    }
}

/// Shared fixture for the property tests: building the design and chip
/// dominates each case's cost, so build once.
fn paper_fixture() -> &'static (AluPufDesign, PufChip) {
    static FIXTURE: OnceLock<(AluPufDesign, PufChip)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(CHIP_SEED);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        (design, chip)
    })
}

proptest! {
    /// For ANY challenge set (arbitrary operands, arbitrary length across
    /// the block boundary) and ANY noise seed, the batch paths equal the
    /// scalar reference at 1/2/4 threads.
    #[test]
    fn any_challenge_set_is_thread_and_engine_invariant(
        raw in prop::collection::vec((any::<u64>(), any::<u64>()), 1..100),
        noise_seed in any::<u64>(),
    ) {
        let (design, chip) = paper_fixture();
        let challenges: Vec<Challenge> = raw.iter().map(|&(a, b)| Challenge::new(a, b, 32)).collect();
        let inst = PufInstance::new(design, chip, Environment::nominal());
        let scalar: Vec<u64> = challenges
            .iter()
            .enumerate()
            .map(|(i, &ch)| {
                let mut rng = ChaCha8Rng::seed_from_u64(challenge_stream_seed(noise_seed, i as u64));
                inst.evaluate(ch, &mut rng).bits()
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let batch: Vec<u64> =
                inst.evaluate_batch(&challenges, noise_seed, threads).iter().map(|r| r.bits()).collect();
            prop_assert_eq!(&batch, &scalar, "batch diverged at {} threads", threads);
        }

        let emu = PufEmulator::enroll(design, chip, Environment::nominal());
        let emu_scalar: Vec<u64> = challenges.iter().map(|&ch| emu.emulate(ch).bits()).collect();
        let emu_batch: Vec<u64> = emu.emulate_batch(&challenges, 2).iter().map(|r| r.bits()).collect();
        prop_assert_eq!(&emu_batch, &emu_scalar, "emulator batch diverged");
    }
}
