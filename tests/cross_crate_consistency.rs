//! Cross-crate consistency: the same computation expressed through
//! different layers of the stack must agree bit-for-bit.

use pufatt::enroll::enroll;
use pufatt::ports::VerifierRoundPuf;
use pufatt::protocol::puf_limited_clock;
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_pe32::asm::assemble;
use pufatt_pe32::cpu::{Clock, Cpu};
use pufatt_pe32::puf_port::MockPufPort;
use pufatt_silicon::env::Environment;
use pufatt_silicon::sta::ArrivalTimes;
use pufatt_swatt::checksum::{compute, MixPuf, SwattParams};
use pufatt_swatt::codegen::{generate, CodegenOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The PE32 program and the Rust reference must produce identical
/// checksums when driven by the *real* silicon PUF (not just mocks):
/// two devices with the same noise seed consume their RNG identically.
#[test]
fn cpu_and_reference_agree_with_real_puf() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 12, 0).expect("supported width");
    let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 8 };
    let clock = puf_limited_clock(&enrolled, 1.10, 64, 5);
    // Build the prover directly (provision would run a golden attestation
    // and advance the device's noise stream past the reference's).
    let mut prover =
        pufatt::protocol::ProverDevice::new(enrolled.device_handle(777), params, &CodegenOptions::default(), clock)
            .expect("prover");

    let request = pufatt::protocol::AttestationRequest { x0: 0xABCD, r0: 0x4321 };
    let report = prover.attest(request).expect("attestation");

    // Reference computation with an identically-seeded device.
    let mut region = prover.expected_region();
    region[prover.layout().seed_cell as usize] = request.r0;
    region[prover.layout().x0_cell as usize] = request.x0;
    let mut reference_device = enrolled.device_puf(777);
    let reference = compute(&region, request.r0, request.x0, &params, &mut reference_device);
    assert_eq!(report.response.to_vec(), reference.response.to_vec(), "CPU and reference must agree");
    assert_eq!(report.helper_words, reference_device.take_helper_log(), "helper streams must agree");
}

/// The verifier's round-PUF (emulator + helper replay) reproduces the
/// prover's z-stream inside a full checksum computation.
#[test]
fn verifier_round_puf_tracks_device_inside_checksum() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 13, 0).expect("supported width");
    let params = SwattParams { region_bits: 8, rounds: 512, puf_interval: 8 };
    let memory: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();

    let mut device = enrolled.device_puf(50);
    let dev_result = compute(&memory, 11, 22, &params, &mut device);
    let helpers = device.take_helper_log();

    let verifier_puf = enrolled.verifier_puf().expect("supported width");
    let mut replay = VerifierRoundPuf::new(&verifier_puf, &helpers);
    let ver_result = compute(&memory, 11, 22, &params, &mut replay);
    assert!(replay.failure().is_none(), "no reconstruction failures expected: {:?}", replay.failure());
    assert_eq!(dev_result.response, ver_result.response);
    assert_eq!(replay.consumed(), helpers.len(), "all helper words consumed");
}

/// Emulator and device agree at every paper corner (the emulator is fixed
/// at the enrollment corner; the device's responses drift only through
/// physical Δ shifts, which ECC absorbs).
#[test]
fn emulator_agreement_over_corners() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 14, 0).expect("supported width");
    let design = enrolled.design();
    let chip = enrolled.chip();
    let emulator = PufEmulator::enroll(design, chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for env in [
        Environment::nominal(),
        Environment::with_vdd(0.9),
        Environment::with_temp(120.0),
    ] {
        let instance = PufInstance::new(design, chip, env);
        let mut distance = 0u32;
        let n = 40;
        for _ in 0..n {
            let ch = Challenge::random(&mut rng, 32);
            distance += instance.evaluate_voted(ch, 5, &mut rng).hamming_distance(emulator.emulate(ch));
        }
        let frac = distance as f64 / (n as f64 * 32.0);
        assert!(frac < 0.12, "agreement too low at {env}: HD {frac}");
    }
}

/// The CPU's clock type and the PUF's timing model meet consistently in
/// the overclocking condition.
#[test]
fn clock_and_puf_timing_are_consistent() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 15, 0).expect("supported width");
    let mut device = enrolled.device_puf(1);
    let min_cycle = device.min_reliable_cycle_ps();
    let calibrated = device.calibrate_cycle_ps(64, 1.10);
    // STA bounds the empirical calibration (which includes the carry
    // canary, so they are close but ordered).
    assert!(calibrated <= min_cycle * 1.15, "calibrated {calibrated} vs STA bound {min_cycle}");
    let clock = Clock::new(1e6 / calibrated);
    assert!((clock.cycle_ps() - calibrated).abs() < 1e-6);
}

/// Generated attestation assembly round-trips through the assembler and
/// runs on a mock-PUF CPU, independent of the silicon stack.
#[test]
fn generated_assembly_is_self_contained() {
    let params = SwattParams { region_bits: 8, rounds: 256, puf_interval: 4 };
    let gen = generate(&params, &CodegenOptions::default());
    let program = assemble(&gen.source).expect("assembles");
    let mut cpu = Cpu::new(gen.layout.memory_words.max(64) as usize);
    cpu.attach_puf(Box::new(MockPufPort::new()));
    cpu.load_program(&program.image);
    cpu.store_word(gen.layout.seed_cell, 5).unwrap();
    cpu.store_word(gen.layout.x0_cell, 6).unwrap();
    let snapshot: Vec<u32> = cpu.memory()[..gen.layout.region_end as usize].to_vec();
    cpu.run(50_000_000).expect("halts");
    let response: Vec<u32> = (0..8).map(|k| cpu.load_word(gen.layout.result_base + k).unwrap()).collect();
    let reference = compute(&snapshot, 5, 6, &params, &mut MixPuf);
    assert_eq!(response, reference.response.to_vec());
}

/// STA of the PUF netlist upper-bounds every observed settling time,
/// linking the silicon layer's two timing views.
#[test]
fn sta_bounds_dynamic_settling() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 16, 0).expect("supported width");
    let design = enrolled.design();
    let delays = design.effective_delays_ps(enrolled.chip().silicon(), &Environment::nominal());
    let sta = ArrivalTimes::compute(design.netlist(), &delays);
    let instance = PufInstance::new(design, enrolled.chip(), Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..20 {
        let ch = Challenge::random(&mut rng, 32);
        let e = instance.evaluate_detailed(ch, &mut rng);
        let worst = e.settle0_ps.iter().chain(&e.settle1_ps).fold(0.0f64, |a, &b| a.max(b));
        assert!(worst <= sta.critical_path_ps() + 1e-6, "settling {worst} exceeds STA {}", sta.critical_path_ps());
    }
}
