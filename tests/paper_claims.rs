//! Claims traceability: each test asserts one *textual claim* of the
//! PUFatt paper against the implementation, quoting the sentence it
//! checks. Reviewers can diff this file against the paper directly.

use pufatt::enroll::enroll;
use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt::pipeline::PufPipeline;
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::Decoder;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn device() -> (AluPufDesign, pufatt_alupuf::device::PufChip) {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xC1A1);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    (design, chip)
}

/// §2: "To ensure that both ALUs are stimulated with the same input
/// signals at exactly the same time, a simple synchronization logic is
/// used."
#[test]
fn claim_synchronised_launch() {
    let (design, chip) = device();
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    // Both ALUs share the very same input nets, so by construction the
    // launch is simultaneous; observable consequence: the two ALUs compute
    // identical sums (only their *timing* differs).
    let e = instance.evaluate_detailed(Challenge::new(0xDEAD_BEEF, 0x1234_5678, 32), &mut rng);
    assert_eq!(e.settle0_ps.len(), e.settle1_ps.len());
    // Functional equality of the racing datapaths: with shared inputs both
    // ALUs compute identical values on every output bit.
    let netlist = design.netlist();
    for _ in 0..20 {
        let iv: Vec<bool> = netlist.primary_inputs().iter().map(|_| rng.gen()).collect();
        let values = netlist.evaluate(&iv);
        let outs = netlist.primary_outputs();
        // Layout: [alu0_s[0..32], alu0_cout, alu1_s[0..32], alu1_cout].
        for i in 0..33 {
            assert_eq!(
                values[outs[i].index()],
                values[outs[33 + i].index()],
                "ALU outputs must agree functionally at bit {i}"
            );
        }
    }
}

/// §2: "the delay characteristics of the path from the inputs … depend on
/// the inputs x_{i−1} … because carry bits … are propagated from the LSB
/// side to the MSB side."
#[test]
fn claim_carry_dependent_delays() {
    let (design, chip) = device();
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    // Same value at bit 8's own operands, different lower bits: the carry
    // into bit 8 differs, so its settling time must differ.
    let a = instance.evaluate_detailed(Challenge::new(0x0000_01FF, 0x0000_0001, 32), &mut rng);
    let b = instance.evaluate_detailed(Challenge::new(0x0000_0100, 0x0000_0000, 32), &mut rng);
    assert!(
        (a.settle0_ps[8] - b.settle0_ps[8]).abs() > 1.0,
        "bit 8 settling must depend on lower-bit carries: {} vs {}",
        a.settle0_ps[8],
        b.settle0_ps[8]
    );
}

/// §2: "we can easily build ALU PUFs with an arbitrary number of response
/// bits" (depending on operand bit-length).
#[test]
fn claim_arbitrary_response_widths() {
    for width in [4usize, 8, 16, 32] {
        let mut config = AluPufConfig::paper_32bit();
        config.width = width;
        let design = AluPufDesign::new(config);
        assert_eq!(design.width(), width);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let r =
            PufInstance::new(&design, &chip, Environment::nominal()).evaluate(Challenge::new(1, 2, width), &mut rng);
        assert_eq!(r.width(), width);
    }
}

/// §2: "a BCH[32,6,16] code, which can correct … bit errors in a 32 bit
/// PUF response using a 32 − 6 = 26-bit helper data."
#[test]
fn claim_helper_data_is_26_bits() {
    let code = ReedMuller1::bch_32_6_16();
    assert_eq!(code.code().n(), 32);
    assert_eq!(code.code().k(), 6);
    assert_eq!(code.code().syndrome_bits(), 26);
    assert_eq!(code.code().minimum_distance(), 16);
    assert_eq!(PufPipeline::paper_32bit().helper_bits(), 26);
}

/// §2: "The only logic required at P is the syndrome generator of a linear
/// block code, which performs a simple matrix multiplication."
#[test]
fn claim_prover_side_is_one_matrix_multiply() {
    let code = ReedMuller1::bch_32_6_16();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let y = pufatt_ecc::BitVec::from_word(rng.gen::<u32>() as u64, 32);
    // The helper equals H·y — verified directly against the parity-check
    // matrix (no decoder runs on the prover).
    let h = code.code().parity_check().mul_vec(&y);
    assert_eq!(code.code().syndrome(&y).unwrap(), h);
}

/// §2, obfuscation: "a_0[i] := y_0[i] ⊕ y_0[i + n] … concatenated …
/// z := ⊕_{j=0}^{3} b_j" — and one z therefore consumes 8 raw responses.
#[test]
fn claim_obfuscation_structure() {
    assert_eq!(RESPONSES_PER_OUTPUT, 8);
    // Hand-compute one bit: z[0] = XOR over the 4 pairs of (y_even[0] ^
    // y_even[16]).
    let ys: [u64; 8] = [0x1, 0x0, 0x1_0000, 0x0, 0x0, 0x0, 0x0, 0x0];
    // fold(y0)=1, fold(y2)=1, others 0 → z[0] = 1 ^ 1 = 0.
    assert_eq!(obfuscate(&ys, 32) & 1, 0);
    let ys2: [u64; 8] = [0x1, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0, 0x0];
    assert_eq!(obfuscate(&ys2, 32) & 1, 1);
}

/// §2: "Obfuscation must be performed after error correction … only a few
/// bit errors in the input to the obfuscation network may incur a large
/// number of output errors."
#[test]
fn claim_uncorrected_errors_avalanche_through_obfuscation() {
    // One flipped raw bit flips exactly one z bit; but one *reconstruction
    // failure* (a wrong codeword, weight >= 16 difference) wrecks half the
    // output — which is why the verifier corrects to the prover's exact
    // word before obfuscating.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let ys: [u64; 8] = std::array::from_fn(|_| rng.gen::<u32>() as u64);
    let z = obfuscate(&ys, 32);
    let code = ReedMuller1::bch_32_6_16();
    // The reproduction sharpens the claim (DESIGN.md finding 2): RM(1,5)
    // codewords are affine truth tables, so the half-fold collapses them
    // to a constant decided by the x4 coefficient — a decode-to-wrong-
    // codeword event either wrecks 16 of 32 z bits or, with probability
    // 1/2, *none at all*.
    let heavy = code.encode(&pufatt_ecc::BitVec::from_word(0b100000, 6)).unwrap().as_word(); // a4 = 1
    let silent = code.encode(&pufatt_ecc::BitVec::from_word(0b000101, 6)).unwrap().as_word(); // a4 = 0
    let mut off = ys;
    off[3] ^= heavy;
    assert_eq!((obfuscate(&off, 32) ^ z).count_ones(), 16, "a4=1 codeword flips a full half");
    let mut off = ys;
    off[3] ^= silent;
    assert_eq!(obfuscate(&off, 32), z, "a4=0 codeword is invisible to the fold");
    // Either way a few *uncorrected raw* errors never stay contained once
    // they cross a codeword boundary — the reason correction precedes
    // obfuscation, as the paper requires.
}

/// §2/§3: "PUF() … always returns the same output z to the same challenge
/// x" (with error correction; statistically, at the measured FNR).
#[test]
fn claim_pipeline_reproducibility() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0xC1A2, 0).unwrap();
    let mut device = enrolled.device_puf(6);
    let verifier = enrolled.verifier_puf().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..6 {
        let group: [Challenge; 8] = std::array::from_fn(|_| Challenge::random(&mut rng, 32));
        let out = device.respond(&group);
        let z = verifier.conclude(&group, &out.helpers).expect("reconstruction");
        assert_eq!(z, out.z, "verifier must recompute the device's z");
    }
}

/// §3: "the bandwidth of the communication interfaces of P is far lower
/// than the bandwidth of the interface between the CPU and the PUF" — the
/// premise that makes the oracle attack slow. Check the model reflects it.
#[test]
fn claim_bandwidth_asymmetry() {
    use pufatt::protocol::Channel;
    let ext = Channel::sensor_link();
    // One on-chip PUF query takes ~8 evaluations x the ALU latency
    // (~nanoseconds); over the external channel the same exchange costs
    // milliseconds.
    let on_chip_s = 8.0 * 2e-9;
    let over_channel_s = ext.transfer_s(8 * 64) + ext.transfer_s(32 + 8 * 32);
    assert!(over_channel_s > 1000.0 * on_chip_s, "oracle round trips must dominate: {over_channel_s}");
}

/// §4.2: "For correct PUF operation, the required condition is:
/// T_ALU + T_set < T_cycle."
#[test]
fn claim_overclocking_condition_boundary() {
    let (design, chip) = device();
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let safe_cycle = instance.min_reliable_cycle_ps() * 1.01;
    // At a safe cycle, clocked and unclocked evaluation agree (the race
    // resolves before the capture edge) — even on the full-carry canary.
    let canary = Challenge::new(u64::MAX, 1, 32);
    for _ in 0..10 {
        let clocked = instance.evaluate_clocked(canary, safe_cycle, &mut rng);
        let free = instance.evaluate(canary, &mut rng);
        assert!(clocked.hamming_distance(free) <= 10, "safe clocking must not corrupt");
    }
    // Deep violation: the canary's late bits capture garbage.
    let mut corrupted = 0;
    let reference = instance.evaluate(canary, &mut rng);
    for _ in 0..10 {
        corrupted += instance
            .evaluate_clocked(canary, safe_cycle * 0.25, &mut rng)
            .hamming_distance(reference);
    }
    assert!(corrupted > 20, "violated clocking must corrupt the canary: {corrupted}");
}

/// §5 (vs. memory PUFs): the ALU PUF supports a *large* challenge space —
/// unlike SRAM PUFs, which "only support a small number of
/// challenge-response pairs".
#[test]
fn claim_large_challenge_space() {
    // 2^64 challenges at width 32; spot-check that distinct challenges
    // give substantially distinct responses (the PUF is not constant).
    let (design, chip) = device();
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..64 {
        let r = instance.evaluate_voted(Challenge::random(&mut rng, 32), 5, &mut rng);
        distinct.insert(r.bits());
    }
    assert!(distinct.len() > 32, "responses must vary across challenges: {}", distinct.len());
}

/// §4.1: "the XOR-based obfuscation mechanism improves the unpredictability
/// of PUF responses."
#[test]
fn claim_obfuscation_improves_unpredictability() {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let chips = design.fabricate_many(&ChipSampler::new(), 2, &mut rng);
    let i0 = PufInstance::new(&design, &chips[0], Environment::nominal());
    let i1 = PufInstance::new(&design, &chips[1], Environment::nominal());
    let mut raw_hd = 0u64;
    let mut obf_hd = 0u64;
    let groups = 40;
    for _ in 0..groups {
        let group: [Challenge; 8] = std::array::from_fn(|_| Challenge::random(&mut rng, 32));
        let y0: [u64; 8] = std::array::from_fn(|j| i0.evaluate(group[j], &mut rng).bits());
        let y1: [u64; 8] = std::array::from_fn(|j| i1.evaluate(group[j], &mut rng).bits());
        for j in 0..8 {
            raw_hd += (y0[j] ^ y1[j]).count_ones() as u64;
        }
        obf_hd += (obfuscate(&y0, 32) ^ obfuscate(&y1, 32)).count_ones() as u64;
    }
    let raw_frac = raw_hd as f64 / (groups as f64 * 8.0 * 32.0);
    let obf_frac = obf_hd as f64 / (groups as f64 * 32.0);
    assert!(obf_frac > raw_frac, "obfuscated inter-HD must exceed raw: {obf_frac} vs {raw_frac}");
}

/// §4.1 robustness: "the ALUs' symmetric delay paths are very similarly
/// affected, which compensates for the effect of the operating
/// conditions."
#[test]
fn claim_symmetric_paths_cancel_environment() {
    let (design, chip) = device();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let nominal = PufInstance::new(&design, &chip, Environment::nominal());
    let corner = PufInstance::new(&design, &chip, Environment::with_vdd(0.9));
    // The *absolute* ALU delay shifts a lot across the corner…
    let t_nom = nominal.alu_critical_path_ps();
    let t_corner = corner.alu_critical_path_ps();
    assert!((t_corner - t_nom).abs() / t_nom > 0.10, "corner must shift absolute delay");
    // …but responses barely move (differential cancellation).
    let mut hd = 0u32;
    let n = 40;
    for _ in 0..n {
        let ch = Challenge::random(&mut rng, 32);
        hd += nominal.evaluate(ch, &mut rng).hamming_distance(corner.evaluate(ch, &mut rng));
    }
    let frac = hd as f64 / (n as f64 * 32.0);
    assert!(frac < 0.2, "differential structure must cancel the corner: {frac}");
}

/// §2 verification approaches: "The drawback of the database approach is
/// its limited scalability … allows only for a limited number of
/// authentications since CRPs should not be re-used."
#[test]
fn claim_crp_database_is_finite_emulation_is_not() {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0xC1A3, 0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let mut db = enrolled.record_crp_database(5, &mut rng);
    let challenges: Vec<Challenge> = db.challenges().collect();
    for ch in &challenges {
        assert!(db.consume(*ch).is_ok());
    }
    assert!(db.is_empty(), "the database runs dry after one use per CRP");
    // Exhausted ≠ forgotten: a second pass is refused as *reuse*, the
    // typed replay signal, not mistaken for unknown challenges.
    for ch in &challenges {
        assert!(matches!(db.consume(*ch), Err(pufatt::PufattError::ChallengeReused { .. })));
    }
    // The emulator keeps answering fresh challenges indefinitely.
    let verifier = enrolled.verifier_puf().unwrap();
    for _ in 0..10 {
        let fresh = Challenge::random(&mut rng, 32);
        let r: RawResponse = verifier.emulate(fresh);
        assert_eq!(r.width(), 32);
    }
}
