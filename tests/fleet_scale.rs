//! Fleet-engine integration: scheduling must never change verdicts.
//!
//! The `pufatt-fleet` campaign simulates all session time (cycle-accurate
//! clock + channel model) and derives every random stream from the
//! campaign seed and the device id, so the accept/reject totals are a
//! pure function of the configuration. These tests pin that property at
//! fleet scale, plus the lifecycle behaviour an operator relies on.

use pufatt_fleet::{device_is_tampered, run_campaign, small_test_config, FleetStatus, ShardedRegistry};

/// The headline determinism claim: a multi-worker campaign over ≥64
/// devices produces exactly the same accept/reject totals as the same
/// campaign run on a single worker.
#[test]
fn multi_worker_campaign_matches_single_worker_totals() {
    let devices = 64;
    let seed = 0xD15C0;

    let single = run_campaign(&small_test_config(devices, 1, seed)).expect("single-worker campaign");
    let multi = run_campaign(&small_test_config(devices, 4, seed)).expect("multi-worker campaign");

    let s = &single.snapshot;
    let m = &multi.snapshot;
    assert_eq!(
        s.sessions_accepted, m.sessions_accepted,
        "accepted totals differ:\n--- 1 worker ---\n{s}\n--- 4 workers ---\n{m}"
    );
    assert_eq!(s.sessions_rejected, m.sessions_rejected, "rejected totals differ");
    assert_eq!(s.sessions_started, m.sessions_started);
    assert_eq!(s.sessions_timed_out, m.sessions_timed_out);
    assert_eq!(s.attempts_retried, m.attempts_retried);
    assert_eq!(s.sessions_refused, m.sessions_refused);
    assert_eq!(s.devices, m.devices, "final device states differ");
    assert_eq!(s.latency_buckets_us, m.latency_buckets_us, "latency is simulated, so even the histogram matches");

    // And the campaign actually exercised both outcomes.
    assert!(s.sessions_accepted > 0, "honest devices accepted: {s}");
    assert!(s.sessions_rejected > 0, "compromised devices rejected: {s}");
    assert_eq!(s.device_faults, 0);
    assert_eq!(single.panicked_jobs, 0);
    assert_eq!(multi.panicked_jobs, 0);
}

/// Exactly the compromised devices leave Active: honest devices never
/// accumulate failures, and every tampered device is caught (the
/// memory-copy attack always breaks the time bound).
#[test]
fn compromised_devices_are_isolated_and_honest_ones_stay_active() {
    let cfg = small_test_config(48, 3, 0xACE);
    let report = run_campaign(&cfg).expect("campaign");
    let tampered = (0..cfg.devices as u32)
        .filter(|&id| device_is_tampered(cfg.seed, id, cfg.tamper_fraction))
        .count();
    assert!(tampered > 0, "seed should produce some compromised devices");
    let snap = &report.snapshot;
    assert_eq!(snap.devices.active, cfg.devices - tampered, "honest devices stay active: {snap}");
    assert_eq!(
        snap.devices.quarantined + snap.devices.revoked,
        tampered,
        "all compromised devices isolated: {snap}"
    );
}

/// The registry lifecycle from the operator's side: revoked devices are
/// refused, and re-enrollment makes a device eligible again.
#[test]
fn revocation_refusal_and_re_enrollment() {
    let registry = ShardedRegistry::new(8, 16);
    for id in 0..16 {
        assert!(registry.enroll(id));
    }
    registry.revoke(3);
    assert_eq!(registry.status(3), Some(FleetStatus::Revoked));
    assert_eq!(registry.status_counts().revoked, 1);
    assert!(registry.re_enroll(3));
    assert_eq!(registry.status(3), Some(FleetStatus::Active));
    assert_eq!(registry.status_counts().revoked, 0);
    assert_eq!(registry.status_counts().active, 16);
}
