//! Allocation-count proof for the zero-allocation simulation engine.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass that lets every scratch buffer reach its steady-state capacity,
//! re-running the same workload must perform zero heap allocations. This
//! binary holds exactly one test so no sibling test can allocate while the
//! counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_silicon::env::Environment;
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Relaxed) {
            ALLOCS.fetch_add(1, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed, returning how many heap
/// allocations (alloc + realloc calls) it performed.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Relaxed);
    ARMED.store(true, Relaxed);
    f();
    ARMED.store(false, Relaxed);
    ALLOCS.load(Relaxed)
}

#[test]
fn steady_state_evaluation_does_not_allocate() {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xA110C);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let challenges: Vec<Challenge> = (0..32).map(|_| Challenge::random(&mut rng, 32)).collect();

    // --- Raw engine: run_transition_in_place on persistent scratch. ---
    let delays = design.effective_delays_ps(chip.silicon(), &Environment::nominal());
    let mut sim = EventSimulator::new(design.netlist(), &delays);
    let (mut from, mut to) = (Vec::new(), Vec::new());
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
        sim.run_transition_in_place(&from, &to);
    }
    let engine_allocs = count_allocs(|| {
        for &ch in &challenges {
            design.stimulus_into(ch, &mut from, &mut to);
            sim.run_transition_in_place(&from, &to);
        }
    });
    assert_eq!(engine_allocs, 0, "EventSimulator steady state allocated {engine_allocs} times");

    // --- Full device path: PufInstance::evaluate through its scratch. ---
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    for &ch in &challenges {
        inst.evaluate(ch, &mut rng);
    }
    let eval_allocs = count_allocs(|| {
        for &ch in &challenges {
            inst.evaluate(ch, &mut rng);
        }
    });
    assert_eq!(eval_allocs, 0, "PufInstance::evaluate steady state allocated {eval_allocs} times");

    // Sanity: the counter itself works — a fresh evaluation from scratch
    // (engine construction included) must register allocations.
    let cold_allocs = count_allocs(|| {
        let inst2 = PufInstance::new(&design, &chip, Environment::nominal());
        inst2.evaluate(challenges[0], &mut rng);
    });
    assert!(cold_allocs > 0, "counting allocator failed to observe cold-path allocations");
}
