/root/repo/target/debug/examples/sensor_fleet-f0bf4048bf1ac4cc.d: examples/sensor_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_fleet-f0bf4048bf1ac4cc.rmeta: examples/sensor_fleet.rs Cargo.toml

examples/sensor_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
