/root/repo/target/debug/examples/fleet_campaign-3f27f4f51ce4d4b5.d: examples/fleet_campaign.rs

/root/repo/target/debug/examples/fleet_campaign-3f27f4f51ce4d4b5: examples/fleet_campaign.rs

examples/fleet_campaign.rs:
