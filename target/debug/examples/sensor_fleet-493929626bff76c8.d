/root/repo/target/debug/examples/sensor_fleet-493929626bff76c8.d: examples/sensor_fleet.rs

/root/repo/target/debug/examples/sensor_fleet-493929626bff76c8: examples/sensor_fleet.rs

examples/sensor_fleet.rs:
