/root/repo/target/debug/examples/sensor_fleet-a08fc919196998d4.d: examples/sensor_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_fleet-a08fc919196998d4.rmeta: examples/sensor_fleet.rs Cargo.toml

examples/sensor_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
