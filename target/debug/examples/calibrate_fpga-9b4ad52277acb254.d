/root/repo/target/debug/examples/calibrate_fpga-9b4ad52277acb254.d: crates/alupuf/examples/calibrate_fpga.rs

/root/repo/target/debug/examples/calibrate_fpga-9b4ad52277acb254: crates/alupuf/examples/calibrate_fpga.rs

crates/alupuf/examples/calibrate_fpga.rs:
