/root/repo/target/debug/examples/remote_attestation-4cfacd36be031c5e.d: examples/remote_attestation.rs Cargo.toml

/root/repo/target/debug/examples/libremote_attestation-4cfacd36be031c5e.rmeta: examples/remote_attestation.rs Cargo.toml

examples/remote_attestation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
