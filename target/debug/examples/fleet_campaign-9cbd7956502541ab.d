/root/repo/target/debug/examples/fleet_campaign-9cbd7956502541ab.d: examples/fleet_campaign.rs

/root/repo/target/debug/examples/fleet_campaign-9cbd7956502541ab: examples/fleet_campaign.rs

examples/fleet_campaign.rs:
