/root/repo/target/debug/examples/attack_lab-3d5fb8a2dea3e547.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-3d5fb8a2dea3e547: examples/attack_lab.rs

examples/attack_lab.rs:
