/root/repo/target/debug/examples/remote_attestation-1230cc9a94a7d01f.d: examples/remote_attestation.rs Cargo.toml

/root/repo/target/debug/examples/libremote_attestation-1230cc9a94a7d01f.rmeta: examples/remote_attestation.rs Cargo.toml

examples/remote_attestation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
