/root/repo/target/debug/examples/quickstart-fb2eaef6d8602d1f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fb2eaef6d8602d1f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
