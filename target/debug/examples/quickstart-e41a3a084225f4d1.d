/root/repo/target/debug/examples/quickstart-e41a3a084225f4d1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e41a3a084225f4d1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
