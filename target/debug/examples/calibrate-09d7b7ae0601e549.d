/root/repo/target/debug/examples/calibrate-09d7b7ae0601e549.d: crates/alupuf/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-09d7b7ae0601e549: crates/alupuf/examples/calibrate.rs

crates/alupuf/examples/calibrate.rs:
