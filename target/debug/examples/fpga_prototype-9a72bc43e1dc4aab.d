/root/repo/target/debug/examples/fpga_prototype-9a72bc43e1dc4aab.d: examples/fpga_prototype.rs

/root/repo/target/debug/examples/fpga_prototype-9a72bc43e1dc4aab: examples/fpga_prototype.rs

examples/fpga_prototype.rs:
