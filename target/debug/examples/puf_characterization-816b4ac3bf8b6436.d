/root/repo/target/debug/examples/puf_characterization-816b4ac3bf8b6436.d: examples/puf_characterization.rs

/root/repo/target/debug/examples/puf_characterization-816b4ac3bf8b6436: examples/puf_characterization.rs

examples/puf_characterization.rs:
