/root/repo/target/debug/examples/puf_characterization-754c3aadf23745e6.d: examples/puf_characterization.rs

/root/repo/target/debug/examples/puf_characterization-754c3aadf23745e6: examples/puf_characterization.rs

examples/puf_characterization.rs:
