/root/repo/target/debug/examples/fleet_campaign-768c8112e1bbc156.d: examples/fleet_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_campaign-768c8112e1bbc156.rmeta: examples/fleet_campaign.rs Cargo.toml

examples/fleet_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
