/root/repo/target/debug/examples/fpga_prototype-f3c96776e1e59904.d: examples/fpga_prototype.rs

/root/repo/target/debug/examples/fpga_prototype-f3c96776e1e59904: examples/fpga_prototype.rs

examples/fpga_prototype.rs:
