/root/repo/target/debug/examples/calibrate_fpga-42e9c965662f5231.d: crates/alupuf/examples/calibrate_fpga.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate_fpga-42e9c965662f5231.rmeta: crates/alupuf/examples/calibrate_fpga.rs Cargo.toml

crates/alupuf/examples/calibrate_fpga.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
