/root/repo/target/debug/examples/attack_lab-96c75986be9532aa.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-96c75986be9532aa: examples/attack_lab.rs

examples/attack_lab.rs:
