/root/repo/target/debug/examples/remote_attestation-e600a2eb70e7bc04.d: examples/remote_attestation.rs

/root/repo/target/debug/examples/remote_attestation-e600a2eb70e7bc04: examples/remote_attestation.rs

examples/remote_attestation.rs:
