/root/repo/target/debug/examples/profile_eval-369307cf1d9799b1.d: crates/bench/examples/profile_eval.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_eval-369307cf1d9799b1.rmeta: crates/bench/examples/profile_eval.rs Cargo.toml

crates/bench/examples/profile_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
