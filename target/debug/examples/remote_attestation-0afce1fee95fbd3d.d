/root/repo/target/debug/examples/remote_attestation-0afce1fee95fbd3d.d: examples/remote_attestation.rs

/root/repo/target/debug/examples/remote_attestation-0afce1fee95fbd3d: examples/remote_attestation.rs

examples/remote_attestation.rs:
