/root/repo/target/debug/examples/calibrate-9386082f4df19289.d: crates/alupuf/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-9386082f4df19289.rmeta: crates/alupuf/examples/calibrate.rs Cargo.toml

crates/alupuf/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
