/root/repo/target/debug/examples/puf_characterization-4191ac4d67a62a97.d: examples/puf_characterization.rs

/root/repo/target/debug/examples/puf_characterization-4191ac4d67a62a97: examples/puf_characterization.rs

examples/puf_characterization.rs:
