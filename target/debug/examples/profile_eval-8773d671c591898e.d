/root/repo/target/debug/examples/profile_eval-8773d671c591898e.d: crates/bench/examples/profile_eval.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_eval-8773d671c591898e.rmeta: crates/bench/examples/profile_eval.rs Cargo.toml

crates/bench/examples/profile_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
