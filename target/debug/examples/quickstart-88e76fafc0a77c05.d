/root/repo/target/debug/examples/quickstart-88e76fafc0a77c05.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-88e76fafc0a77c05: examples/quickstart.rs

examples/quickstart.rs:
