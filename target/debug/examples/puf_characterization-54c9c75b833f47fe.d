/root/repo/target/debug/examples/puf_characterization-54c9c75b833f47fe.d: examples/puf_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libpuf_characterization-54c9c75b833f47fe.rmeta: examples/puf_characterization.rs Cargo.toml

examples/puf_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
