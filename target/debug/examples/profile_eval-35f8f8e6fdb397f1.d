/root/repo/target/debug/examples/profile_eval-35f8f8e6fdb397f1.d: crates/bench/examples/profile_eval.rs

/root/repo/target/debug/examples/profile_eval-35f8f8e6fdb397f1: crates/bench/examples/profile_eval.rs

crates/bench/examples/profile_eval.rs:
