/root/repo/target/debug/examples/puf_characterization-e38acab290d46007.d: examples/puf_characterization.rs Cargo.toml

/root/repo/target/debug/examples/libpuf_characterization-e38acab290d46007.rmeta: examples/puf_characterization.rs Cargo.toml

examples/puf_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
