/root/repo/target/debug/examples/remote_attestation-35f3cf93c513c38d.d: examples/remote_attestation.rs

/root/repo/target/debug/examples/remote_attestation-35f3cf93c513c38d: examples/remote_attestation.rs

examples/remote_attestation.rs:
