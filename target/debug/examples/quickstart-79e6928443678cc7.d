/root/repo/target/debug/examples/quickstart-79e6928443678cc7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-79e6928443678cc7: examples/quickstart.rs

examples/quickstart.rs:
