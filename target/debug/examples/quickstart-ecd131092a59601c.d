/root/repo/target/debug/examples/quickstart-ecd131092a59601c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ecd131092a59601c: examples/quickstart.rs

examples/quickstart.rs:
