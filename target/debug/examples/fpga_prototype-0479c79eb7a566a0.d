/root/repo/target/debug/examples/fpga_prototype-0479c79eb7a566a0.d: examples/fpga_prototype.rs Cargo.toml

/root/repo/target/debug/examples/libfpga_prototype-0479c79eb7a566a0.rmeta: examples/fpga_prototype.rs Cargo.toml

examples/fpga_prototype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
