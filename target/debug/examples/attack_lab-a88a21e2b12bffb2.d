/root/repo/target/debug/examples/attack_lab-a88a21e2b12bffb2.d: examples/attack_lab.rs Cargo.toml

/root/repo/target/debug/examples/libattack_lab-a88a21e2b12bffb2.rmeta: examples/attack_lab.rs Cargo.toml

examples/attack_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
