/root/repo/target/debug/examples/fleet_campaign-61fd3b2d784c8793.d: examples/fleet_campaign.rs

/root/repo/target/debug/examples/fleet_campaign-61fd3b2d784c8793: examples/fleet_campaign.rs

examples/fleet_campaign.rs:
