/root/repo/target/debug/examples/quickstart-7e3bc1149034f18d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7e3bc1149034f18d: examples/quickstart.rs

examples/quickstart.rs:
