/root/repo/target/debug/examples/puf_characterization-21f7757d99b750c9.d: examples/puf_characterization.rs

/root/repo/target/debug/examples/puf_characterization-21f7757d99b750c9: examples/puf_characterization.rs

examples/puf_characterization.rs:
