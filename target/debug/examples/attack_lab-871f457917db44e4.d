/root/repo/target/debug/examples/attack_lab-871f457917db44e4.d: examples/attack_lab.rs Cargo.toml

/root/repo/target/debug/examples/libattack_lab-871f457917db44e4.rmeta: examples/attack_lab.rs Cargo.toml

examples/attack_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
