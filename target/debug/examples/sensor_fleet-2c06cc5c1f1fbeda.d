/root/repo/target/debug/examples/sensor_fleet-2c06cc5c1f1fbeda.d: examples/sensor_fleet.rs

/root/repo/target/debug/examples/sensor_fleet-2c06cc5c1f1fbeda: examples/sensor_fleet.rs

examples/sensor_fleet.rs:
