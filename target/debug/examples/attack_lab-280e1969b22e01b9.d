/root/repo/target/debug/examples/attack_lab-280e1969b22e01b9.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-280e1969b22e01b9: examples/attack_lab.rs

examples/attack_lab.rs:
