/root/repo/target/debug/examples/remote_attestation-f433966b008ad7c9.d: examples/remote_attestation.rs

/root/repo/target/debug/examples/remote_attestation-f433966b008ad7c9: examples/remote_attestation.rs

examples/remote_attestation.rs:
