/root/repo/target/debug/examples/fpga_prototype-255f617eda4f9d04.d: examples/fpga_prototype.rs

/root/repo/target/debug/examples/fpga_prototype-255f617eda4f9d04: examples/fpga_prototype.rs

examples/fpga_prototype.rs:
