/root/repo/target/debug/examples/attack_lab-31123b65de3b09ba.d: examples/attack_lab.rs

/root/repo/target/debug/examples/attack_lab-31123b65de3b09ba: examples/attack_lab.rs

examples/attack_lab.rs:
