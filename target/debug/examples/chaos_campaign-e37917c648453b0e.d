/root/repo/target/debug/examples/chaos_campaign-e37917c648453b0e.d: examples/chaos_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_campaign-e37917c648453b0e.rmeta: examples/chaos_campaign.rs Cargo.toml

examples/chaos_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
