/root/repo/target/debug/examples/chaos_campaign-d8f586f74f75c135.d: examples/chaos_campaign.rs

/root/repo/target/debug/examples/chaos_campaign-d8f586f74f75c135: examples/chaos_campaign.rs

examples/chaos_campaign.rs:
