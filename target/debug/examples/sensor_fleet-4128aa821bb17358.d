/root/repo/target/debug/examples/sensor_fleet-4128aa821bb17358.d: examples/sensor_fleet.rs

/root/repo/target/debug/examples/sensor_fleet-4128aa821bb17358: examples/sensor_fleet.rs

examples/sensor_fleet.rs:
