/root/repo/target/debug/examples/profile_eval-803abc9601d33a67.d: crates/bench/examples/profile_eval.rs

/root/repo/target/debug/examples/profile_eval-803abc9601d33a67: crates/bench/examples/profile_eval.rs

crates/bench/examples/profile_eval.rs:
