/root/repo/target/debug/examples/sensor_fleet-331ee7298b8bc7ff.d: examples/sensor_fleet.rs

/root/repo/target/debug/examples/sensor_fleet-331ee7298b8bc7ff: examples/sensor_fleet.rs

examples/sensor_fleet.rs:
