/root/repo/target/debug/examples/fleet_campaign-828a9311d068d9ec.d: examples/fleet_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_campaign-828a9311d068d9ec.rmeta: examples/fleet_campaign.rs Cargo.toml

examples/fleet_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
