/root/repo/target/debug/examples/fpga_prototype-ff604e57c607806c.d: examples/fpga_prototype.rs Cargo.toml

/root/repo/target/debug/examples/libfpga_prototype-ff604e57c607806c.rmeta: examples/fpga_prototype.rs Cargo.toml

examples/fpga_prototype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
