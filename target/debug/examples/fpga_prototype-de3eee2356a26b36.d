/root/repo/target/debug/examples/fpga_prototype-de3eee2356a26b36.d: examples/fpga_prototype.rs

/root/repo/target/debug/examples/fpga_prototype-de3eee2356a26b36: examples/fpga_prototype.rs

examples/fpga_prototype.rs:
