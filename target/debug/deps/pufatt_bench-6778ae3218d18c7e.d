/root/repo/target/debug/deps/pufatt_bench-6778ae3218d18c7e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_bench-6778ae3218d18c7e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
