/root/repo/target/debug/deps/zero_alloc-ce21d35c6fde61c4.d: tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-ce21d35c6fde61c4.rmeta: tests/zero_alloc.rs Cargo.toml

tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
