/root/repo/target/debug/deps/golden_vectors-64a8c45b7b80280e.d: tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-64a8c45b7b80280e: tests/golden_vectors.rs

tests/golden_vectors.rs:
