/root/repo/target/debug/deps/properties-ca0c4682d89e16ee.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ca0c4682d89e16ee: tests/properties.rs

tests/properties.rs:
