/root/repo/target/debug/deps/criterion-939eb5f2bfb1007c.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-939eb5f2bfb1007c.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
