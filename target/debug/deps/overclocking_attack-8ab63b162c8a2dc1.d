/root/repo/target/debug/deps/overclocking_attack-8ab63b162c8a2dc1.d: crates/bench/benches/overclocking_attack.rs Cargo.toml

/root/repo/target/debug/deps/liboverclocking_attack-8ab63b162c8a2dc1.rmeta: crates/bench/benches/overclocking_attack.rs Cargo.toml

crates/bench/benches/overclocking_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
