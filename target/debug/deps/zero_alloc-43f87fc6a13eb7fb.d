/root/repo/target/debug/deps/zero_alloc-43f87fc6a13eb7fb.d: tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-43f87fc6a13eb7fb: tests/zero_alloc.rs

tests/zero_alloc.rs:
