/root/repo/target/debug/deps/paper_claims-223fbcb544489064.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-223fbcb544489064: tests/paper_claims.rs

tests/paper_claims.rs:
