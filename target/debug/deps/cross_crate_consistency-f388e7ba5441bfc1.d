/root/repo/target/debug/deps/cross_crate_consistency-f388e7ba5441bfc1.d: tests/cross_crate_consistency.rs

/root/repo/target/debug/deps/cross_crate_consistency-f388e7ba5441bfc1: tests/cross_crate_consistency.rs

tests/cross_crate_consistency.rs:
