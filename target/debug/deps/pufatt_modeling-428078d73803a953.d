/root/repo/target/debug/deps/pufatt_modeling-428078d73803a953.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/debug/deps/libpufatt_modeling-428078d73803a953.rlib: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/debug/deps/libpufatt_modeling-428078d73803a953.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
