/root/repo/target/debug/deps/fpga_boards-5f93e145301944e7.d: crates/bench/benches/fpga_boards.rs Cargo.toml

/root/repo/target/debug/deps/libfpga_boards-5f93e145301944e7.rmeta: crates/bench/benches/fpga_boards.rs Cargo.toml

crates/bench/benches/fpga_boards.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
