/root/repo/target/debug/deps/zero_alloc-54bab2a72b254472.d: tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-54bab2a72b254472: tests/zero_alloc.rs

tests/zero_alloc.rs:
