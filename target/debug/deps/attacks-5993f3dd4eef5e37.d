/root/repo/target/debug/deps/attacks-5993f3dd4eef5e37.d: tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-5993f3dd4eef5e37.rmeta: tests/attacks.rs Cargo.toml

tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
