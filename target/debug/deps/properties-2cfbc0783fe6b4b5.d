/root/repo/target/debug/deps/properties-2cfbc0783fe6b4b5.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2cfbc0783fe6b4b5.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
