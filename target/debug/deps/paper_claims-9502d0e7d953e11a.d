/root/repo/target/debug/deps/paper_claims-9502d0e7d953e11a.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9502d0e7d953e11a: tests/paper_claims.rs

tests/paper_claims.rs:
