/root/repo/target/debug/deps/arbiter_comparison-86f36877e4ac6ddf.d: crates/bench/benches/arbiter_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libarbiter_comparison-86f36877e4ac6ddf.rmeta: crates/bench/benches/arbiter_comparison.rs Cargo.toml

crates/bench/benches/arbiter_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
