/root/repo/target/debug/deps/end_to_end-a0d542cd89e8a7b2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a0d542cd89e8a7b2: tests/end_to_end.rs

tests/end_to_end.rs:
