/root/repo/target/debug/deps/modeling_attack-ab4de39b902e766d.d: crates/bench/benches/modeling_attack.rs Cargo.toml

/root/repo/target/debug/deps/libmodeling_attack-ab4de39b902e766d.rmeta: crates/bench/benches/modeling_attack.rs Cargo.toml

crates/bench/benches/modeling_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
