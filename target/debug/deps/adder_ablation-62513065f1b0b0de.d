/root/repo/target/debug/deps/adder_ablation-62513065f1b0b0de.d: crates/bench/benches/adder_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libadder_ablation-62513065f1b0b0de.rmeta: crates/bench/benches/adder_ablation.rs Cargo.toml

crates/bench/benches/adder_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
