/root/repo/target/debug/deps/pufatt_repro-0b3452097c5c1dbf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_repro-0b3452097c5c1dbf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
