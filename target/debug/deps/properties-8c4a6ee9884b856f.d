/root/repo/target/debug/deps/properties-8c4a6ee9884b856f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8c4a6ee9884b856f: tests/properties.rs

tests/properties.rs:
