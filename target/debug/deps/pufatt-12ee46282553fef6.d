/root/repo/target/debug/deps/pufatt-12ee46282553fef6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/pufatt-12ee46282553fef6: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
