/root/repo/target/debug/deps/fleet_scale-6c601325663d7a89.d: tests/fleet_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_scale-6c601325663d7a89.rmeta: tests/fleet_scale.rs Cargo.toml

tests/fleet_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
