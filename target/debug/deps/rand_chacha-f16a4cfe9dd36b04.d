/root/repo/target/debug/deps/rand_chacha-f16a4cfe9dd36b04.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f16a4cfe9dd36b04.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f16a4cfe9dd36b04.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
