/root/repo/target/debug/deps/pufatt_swatt-5eefeb150a816789.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_swatt-5eefeb150a816789.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
