/root/repo/target/debug/deps/pufatt-ef6172ab756e35f5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt-ef6172ab756e35f5.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
