/root/repo/target/debug/deps/pufatt_bench-3cc95d408a162a34.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pufatt_bench-3cc95d408a162a34: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
