/root/repo/target/debug/deps/attacks-8c49f686ec262466.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-8c49f686ec262466: tests/attacks.rs

tests/attacks.rs:
