/root/repo/target/debug/deps/pufatt_fleet-3cb8b40fc90bc5f0.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/libpufatt_fleet-3cb8b40fc90bc5f0.rlib: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/libpufatt_fleet-3cb8b40fc90bc5f0.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
