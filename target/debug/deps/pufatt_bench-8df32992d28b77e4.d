/root/repo/target/debug/deps/pufatt_bench-8df32992d28b77e4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pufatt_bench-8df32992d28b77e4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
