/root/repo/target/debug/deps/golden_gen-c33206233f972838.d: tests/golden_gen.rs

/root/repo/target/debug/deps/golden_gen-c33206233f972838: tests/golden_gen.rs

tests/golden_gen.rs:
