/root/repo/target/debug/deps/design_space-e319c38c28155312.d: crates/bench/benches/design_space.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_space-e319c38c28155312.rmeta: crates/bench/benches/design_space.rs Cargo.toml

crates/bench/benches/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
