/root/repo/target/debug/deps/pufatt_swatt-85e2d375d095ff8b.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_swatt-85e2d375d095ff8b.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
