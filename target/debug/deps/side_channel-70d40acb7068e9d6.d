/root/repo/target/debug/deps/side_channel-70d40acb7068e9d6.d: crates/bench/benches/side_channel.rs Cargo.toml

/root/repo/target/debug/deps/libside_channel-70d40acb7068e9d6.rmeta: crates/bench/benches/side_channel.rs Cargo.toml

crates/bench/benches/side_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
