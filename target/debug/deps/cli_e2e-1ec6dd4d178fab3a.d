/root/repo/target/debug/deps/cli_e2e-1ec6dd4d178fab3a.d: crates/cli/tests/cli_e2e.rs

/root/repo/target/debug/deps/cli_e2e-1ec6dd4d178fab3a: crates/cli/tests/cli_e2e.rs

crates/cli/tests/cli_e2e.rs:

# env-dep:CARGO_BIN_EXE_pufatt=/root/repo/target/debug/pufatt
