/root/repo/target/debug/deps/chaos-53ee64d7e4e25490.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-53ee64d7e4e25490: tests/chaos.rs

tests/chaos.rs:
