/root/repo/target/debug/deps/properties-0d5e161d63c733b3.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0d5e161d63c733b3.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
