/root/repo/target/debug/deps/ecc_ablation-d106c291882a4c3c.d: crates/bench/benches/ecc_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libecc_ablation-d106c291882a4c3c.rmeta: crates/bench/benches/ecc_ablation.rs Cargo.toml

crates/bench/benches/ecc_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
