/root/repo/target/debug/deps/side_channel-12eefe01ba4c6891.d: crates/bench/benches/side_channel.rs Cargo.toml

/root/repo/target/debug/deps/libside_channel-12eefe01ba4c6891.rmeta: crates/bench/benches/side_channel.rs Cargo.toml

crates/bench/benches/side_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
