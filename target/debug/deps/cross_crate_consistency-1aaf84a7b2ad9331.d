/root/repo/target/debug/deps/cross_crate_consistency-1aaf84a7b2ad9331.d: tests/cross_crate_consistency.rs

/root/repo/target/debug/deps/cross_crate_consistency-1aaf84a7b2ad9331: tests/cross_crate_consistency.rs

tests/cross_crate_consistency.rs:
