/root/repo/target/debug/deps/end_to_end-ff5f41f8ab752f77.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ff5f41f8ab752f77: tests/end_to_end.rs

tests/end_to_end.rs:
