/root/repo/target/debug/deps/pufatt_repro-1de55026ef108d95.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_repro-1de55026ef108d95.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
