/root/repo/target/debug/deps/fig3_interchip_hd-fc37a811b1478452.d: crates/bench/benches/fig3_interchip_hd.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_interchip_hd-fc37a811b1478452.rmeta: crates/bench/benches/fig3_interchip_hd.rs Cargo.toml

crates/bench/benches/fig3_interchip_hd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
