/root/repo/target/debug/deps/rand-a994e6d08d31c698.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a994e6d08d31c698.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
