/root/repo/target/debug/deps/fpga_boards-94c5e80430e4d5c7.d: crates/bench/benches/fpga_boards.rs Cargo.toml

/root/repo/target/debug/deps/libfpga_boards-94c5e80430e4d5c7.rmeta: crates/bench/benches/fpga_boards.rs Cargo.toml

crates/bench/benches/fpga_boards.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
