/root/repo/target/debug/deps/table1_resources-6b011026fa0fcfe4.d: crates/bench/benches/table1_resources.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_resources-6b011026fa0fcfe4.rmeta: crates/bench/benches/table1_resources.rs Cargo.toml

crates/bench/benches/table1_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
