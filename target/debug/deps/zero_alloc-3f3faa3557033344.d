/root/repo/target/debug/deps/zero_alloc-3f3faa3557033344.d: tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-3f3faa3557033344.rmeta: tests/zero_alloc.rs Cargo.toml

tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
