/root/repo/target/debug/deps/pufatt_alupuf-d261b4efcfe56d36.d: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

/root/repo/target/debug/deps/libpufatt_alupuf-d261b4efcfe56d36.rmeta: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

crates/alupuf/src/lib.rs:
crates/alupuf/src/aging.rs:
crates/alupuf/src/arbiter.rs:
crates/alupuf/src/challenge.rs:
crates/alupuf/src/device.rs:
crates/alupuf/src/emulate.rs:
crates/alupuf/src/fpga.rs:
crates/alupuf/src/quality.rs:
crates/alupuf/src/resources.rs:
crates/alupuf/src/stats.rs:
crates/alupuf/src/tamper.rs:
