/root/repo/target/debug/deps/pufatt_repro-904e7d37c268923b.d: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-904e7d37c268923b.rlib: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-904e7d37c268923b.rmeta: src/lib.rs

src/lib.rs:
