/root/repo/target/debug/deps/pufatt_repro-daf37c68cfe58f12.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_repro-daf37c68cfe58f12.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
