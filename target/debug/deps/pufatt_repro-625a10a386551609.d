/root/repo/target/debug/deps/pufatt_repro-625a10a386551609.d: src/lib.rs

/root/repo/target/debug/deps/pufatt_repro-625a10a386551609: src/lib.rs

src/lib.rs:
