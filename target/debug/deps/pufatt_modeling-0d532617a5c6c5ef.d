/root/repo/target/debug/deps/pufatt_modeling-0d532617a5c6c5ef.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_modeling-0d532617a5c6c5ef.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
