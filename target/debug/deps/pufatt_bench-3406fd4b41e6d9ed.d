/root/repo/target/debug/deps/pufatt_bench-3406fd4b41e6d9ed.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_bench-3406fd4b41e6d9ed.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
