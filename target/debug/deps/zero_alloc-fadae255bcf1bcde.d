/root/repo/target/debug/deps/zero_alloc-fadae255bcf1bcde.d: tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-fadae255bcf1bcde: tests/zero_alloc.rs

tests/zero_alloc.rs:
