/root/repo/target/debug/deps/chaos-d932f3f02dbce474.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-d932f3f02dbce474.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
