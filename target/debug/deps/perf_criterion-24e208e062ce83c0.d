/root/repo/target/debug/deps/perf_criterion-24e208e062ce83c0.d: crates/bench/benches/perf_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libperf_criterion-24e208e062ce83c0.rmeta: crates/bench/benches/perf_criterion.rs Cargo.toml

crates/bench/benches/perf_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
