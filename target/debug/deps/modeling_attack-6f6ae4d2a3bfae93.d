/root/repo/target/debug/deps/modeling_attack-6f6ae4d2a3bfae93.d: crates/bench/benches/modeling_attack.rs Cargo.toml

/root/repo/target/debug/deps/libmodeling_attack-6f6ae4d2a3bfae93.rmeta: crates/bench/benches/modeling_attack.rs Cargo.toml

crates/bench/benches/modeling_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
