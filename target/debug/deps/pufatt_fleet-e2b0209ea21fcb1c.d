/root/repo/target/debug/deps/pufatt_fleet-e2b0209ea21fcb1c.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/libpufatt_fleet-e2b0209ea21fcb1c.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
