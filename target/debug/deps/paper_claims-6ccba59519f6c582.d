/root/repo/target/debug/deps/paper_claims-6ccba59519f6c582.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-6ccba59519f6c582: tests/paper_claims.rs

tests/paper_claims.rs:
