/root/repo/target/debug/deps/overclocking_attack-de1fb35bfd06f36e.d: crates/bench/benches/overclocking_attack.rs Cargo.toml

/root/repo/target/debug/deps/liboverclocking_attack-de1fb35bfd06f36e.rmeta: crates/bench/benches/overclocking_attack.rs Cargo.toml

crates/bench/benches/overclocking_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
