/root/repo/target/debug/deps/rand_chacha-54b033a006e350b2.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-54b033a006e350b2.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
