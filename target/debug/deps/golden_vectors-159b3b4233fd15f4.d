/root/repo/target/debug/deps/golden_vectors-159b3b4233fd15f4.d: tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-159b3b4233fd15f4: tests/golden_vectors.rs

tests/golden_vectors.rs:
