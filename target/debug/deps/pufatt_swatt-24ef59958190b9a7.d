/root/repo/target/debug/deps/pufatt_swatt-24ef59958190b9a7.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

/root/repo/target/debug/deps/libpufatt_swatt-24ef59958190b9a7.rlib: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

/root/repo/target/debug/deps/libpufatt_swatt-24ef59958190b9a7.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
