/root/repo/target/debug/deps/pufatt_faults-ec9243f36e02cfad.d: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_faults-ec9243f36e02cfad.rmeta: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/channel.rs:
crates/faults/src/plan.rs:
crates/faults/src/session.rs:
crates/faults/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
