/root/repo/target/debug/deps/pufatt_repro-db7a184b7c0f00ec.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_repro-db7a184b7c0f00ec.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
