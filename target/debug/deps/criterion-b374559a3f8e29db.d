/root/repo/target/debug/deps/criterion-b374559a3f8e29db.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b374559a3f8e29db.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
