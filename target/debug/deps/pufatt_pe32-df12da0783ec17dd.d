/root/repo/target/debug/deps/pufatt_pe32-df12da0783ec17dd.d: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_pe32-df12da0783ec17dd.rmeta: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs Cargo.toml

crates/pe32/src/lib.rs:
crates/pe32/src/asm.rs:
crates/pe32/src/cpu.rs:
crates/pe32/src/isa.rs:
crates/pe32/src/programs.rs:
crates/pe32/src/puf_port.rs:
crates/pe32/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
