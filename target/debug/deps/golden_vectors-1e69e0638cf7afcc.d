/root/repo/target/debug/deps/golden_vectors-1e69e0638cf7afcc.d: tests/golden_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_vectors-1e69e0638cf7afcc.rmeta: tests/golden_vectors.rs Cargo.toml

tests/golden_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
