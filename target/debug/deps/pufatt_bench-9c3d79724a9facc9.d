/root/repo/target/debug/deps/pufatt_bench-9c3d79724a9facc9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpufatt_bench-9c3d79724a9facc9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpufatt_bench-9c3d79724a9facc9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
