/root/repo/target/debug/deps/pufatt_fleet-81d21febe478fc03.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_fleet-81d21febe478fc03.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
