/root/repo/target/debug/deps/pufatt_repro-76a5eff7dc76126c.d: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-76a5eff7dc76126c.rlib: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-76a5eff7dc76126c.rmeta: src/lib.rs

src/lib.rs:
