/root/repo/target/debug/deps/end_to_end-37555a2ff968d7cf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-37555a2ff968d7cf: tests/end_to_end.rs

tests/end_to_end.rs:
