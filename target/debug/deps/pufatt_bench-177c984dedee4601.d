/root/repo/target/debug/deps/pufatt_bench-177c984dedee4601.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_bench-177c984dedee4601.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
