/root/repo/target/debug/deps/fig4_intrachip_hd-bc6b08148f541518.d: crates/bench/benches/fig4_intrachip_hd.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_intrachip_hd-bc6b08148f541518.rmeta: crates/bench/benches/fig4_intrachip_hd.rs Cargo.toml

crates/bench/benches/fig4_intrachip_hd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
