/root/repo/target/debug/deps/pufatt_fleet-38f110a8fb002156.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/libpufatt_fleet-38f110a8fb002156.rlib: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/libpufatt_fleet-38f110a8fb002156.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
