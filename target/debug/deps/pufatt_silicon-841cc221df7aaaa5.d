/root/repo/target/debug/deps/pufatt_silicon-841cc221df7aaaa5.d: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs

/root/repo/target/debug/deps/libpufatt_silicon-841cc221df7aaaa5.rmeta: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs

crates/silicon/src/lib.rs:
crates/silicon/src/delay.rs:
crates/silicon/src/dot.rs:
crates/silicon/src/env.rs:
crates/silicon/src/gen.rs:
crates/silicon/src/gen_adders.rs:
crates/silicon/src/netlist.rs:
crates/silicon/src/sim.rs:
crates/silicon/src/sta.rs:
crates/silicon/src/variation.rs:
