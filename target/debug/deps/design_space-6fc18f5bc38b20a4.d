/root/repo/target/debug/deps/design_space-6fc18f5bc38b20a4.d: crates/bench/benches/design_space.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_space-6fc18f5bc38b20a4.rmeta: crates/bench/benches/design_space.rs Cargo.toml

crates/bench/benches/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
