/root/repo/target/debug/deps/table1_resources-cdea851250919dca.d: crates/bench/benches/table1_resources.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_resources-cdea851250919dca.rmeta: crates/bench/benches/table1_resources.rs Cargo.toml

crates/bench/benches/table1_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
