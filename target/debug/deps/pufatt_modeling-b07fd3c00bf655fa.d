/root/repo/target/debug/deps/pufatt_modeling-b07fd3c00bf655fa.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_modeling-b07fd3c00bf655fa.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
