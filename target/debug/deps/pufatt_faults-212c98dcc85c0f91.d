/root/repo/target/debug/deps/pufatt_faults-212c98dcc85c0f91.d: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/debug/deps/libpufatt_faults-212c98dcc85c0f91.rlib: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/debug/deps/libpufatt_faults-212c98dcc85c0f91.rmeta: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

crates/faults/src/lib.rs:
crates/faults/src/channel.rs:
crates/faults/src/plan.rs:
crates/faults/src/session.rs:
crates/faults/src/sweep.rs:
