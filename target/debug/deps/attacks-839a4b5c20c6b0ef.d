/root/repo/target/debug/deps/attacks-839a4b5c20c6b0ef.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-839a4b5c20c6b0ef: tests/attacks.rs

tests/attacks.rs:
