/root/repo/target/debug/deps/proptest-d69aea87f906518e.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d69aea87f906518e.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d69aea87f906518e.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
