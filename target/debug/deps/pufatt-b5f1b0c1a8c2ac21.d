/root/repo/target/debug/deps/pufatt-b5f1b0c1a8c2ac21.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt-b5f1b0c1a8c2ac21.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
