/root/repo/target/debug/deps/pufatt_repro-cab3a690a9924c3a.d: src/lib.rs

/root/repo/target/debug/deps/pufatt_repro-cab3a690a9924c3a: src/lib.rs

src/lib.rs:
