/root/repo/target/debug/deps/pufatt_silicon-e4d85ffd9fcc1f05.d: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_silicon-e4d85ffd9fcc1f05.rmeta: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs Cargo.toml

crates/silicon/src/lib.rs:
crates/silicon/src/delay.rs:
crates/silicon/src/dot.rs:
crates/silicon/src/env.rs:
crates/silicon/src/gen.rs:
crates/silicon/src/gen_adders.rs:
crates/silicon/src/netlist.rs:
crates/silicon/src/sim.rs:
crates/silicon/src/sta.rs:
crates/silicon/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
