/root/repo/target/debug/deps/pufatt-6f4cca4f12adde6a.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt-6f4cca4f12adde6a.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/enroll.rs:
crates/core/src/error.rs:
crates/core/src/obfuscate.rs:
crates/core/src/pipeline.rs:
crates/core/src/ports.rs:
crates/core/src/protocol.rs:
crates/core/src/ring.rs:
crates/core/src/server.rs:
crates/core/src/sidechannel.rs:
crates/core/src/slender.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
