/root/repo/target/debug/deps/arbiter_comparison-8808372922c381e6.d: crates/bench/benches/arbiter_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libarbiter_comparison-8808372922c381e6.rmeta: crates/bench/benches/arbiter_comparison.rs Cargo.toml

crates/bench/benches/arbiter_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
