/root/repo/target/debug/deps/properties-5552c7df7ff746bf.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5552c7df7ff746bf: tests/properties.rs

tests/properties.rs:
