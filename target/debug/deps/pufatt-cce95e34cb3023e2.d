/root/repo/target/debug/deps/pufatt-cce95e34cb3023e2.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt-cce95e34cb3023e2.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
