/root/repo/target/debug/deps/rand_chacha-34b2dd05383996a0.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-34b2dd05383996a0.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
