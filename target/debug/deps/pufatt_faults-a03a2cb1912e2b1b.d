/root/repo/target/debug/deps/pufatt_faults-a03a2cb1912e2b1b.d: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/debug/deps/pufatt_faults-a03a2cb1912e2b1b: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

crates/faults/src/lib.rs:
crates/faults/src/channel.rs:
crates/faults/src/plan.rs:
crates/faults/src/session.rs:
crates/faults/src/sweep.rs:
