/root/repo/target/debug/deps/cross_crate_consistency-58e0e2dabdba611c.d: tests/cross_crate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_consistency-58e0e2dabdba611c.rmeta: tests/cross_crate_consistency.rs Cargo.toml

tests/cross_crate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
