/root/repo/target/debug/deps/cli_e2e-d8703ae64dd8fd13.d: crates/cli/tests/cli_e2e.rs

/root/repo/target/debug/deps/cli_e2e-d8703ae64dd8fd13: crates/cli/tests/cli_e2e.rs

crates/cli/tests/cli_e2e.rs:

# env-dep:CARGO_BIN_EXE_pufatt=/root/repo/target/debug/pufatt
