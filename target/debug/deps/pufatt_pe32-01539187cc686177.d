/root/repo/target/debug/deps/pufatt_pe32-01539187cc686177.d: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

/root/repo/target/debug/deps/libpufatt_pe32-01539187cc686177.rmeta: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

crates/pe32/src/lib.rs:
crates/pe32/src/asm.rs:
crates/pe32/src/cpu.rs:
crates/pe32/src/isa.rs:
crates/pe32/src/programs.rs:
crates/pe32/src/puf_port.rs:
crates/pe32/src/trace.rs:
