/root/repo/target/debug/deps/pufatt-f44599c0eb7a71f3.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/pufatt-f44599c0eb7a71f3: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
