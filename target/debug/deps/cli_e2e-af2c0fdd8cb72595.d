/root/repo/target/debug/deps/cli_e2e-af2c0fdd8cb72595.d: crates/cli/tests/cli_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libcli_e2e-af2c0fdd8cb72595.rmeta: crates/cli/tests/cli_e2e.rs Cargo.toml

crates/cli/tests/cli_e2e.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pufatt=placeholder:pufatt
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
