/root/repo/target/debug/deps/pufatt_modeling-d966adcaf3096fe3.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/debug/deps/libpufatt_modeling-d966adcaf3096fe3.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
