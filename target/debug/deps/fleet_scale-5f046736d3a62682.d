/root/repo/target/debug/deps/fleet_scale-5f046736d3a62682.d: tests/fleet_scale.rs

/root/repo/target/debug/deps/fleet_scale-5f046736d3a62682: tests/fleet_scale.rs

tests/fleet_scale.rs:
