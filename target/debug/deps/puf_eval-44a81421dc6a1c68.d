/root/repo/target/debug/deps/puf_eval-44a81421dc6a1c68.d: crates/bench/benches/puf_eval.rs Cargo.toml

/root/repo/target/debug/deps/libpuf_eval-44a81421dc6a1c68.rmeta: crates/bench/benches/puf_eval.rs Cargo.toml

crates/bench/benches/puf_eval.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
