/root/repo/target/debug/deps/pufatt-92378820bf1f4992.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt-92378820bf1f4992.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
