/root/repo/target/debug/deps/fleet_throughput-35a887f0eb072bd5.d: crates/bench/benches/fleet_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_throughput-35a887f0eb072bd5.rmeta: crates/bench/benches/fleet_throughput.rs Cargo.toml

crates/bench/benches/fleet_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
