/root/repo/target/debug/deps/pufatt_alupuf-293482a5b565521b.d: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_alupuf-293482a5b565521b.rmeta: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs Cargo.toml

crates/alupuf/src/lib.rs:
crates/alupuf/src/aging.rs:
crates/alupuf/src/arbiter.rs:
crates/alupuf/src/challenge.rs:
crates/alupuf/src/device.rs:
crates/alupuf/src/emulate.rs:
crates/alupuf/src/fpga.rs:
crates/alupuf/src/quality.rs:
crates/alupuf/src/resources.rs:
crates/alupuf/src/stats.rs:
crates/alupuf/src/tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
