/root/repo/target/debug/deps/pufatt_bench-32a2f751bb422377.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpufatt_bench-32a2f751bb422377.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpufatt_bench-32a2f751bb422377.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
