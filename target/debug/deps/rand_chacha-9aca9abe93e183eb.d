/root/repo/target/debug/deps/rand_chacha-9aca9abe93e183eb.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-9aca9abe93e183eb.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
