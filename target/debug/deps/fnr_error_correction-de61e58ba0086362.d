/root/repo/target/debug/deps/fnr_error_correction-de61e58ba0086362.d: crates/bench/benches/fnr_error_correction.rs Cargo.toml

/root/repo/target/debug/deps/libfnr_error_correction-de61e58ba0086362.rmeta: crates/bench/benches/fnr_error_correction.rs Cargo.toml

crates/bench/benches/fnr_error_correction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
