/root/repo/target/debug/deps/pufatt_swatt-f777b9307fd85819.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

/root/repo/target/debug/deps/libpufatt_swatt-f777b9307fd85819.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
