/root/repo/target/debug/deps/pufatt_modeling-76459dcbecaccc74.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/debug/deps/pufatt_modeling-76459dcbecaccc74: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
