/root/repo/target/debug/deps/attacks-0f62ea810677010d.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-0f62ea810677010d: tests/attacks.rs

tests/attacks.rs:
