/root/repo/target/debug/deps/hardware_tamper-a7ca19ce89e3df8f.d: crates/bench/benches/hardware_tamper.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_tamper-a7ca19ce89e3df8f.rmeta: crates/bench/benches/hardware_tamper.rs Cargo.toml

crates/bench/benches/hardware_tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
