/root/repo/target/debug/deps/pufatt-698747d6b40535dd.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/pufatt-698747d6b40535dd: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
