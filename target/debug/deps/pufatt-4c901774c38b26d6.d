/root/repo/target/debug/deps/pufatt-4c901774c38b26d6.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs

/root/repo/target/debug/deps/libpufatt-4c901774c38b26d6.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/enroll.rs:
crates/core/src/error.rs:
crates/core/src/obfuscate.rs:
crates/core/src/pipeline.rs:
crates/core/src/ports.rs:
crates/core/src/protocol.rs:
crates/core/src/ring.rs:
crates/core/src/server.rs:
crates/core/src/sidechannel.rs:
crates/core/src/slender.rs:
