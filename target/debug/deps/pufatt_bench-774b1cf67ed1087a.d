/root/repo/target/debug/deps/pufatt_bench-774b1cf67ed1087a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_bench-774b1cf67ed1087a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
