/root/repo/target/debug/deps/attacks-306e3bcffcf83692.d: tests/attacks.rs Cargo.toml

/root/repo/target/debug/deps/libattacks-306e3bcffcf83692.rmeta: tests/attacks.rs Cargo.toml

tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
