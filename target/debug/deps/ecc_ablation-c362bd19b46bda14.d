/root/repo/target/debug/deps/ecc_ablation-c362bd19b46bda14.d: crates/bench/benches/ecc_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libecc_ablation-c362bd19b46bda14.rmeta: crates/bench/benches/ecc_ablation.rs Cargo.toml

crates/bench/benches/ecc_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
