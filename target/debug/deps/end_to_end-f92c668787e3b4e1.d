/root/repo/target/debug/deps/end_to_end-f92c668787e3b4e1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f92c668787e3b4e1: tests/end_to_end.rs

tests/end_to_end.rs:
