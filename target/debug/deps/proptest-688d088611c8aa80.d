/root/repo/target/debug/deps/proptest-688d088611c8aa80.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-688d088611c8aa80.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
