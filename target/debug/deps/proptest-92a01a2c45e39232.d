/root/repo/target/debug/deps/proptest-92a01a2c45e39232.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-92a01a2c45e39232: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
