/root/repo/target/debug/deps/attacks-57c4a1a3816d8572.d: tests/attacks.rs

/root/repo/target/debug/deps/attacks-57c4a1a3816d8572: tests/attacks.rs

tests/attacks.rs:
