/root/repo/target/debug/deps/protocol_security-d6e98394e4014063.d: crates/bench/benches/protocol_security.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_security-d6e98394e4014063.rmeta: crates/bench/benches/protocol_security.rs Cargo.toml

crates/bench/benches/protocol_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
