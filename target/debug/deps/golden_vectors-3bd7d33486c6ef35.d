/root/repo/target/debug/deps/golden_vectors-3bd7d33486c6ef35.d: tests/golden_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_vectors-3bd7d33486c6ef35.rmeta: tests/golden_vectors.rs Cargo.toml

tests/golden_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
