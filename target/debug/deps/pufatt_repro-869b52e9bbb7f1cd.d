/root/repo/target/debug/deps/pufatt_repro-869b52e9bbb7f1cd.d: src/lib.rs

/root/repo/target/debug/deps/pufatt_repro-869b52e9bbb7f1cd: src/lib.rs

src/lib.rs:
