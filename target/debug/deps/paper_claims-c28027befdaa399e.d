/root/repo/target/debug/deps/paper_claims-c28027befdaa399e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c28027befdaa399e: tests/paper_claims.rs

tests/paper_claims.rs:
