/root/repo/target/debug/deps/hardware_tamper-695bd97e996d8d5b.d: crates/bench/benches/hardware_tamper.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_tamper-695bd97e996d8d5b.rmeta: crates/bench/benches/hardware_tamper.rs Cargo.toml

crates/bench/benches/hardware_tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
