/root/repo/target/debug/deps/fnr_error_correction-71b9bcfb98b946fc.d: crates/bench/benches/fnr_error_correction.rs Cargo.toml

/root/repo/target/debug/deps/libfnr_error_correction-71b9bcfb98b946fc.rmeta: crates/bench/benches/fnr_error_correction.rs Cargo.toml

crates/bench/benches/fnr_error_correction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
