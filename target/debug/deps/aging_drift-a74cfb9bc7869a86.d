/root/repo/target/debug/deps/aging_drift-a74cfb9bc7869a86.d: crates/bench/benches/aging_drift.rs Cargo.toml

/root/repo/target/debug/deps/libaging_drift-a74cfb9bc7869a86.rmeta: crates/bench/benches/aging_drift.rs Cargo.toml

crates/bench/benches/aging_drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
