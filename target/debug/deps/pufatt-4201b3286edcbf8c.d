/root/repo/target/debug/deps/pufatt-4201b3286edcbf8c.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/pufatt-4201b3286edcbf8c: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
