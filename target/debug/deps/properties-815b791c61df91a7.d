/root/repo/target/debug/deps/properties-815b791c61df91a7.d: tests/properties.rs

/root/repo/target/debug/deps/properties-815b791c61df91a7: tests/properties.rs

tests/properties.rs:
