/root/repo/target/debug/deps/adder_ablation-6429ceba47448416.d: crates/bench/benches/adder_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libadder_ablation-6429ceba47448416.rmeta: crates/bench/benches/adder_ablation.rs Cargo.toml

crates/bench/benches/adder_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
