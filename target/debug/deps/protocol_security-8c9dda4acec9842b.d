/root/repo/target/debug/deps/protocol_security-8c9dda4acec9842b.d: crates/bench/benches/protocol_security.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_security-8c9dda4acec9842b.rmeta: crates/bench/benches/protocol_security.rs Cargo.toml

crates/bench/benches/protocol_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
