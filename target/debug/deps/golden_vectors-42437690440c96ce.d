/root/repo/target/debug/deps/golden_vectors-42437690440c96ce.d: tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-42437690440c96ce: tests/golden_vectors.rs

tests/golden_vectors.rs:
