/root/repo/target/debug/deps/pufatt_repro-564655bd02edf91e.d: src/lib.rs

/root/repo/target/debug/deps/pufatt_repro-564655bd02edf91e: src/lib.rs

src/lib.rs:
