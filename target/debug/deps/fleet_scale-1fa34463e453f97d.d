/root/repo/target/debug/deps/fleet_scale-1fa34463e453f97d.d: tests/fleet_scale.rs

/root/repo/target/debug/deps/fleet_scale-1fa34463e453f97d: tests/fleet_scale.rs

tests/fleet_scale.rs:
