/root/repo/target/debug/deps/proptest-2c4a799cc87b8b4f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2c4a799cc87b8b4f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
