/root/repo/target/debug/deps/pufatt_faults-97c8b94747e58948.d: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/debug/deps/libpufatt_faults-97c8b94747e58948.rmeta: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

crates/faults/src/lib.rs:
crates/faults/src/channel.rs:
crates/faults/src/plan.rs:
crates/faults/src/session.rs:
crates/faults/src/sweep.rs:
