/root/repo/target/debug/deps/pufatt_repro-0e442d0b66142d31.d: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-0e442d0b66142d31.rlib: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-0e442d0b66142d31.rmeta: src/lib.rs

src/lib.rs:
