/root/repo/target/debug/deps/cross_crate_consistency-ada0f8f4c9694444.d: tests/cross_crate_consistency.rs

/root/repo/target/debug/deps/cross_crate_consistency-ada0f8f4c9694444: tests/cross_crate_consistency.rs

tests/cross_crate_consistency.rs:
