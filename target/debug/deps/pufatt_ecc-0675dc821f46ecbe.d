/root/repo/target/debug/deps/pufatt_ecc-0675dc821f46ecbe.d: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/bch.rs crates/ecc/src/code.rs crates/ecc/src/fuzzy.rs crates/ecc/src/gf2.rs crates/ecc/src/gf2m.rs crates/ecc/src/golay.rs crates/ecc/src/noise.rs crates/ecc/src/repetition.rs crates/ecc/src/rm.rs crates/ecc/src/table.rs

/root/repo/target/debug/deps/libpufatt_ecc-0675dc821f46ecbe.rmeta: crates/ecc/src/lib.rs crates/ecc/src/analysis.rs crates/ecc/src/bch.rs crates/ecc/src/code.rs crates/ecc/src/fuzzy.rs crates/ecc/src/gf2.rs crates/ecc/src/gf2m.rs crates/ecc/src/golay.rs crates/ecc/src/noise.rs crates/ecc/src/repetition.rs crates/ecc/src/rm.rs crates/ecc/src/table.rs

crates/ecc/src/lib.rs:
crates/ecc/src/analysis.rs:
crates/ecc/src/bch.rs:
crates/ecc/src/code.rs:
crates/ecc/src/fuzzy.rs:
crates/ecc/src/gf2.rs:
crates/ecc/src/gf2m.rs:
crates/ecc/src/golay.rs:
crates/ecc/src/noise.rs:
crates/ecc/src/repetition.rs:
crates/ecc/src/rm.rs:
crates/ecc/src/table.rs:
