/root/repo/target/debug/deps/cross_crate_consistency-bd22ce9b7a42fcbe.d: tests/cross_crate_consistency.rs

/root/repo/target/debug/deps/cross_crate_consistency-bd22ce9b7a42fcbe: tests/cross_crate_consistency.rs

tests/cross_crate_consistency.rs:
