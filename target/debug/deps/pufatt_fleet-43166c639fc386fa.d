/root/repo/target/debug/deps/pufatt_fleet-43166c639fc386fa.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/debug/deps/pufatt_fleet-43166c639fc386fa: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
