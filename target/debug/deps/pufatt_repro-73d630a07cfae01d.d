/root/repo/target/debug/deps/pufatt_repro-73d630a07cfae01d.d: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-73d630a07cfae01d.rlib: src/lib.rs

/root/repo/target/debug/deps/libpufatt_repro-73d630a07cfae01d.rmeta: src/lib.rs

src/lib.rs:
