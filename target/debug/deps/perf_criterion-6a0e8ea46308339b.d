/root/repo/target/debug/deps/perf_criterion-6a0e8ea46308339b.d: crates/bench/benches/perf_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libperf_criterion-6a0e8ea46308339b.rmeta: crates/bench/benches/perf_criterion.rs Cargo.toml

crates/bench/benches/perf_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
