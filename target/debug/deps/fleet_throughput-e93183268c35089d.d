/root/repo/target/debug/deps/fleet_throughput-e93183268c35089d.d: crates/bench/benches/fleet_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_throughput-e93183268c35089d.rmeta: crates/bench/benches/fleet_throughput.rs Cargo.toml

crates/bench/benches/fleet_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
