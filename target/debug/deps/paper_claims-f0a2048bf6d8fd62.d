/root/repo/target/debug/deps/paper_claims-f0a2048bf6d8fd62.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-f0a2048bf6d8fd62.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
