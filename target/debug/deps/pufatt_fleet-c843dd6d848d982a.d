/root/repo/target/debug/deps/pufatt_fleet-c843dd6d848d982a.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libpufatt_fleet-c843dd6d848d982a.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
