/root/repo/target/debug/deps/fleet_scale-c8992c53588aff3d.d: tests/fleet_scale.rs

/root/repo/target/debug/deps/fleet_scale-c8992c53588aff3d: tests/fleet_scale.rs

tests/fleet_scale.rs:
