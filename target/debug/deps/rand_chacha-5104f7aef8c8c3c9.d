/root/repo/target/debug/deps/rand_chacha-5104f7aef8c8c3c9.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-5104f7aef8c8c3c9: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
