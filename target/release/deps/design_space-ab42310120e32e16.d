/root/repo/target/release/deps/design_space-ab42310120e32e16.d: crates/bench/benches/design_space.rs Cargo.toml

/root/repo/target/release/deps/libdesign_space-ab42310120e32e16.rmeta: crates/bench/benches/design_space.rs Cargo.toml

crates/bench/benches/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
