/root/repo/target/release/deps/pufatt_alupuf-92c3b9b4273bd5fc.d: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_alupuf-92c3b9b4273bd5fc.rmeta: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs Cargo.toml

crates/alupuf/src/lib.rs:
crates/alupuf/src/aging.rs:
crates/alupuf/src/arbiter.rs:
crates/alupuf/src/challenge.rs:
crates/alupuf/src/device.rs:
crates/alupuf/src/emulate.rs:
crates/alupuf/src/fpga.rs:
crates/alupuf/src/quality.rs:
crates/alupuf/src/resources.rs:
crates/alupuf/src/stats.rs:
crates/alupuf/src/tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
