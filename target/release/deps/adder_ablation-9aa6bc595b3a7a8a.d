/root/repo/target/release/deps/adder_ablation-9aa6bc595b3a7a8a.d: crates/bench/benches/adder_ablation.rs Cargo.toml

/root/repo/target/release/deps/libadder_ablation-9aa6bc595b3a7a8a.rmeta: crates/bench/benches/adder_ablation.rs Cargo.toml

crates/bench/benches/adder_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
