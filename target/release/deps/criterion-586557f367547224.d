/root/repo/target/release/deps/criterion-586557f367547224.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-586557f367547224.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-586557f367547224.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
