/root/repo/target/release/deps/pufatt_pe32-8d1d99cdcdce4d1a.d: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_pe32-8d1d99cdcdce4d1a.rmeta: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs Cargo.toml

crates/pe32/src/lib.rs:
crates/pe32/src/asm.rs:
crates/pe32/src/cpu.rs:
crates/pe32/src/isa.rs:
crates/pe32/src/programs.rs:
crates/pe32/src/puf_port.rs:
crates/pe32/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
