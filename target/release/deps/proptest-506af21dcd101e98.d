/root/repo/target/release/deps/proptest-506af21dcd101e98.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-506af21dcd101e98.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-506af21dcd101e98.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
