/root/repo/target/release/deps/pufatt_modeling-04c673a190610be4.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/release/deps/libpufatt_modeling-04c673a190610be4.rlib: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/release/deps/libpufatt_modeling-04c673a190610be4.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
