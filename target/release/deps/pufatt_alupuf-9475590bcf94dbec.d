/root/repo/target/release/deps/pufatt_alupuf-9475590bcf94dbec.d: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

/root/repo/target/release/deps/libpufatt_alupuf-9475590bcf94dbec.rlib: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

/root/repo/target/release/deps/libpufatt_alupuf-9475590bcf94dbec.rmeta: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

crates/alupuf/src/lib.rs:
crates/alupuf/src/aging.rs:
crates/alupuf/src/arbiter.rs:
crates/alupuf/src/challenge.rs:
crates/alupuf/src/device.rs:
crates/alupuf/src/emulate.rs:
crates/alupuf/src/fpga.rs:
crates/alupuf/src/quality.rs:
crates/alupuf/src/resources.rs:
crates/alupuf/src/stats.rs:
crates/alupuf/src/tamper.rs:
