/root/repo/target/release/deps/cross_crate_consistency-eeafdde76b536b31.d: tests/cross_crate_consistency.rs Cargo.toml

/root/repo/target/release/deps/libcross_crate_consistency-eeafdde76b536b31.rmeta: tests/cross_crate_consistency.rs Cargo.toml

tests/cross_crate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
