/root/repo/target/release/deps/pufatt_faults-cba55757b2390eb2.d: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/release/deps/libpufatt_faults-cba55757b2390eb2.rlib: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

/root/repo/target/release/deps/libpufatt_faults-cba55757b2390eb2.rmeta: crates/faults/src/lib.rs crates/faults/src/channel.rs crates/faults/src/plan.rs crates/faults/src/session.rs crates/faults/src/sweep.rs

crates/faults/src/lib.rs:
crates/faults/src/channel.rs:
crates/faults/src/plan.rs:
crates/faults/src/session.rs:
crates/faults/src/sweep.rs:
