/root/repo/target/release/deps/pufatt_silicon-a4cbd12a339e9f50.d: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_silicon-a4cbd12a339e9f50.rmeta: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs Cargo.toml

crates/silicon/src/lib.rs:
crates/silicon/src/delay.rs:
crates/silicon/src/dot.rs:
crates/silicon/src/env.rs:
crates/silicon/src/gen.rs:
crates/silicon/src/gen_adders.rs:
crates/silicon/src/netlist.rs:
crates/silicon/src/sim.rs:
crates/silicon/src/sta.rs:
crates/silicon/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
