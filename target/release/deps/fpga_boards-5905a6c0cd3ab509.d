/root/repo/target/release/deps/fpga_boards-5905a6c0cd3ab509.d: crates/bench/benches/fpga_boards.rs Cargo.toml

/root/repo/target/release/deps/libfpga_boards-5905a6c0cd3ab509.rmeta: crates/bench/benches/fpga_boards.rs Cargo.toml

crates/bench/benches/fpga_boards.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
