/root/repo/target/release/deps/fig3_interchip_hd-0813d1a256eca8d0.d: crates/bench/benches/fig3_interchip_hd.rs Cargo.toml

/root/repo/target/release/deps/libfig3_interchip_hd-0813d1a256eca8d0.rmeta: crates/bench/benches/fig3_interchip_hd.rs Cargo.toml

crates/bench/benches/fig3_interchip_hd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
