/root/repo/target/release/deps/pufatt-7ce9fe5ff63b0bb6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/pufatt-7ce9fe5ff63b0bb6: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
