/root/repo/target/release/deps/pufatt_pe32-fd4460d9a680221e.d: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

/root/repo/target/release/deps/libpufatt_pe32-fd4460d9a680221e.rlib: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

/root/repo/target/release/deps/libpufatt_pe32-fd4460d9a680221e.rmeta: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

crates/pe32/src/lib.rs:
crates/pe32/src/asm.rs:
crates/pe32/src/cpu.rs:
crates/pe32/src/isa.rs:
crates/pe32/src/programs.rs:
crates/pe32/src/puf_port.rs:
crates/pe32/src/trace.rs:
