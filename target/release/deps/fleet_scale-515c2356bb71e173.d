/root/repo/target/release/deps/fleet_scale-515c2356bb71e173.d: tests/fleet_scale.rs Cargo.toml

/root/repo/target/release/deps/libfleet_scale-515c2356bb71e173.rmeta: tests/fleet_scale.rs Cargo.toml

tests/fleet_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
