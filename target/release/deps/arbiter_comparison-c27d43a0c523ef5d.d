/root/repo/target/release/deps/arbiter_comparison-c27d43a0c523ef5d.d: crates/bench/benches/arbiter_comparison.rs Cargo.toml

/root/repo/target/release/deps/libarbiter_comparison-c27d43a0c523ef5d.rmeta: crates/bench/benches/arbiter_comparison.rs Cargo.toml

crates/bench/benches/arbiter_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
