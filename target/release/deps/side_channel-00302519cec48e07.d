/root/repo/target/release/deps/side_channel-00302519cec48e07.d: crates/bench/benches/side_channel.rs Cargo.toml

/root/repo/target/release/deps/libside_channel-00302519cec48e07.rmeta: crates/bench/benches/side_channel.rs Cargo.toml

crates/bench/benches/side_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
