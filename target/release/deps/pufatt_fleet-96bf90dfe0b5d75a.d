/root/repo/target/release/deps/pufatt_fleet-96bf90dfe0b5d75a.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-96bf90dfe0b5d75a.rlib: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-96bf90dfe0b5d75a.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
