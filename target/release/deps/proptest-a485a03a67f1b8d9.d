/root/repo/target/release/deps/proptest-a485a03a67f1b8d9.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a485a03a67f1b8d9.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a485a03a67f1b8d9.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
