/root/repo/target/release/deps/attacks-917007018970a8be.d: tests/attacks.rs Cargo.toml

/root/repo/target/release/deps/libattacks-917007018970a8be.rmeta: tests/attacks.rs Cargo.toml

tests/attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
