/root/repo/target/release/deps/pufatt_repro-edc00dffc2857f22.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_repro-edc00dffc2857f22.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
