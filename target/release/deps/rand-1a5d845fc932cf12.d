/root/repo/target/release/deps/rand-1a5d845fc932cf12.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1a5d845fc932cf12.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1a5d845fc932cf12.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
