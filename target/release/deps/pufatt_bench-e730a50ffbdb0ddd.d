/root/repo/target/release/deps/pufatt_bench-e730a50ffbdb0ddd.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-e730a50ffbdb0ddd.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-e730a50ffbdb0ddd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
