/root/repo/target/release/deps/criterion-86e7c68dc29f19c5.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-86e7c68dc29f19c5.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
