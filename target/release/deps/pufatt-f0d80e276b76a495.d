/root/repo/target/release/deps/pufatt-f0d80e276b76a495.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/release/deps/libpufatt-f0d80e276b76a495.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
