/root/repo/target/release/deps/cli_e2e-15d1f5e888e32b9d.d: crates/cli/tests/cli_e2e.rs

/root/repo/target/release/deps/cli_e2e-15d1f5e888e32b9d: crates/cli/tests/cli_e2e.rs

crates/cli/tests/cli_e2e.rs:

# env-dep:CARGO_BIN_EXE_pufatt=/root/repo/target/release/pufatt
