/root/repo/target/release/deps/pufatt_repro-b129ddb2c831e72d.d: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-b129ddb2c831e72d.rlib: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-b129ddb2c831e72d.rmeta: src/lib.rs

src/lib.rs:
