/root/repo/target/release/deps/puf_eval-f924161cb2c76aed.d: crates/bench/benches/puf_eval.rs

/root/repo/target/release/deps/puf_eval-f924161cb2c76aed: crates/bench/benches/puf_eval.rs

crates/bench/benches/puf_eval.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
