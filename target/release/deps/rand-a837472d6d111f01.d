/root/repo/target/release/deps/rand-a837472d6d111f01.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a837472d6d111f01.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a837472d6d111f01.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
