/root/repo/target/release/deps/pufatt_bench-c384ed902b1eb219.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-c384ed902b1eb219.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-c384ed902b1eb219.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
