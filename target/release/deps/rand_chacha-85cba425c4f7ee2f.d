/root/repo/target/release/deps/rand_chacha-85cba425c4f7ee2f.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-85cba425c4f7ee2f.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-85cba425c4f7ee2f.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
