/root/repo/target/release/deps/table1_resources-9d29e2ba1cedb21e.d: crates/bench/benches/table1_resources.rs Cargo.toml

/root/repo/target/release/deps/libtable1_resources-9d29e2ba1cedb21e.rmeta: crates/bench/benches/table1_resources.rs Cargo.toml

crates/bench/benches/table1_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
