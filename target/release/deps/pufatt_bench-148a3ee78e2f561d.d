/root/repo/target/release/deps/pufatt_bench-148a3ee78e2f561d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-148a3ee78e2f561d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-148a3ee78e2f561d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
