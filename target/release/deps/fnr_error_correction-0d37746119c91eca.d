/root/repo/target/release/deps/fnr_error_correction-0d37746119c91eca.d: crates/bench/benches/fnr_error_correction.rs Cargo.toml

/root/repo/target/release/deps/libfnr_error_correction-0d37746119c91eca.rmeta: crates/bench/benches/fnr_error_correction.rs Cargo.toml

crates/bench/benches/fnr_error_correction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
