/root/repo/target/release/deps/pufatt-6f54f1b7340f2470.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/pufatt-6f54f1b7340f2470: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
