/root/repo/target/release/deps/hardware_tamper-abb1575fbea0ffc0.d: crates/bench/benches/hardware_tamper.rs Cargo.toml

/root/repo/target/release/deps/libhardware_tamper-abb1575fbea0ffc0.rmeta: crates/bench/benches/hardware_tamper.rs Cargo.toml

crates/bench/benches/hardware_tamper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
