/root/repo/target/release/deps/pufatt-0b3c7b67b8f4eda6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/pufatt-0b3c7b67b8f4eda6: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
