/root/repo/target/release/deps/pufatt_pe32-9f23ed9cb7098e79.d: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

/root/repo/target/release/deps/pufatt_pe32-9f23ed9cb7098e79: crates/pe32/src/lib.rs crates/pe32/src/asm.rs crates/pe32/src/cpu.rs crates/pe32/src/isa.rs crates/pe32/src/programs.rs crates/pe32/src/puf_port.rs crates/pe32/src/trace.rs

crates/pe32/src/lib.rs:
crates/pe32/src/asm.rs:
crates/pe32/src/cpu.rs:
crates/pe32/src/isa.rs:
crates/pe32/src/programs.rs:
crates/pe32/src/puf_port.rs:
crates/pe32/src/trace.rs:
