/root/repo/target/release/deps/puf_eval-86d6610209724c5b.d: crates/bench/benches/puf_eval.rs

/root/repo/target/release/deps/puf_eval-86d6610209724c5b: crates/bench/benches/puf_eval.rs

crates/bench/benches/puf_eval.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
