/root/repo/target/release/deps/proptest-e28ac3cd74ddab43.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-e28ac3cd74ddab43.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
