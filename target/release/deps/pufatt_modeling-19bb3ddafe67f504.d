/root/repo/target/release/deps/pufatt_modeling-19bb3ddafe67f504.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/release/deps/libpufatt_modeling-19bb3ddafe67f504.rlib: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

/root/repo/target/release/deps/libpufatt_modeling-19bb3ddafe67f504.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
