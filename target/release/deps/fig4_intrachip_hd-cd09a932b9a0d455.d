/root/repo/target/release/deps/fig4_intrachip_hd-cd09a932b9a0d455.d: crates/bench/benches/fig4_intrachip_hd.rs Cargo.toml

/root/repo/target/release/deps/libfig4_intrachip_hd-cd09a932b9a0d455.rmeta: crates/bench/benches/fig4_intrachip_hd.rs Cargo.toml

crates/bench/benches/fig4_intrachip_hd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
