/root/repo/target/release/deps/rand_chacha-56ccfc77c70be6ba.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-56ccfc77c70be6ba.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-56ccfc77c70be6ba.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
