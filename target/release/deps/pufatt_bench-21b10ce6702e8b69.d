/root/repo/target/release/deps/pufatt_bench-21b10ce6702e8b69.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_bench-21b10ce6702e8b69.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
