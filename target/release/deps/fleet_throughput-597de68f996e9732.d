/root/repo/target/release/deps/fleet_throughput-597de68f996e9732.d: crates/bench/benches/fleet_throughput.rs Cargo.toml

/root/repo/target/release/deps/libfleet_throughput-597de68f996e9732.rmeta: crates/bench/benches/fleet_throughput.rs Cargo.toml

crates/bench/benches/fleet_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
