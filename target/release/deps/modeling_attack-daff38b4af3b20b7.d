/root/repo/target/release/deps/modeling_attack-daff38b4af3b20b7.d: crates/bench/benches/modeling_attack.rs Cargo.toml

/root/repo/target/release/deps/libmodeling_attack-daff38b4af3b20b7.rmeta: crates/bench/benches/modeling_attack.rs Cargo.toml

crates/bench/benches/modeling_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
