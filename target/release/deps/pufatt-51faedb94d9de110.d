/root/repo/target/release/deps/pufatt-51faedb94d9de110.d: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs

/root/repo/target/release/deps/libpufatt-51faedb94d9de110.rlib: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs

/root/repo/target/release/deps/libpufatt-51faedb94d9de110.rmeta: crates/core/src/lib.rs crates/core/src/adversary.rs crates/core/src/enroll.rs crates/core/src/error.rs crates/core/src/obfuscate.rs crates/core/src/pipeline.rs crates/core/src/ports.rs crates/core/src/protocol.rs crates/core/src/ring.rs crates/core/src/server.rs crates/core/src/sidechannel.rs crates/core/src/slender.rs

crates/core/src/lib.rs:
crates/core/src/adversary.rs:
crates/core/src/enroll.rs:
crates/core/src/error.rs:
crates/core/src/obfuscate.rs:
crates/core/src/pipeline.rs:
crates/core/src/ports.rs:
crates/core/src/protocol.rs:
crates/core/src/ring.rs:
crates/core/src/server.rs:
crates/core/src/sidechannel.rs:
crates/core/src/slender.rs:
