/root/repo/target/release/deps/pufatt_fleet-842f0fb7fc19e116.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/pufatt_fleet-842f0fb7fc19e116: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
