/root/repo/target/release/deps/pufatt-d98e48afdc772aaa.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/release/deps/libpufatt-d98e48afdc772aaa.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
