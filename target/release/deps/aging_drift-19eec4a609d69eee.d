/root/repo/target/release/deps/aging_drift-19eec4a609d69eee.d: crates/bench/benches/aging_drift.rs Cargo.toml

/root/repo/target/release/deps/libaging_drift-19eec4a609d69eee.rmeta: crates/bench/benches/aging_drift.rs Cargo.toml

crates/bench/benches/aging_drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
