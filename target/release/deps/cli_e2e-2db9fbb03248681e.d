/root/repo/target/release/deps/cli_e2e-2db9fbb03248681e.d: crates/cli/tests/cli_e2e.rs Cargo.toml

/root/repo/target/release/deps/libcli_e2e-2db9fbb03248681e.rmeta: crates/cli/tests/cli_e2e.rs Cargo.toml

crates/cli/tests/cli_e2e.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pufatt=placeholder:pufatt
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
