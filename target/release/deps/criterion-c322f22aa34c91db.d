/root/repo/target/release/deps/criterion-c322f22aa34c91db.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-c322f22aa34c91db.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
