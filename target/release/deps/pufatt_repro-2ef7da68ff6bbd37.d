/root/repo/target/release/deps/pufatt_repro-2ef7da68ff6bbd37.d: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-2ef7da68ff6bbd37.rlib: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-2ef7da68ff6bbd37.rmeta: src/lib.rs

src/lib.rs:
