/root/repo/target/release/deps/pufatt_swatt-38e31b454fef6064.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_swatt-38e31b454fef6064.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs Cargo.toml

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
