/root/repo/target/release/deps/pufatt_repro-c54d513d6d66819c.d: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-c54d513d6d66819c.rlib: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-c54d513d6d66819c.rmeta: src/lib.rs

src/lib.rs:
