/root/repo/target/release/deps/properties-da5e4a4b96fc0a2b.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-da5e4a4b96fc0a2b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
