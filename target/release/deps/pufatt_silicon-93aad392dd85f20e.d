/root/repo/target/release/deps/pufatt_silicon-93aad392dd85f20e.d: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs

/root/repo/target/release/deps/pufatt_silicon-93aad392dd85f20e: crates/silicon/src/lib.rs crates/silicon/src/delay.rs crates/silicon/src/dot.rs crates/silicon/src/env.rs crates/silicon/src/gen.rs crates/silicon/src/gen_adders.rs crates/silicon/src/netlist.rs crates/silicon/src/sim.rs crates/silicon/src/sta.rs crates/silicon/src/variation.rs

crates/silicon/src/lib.rs:
crates/silicon/src/delay.rs:
crates/silicon/src/dot.rs:
crates/silicon/src/env.rs:
crates/silicon/src/gen.rs:
crates/silicon/src/gen_adders.rs:
crates/silicon/src/netlist.rs:
crates/silicon/src/sim.rs:
crates/silicon/src/sta.rs:
crates/silicon/src/variation.rs:
