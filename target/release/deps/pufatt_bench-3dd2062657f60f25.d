/root/repo/target/release/deps/pufatt_bench-3dd2062657f60f25.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-3dd2062657f60f25.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpufatt_bench-3dd2062657f60f25.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
