/root/repo/target/release/deps/rand_chacha-6a3a2e2fa9e1c247.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-6a3a2e2fa9e1c247.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
