/root/repo/target/release/deps/pufatt_swatt-956537a27f79b1b5.d: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

/root/repo/target/release/deps/libpufatt_swatt-956537a27f79b1b5.rlib: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

/root/repo/target/release/deps/libpufatt_swatt-956537a27f79b1b5.rmeta: crates/swatt/src/lib.rs crates/swatt/src/analysis.rs crates/swatt/src/checksum.rs crates/swatt/src/codegen.rs crates/swatt/src/codegen_classic.rs crates/swatt/src/prg.rs crates/swatt/src/swatt_classic.rs

crates/swatt/src/lib.rs:
crates/swatt/src/analysis.rs:
crates/swatt/src/checksum.rs:
crates/swatt/src/codegen.rs:
crates/swatt/src/codegen_classic.rs:
crates/swatt/src/prg.rs:
crates/swatt/src/swatt_classic.rs:
