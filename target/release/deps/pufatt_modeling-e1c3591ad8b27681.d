/root/repo/target/release/deps/pufatt_modeling-e1c3591ad8b27681.d: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_modeling-e1c3591ad8b27681.rmeta: crates/modeling/src/lib.rs crates/modeling/src/attack.rs crates/modeling/src/lr.rs crates/modeling/src/mlp.rs Cargo.toml

crates/modeling/src/lib.rs:
crates/modeling/src/attack.rs:
crates/modeling/src/lr.rs:
crates/modeling/src/mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
