/root/repo/target/release/deps/fleet_throughput-8cd5a5f62a599bbe.d: crates/bench/benches/fleet_throughput.rs

/root/repo/target/release/deps/fleet_throughput-8cd5a5f62a599bbe: crates/bench/benches/fleet_throughput.rs

crates/bench/benches/fleet_throughput.rs:
