/root/repo/target/release/deps/pufatt_repro-432f39aa6ee9df37.d: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-432f39aa6ee9df37.rlib: src/lib.rs

/root/repo/target/release/deps/libpufatt_repro-432f39aa6ee9df37.rmeta: src/lib.rs

src/lib.rs:
