/root/repo/target/release/deps/fleet_scale-06ef0eabe1f73343.d: tests/fleet_scale.rs

/root/repo/target/release/deps/fleet_scale-06ef0eabe1f73343: tests/fleet_scale.rs

tests/fleet_scale.rs:
