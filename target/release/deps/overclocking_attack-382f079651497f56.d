/root/repo/target/release/deps/overclocking_attack-382f079651497f56.d: crates/bench/benches/overclocking_attack.rs Cargo.toml

/root/repo/target/release/deps/liboverclocking_attack-382f079651497f56.rmeta: crates/bench/benches/overclocking_attack.rs Cargo.toml

crates/bench/benches/overclocking_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
