/root/repo/target/release/deps/criterion-2568d1bd12a36881.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2568d1bd12a36881.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2568d1bd12a36881.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
