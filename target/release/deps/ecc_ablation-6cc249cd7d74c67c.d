/root/repo/target/release/deps/ecc_ablation-6cc249cd7d74c67c.d: crates/bench/benches/ecc_ablation.rs Cargo.toml

/root/repo/target/release/deps/libecc_ablation-6cc249cd7d74c67c.rmeta: crates/bench/benches/ecc_ablation.rs Cargo.toml

crates/bench/benches/ecc_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
