/root/repo/target/release/deps/pufatt_alupuf-19d0888aa3cfc77c.d: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

/root/repo/target/release/deps/libpufatt_alupuf-19d0888aa3cfc77c.rlib: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

/root/repo/target/release/deps/libpufatt_alupuf-19d0888aa3cfc77c.rmeta: crates/alupuf/src/lib.rs crates/alupuf/src/aging.rs crates/alupuf/src/arbiter.rs crates/alupuf/src/challenge.rs crates/alupuf/src/device.rs crates/alupuf/src/emulate.rs crates/alupuf/src/fpga.rs crates/alupuf/src/quality.rs crates/alupuf/src/resources.rs crates/alupuf/src/stats.rs crates/alupuf/src/tamper.rs

crates/alupuf/src/lib.rs:
crates/alupuf/src/aging.rs:
crates/alupuf/src/arbiter.rs:
crates/alupuf/src/challenge.rs:
crates/alupuf/src/device.rs:
crates/alupuf/src/emulate.rs:
crates/alupuf/src/fpga.rs:
crates/alupuf/src/quality.rs:
crates/alupuf/src/resources.rs:
crates/alupuf/src/stats.rs:
crates/alupuf/src/tamper.rs:
