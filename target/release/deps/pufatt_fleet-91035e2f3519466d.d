/root/repo/target/release/deps/pufatt_fleet-91035e2f3519466d.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-91035e2f3519466d.rlib: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-91035e2f3519466d.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
