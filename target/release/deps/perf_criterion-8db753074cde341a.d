/root/repo/target/release/deps/perf_criterion-8db753074cde341a.d: crates/bench/benches/perf_criterion.rs Cargo.toml

/root/repo/target/release/deps/libperf_criterion-8db753074cde341a.rmeta: crates/bench/benches/perf_criterion.rs Cargo.toml

crates/bench/benches/perf_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
