/root/repo/target/release/deps/rand_chacha-1872cf117ab45836.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-1872cf117ab45836.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
