/root/repo/target/release/deps/protocol_security-bc310c19fadbd762.d: crates/bench/benches/protocol_security.rs Cargo.toml

/root/repo/target/release/deps/libprotocol_security-bc310c19fadbd762.rmeta: crates/bench/benches/protocol_security.rs Cargo.toml

crates/bench/benches/protocol_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
