/root/repo/target/release/deps/pufatt_fleet-5fe91f62d83fb182.d: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-5fe91f62d83fb182.rlib: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

/root/repo/target/release/deps/libpufatt_fleet-5fe91f62d83fb182.rmeta: crates/fleet/src/lib.rs crates/fleet/src/campaign.rs crates/fleet/src/metrics.rs crates/fleet/src/pool.rs crates/fleet/src/registry.rs

crates/fleet/src/lib.rs:
crates/fleet/src/campaign.rs:
crates/fleet/src/metrics.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/registry.rs:
