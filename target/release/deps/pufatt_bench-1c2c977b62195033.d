/root/repo/target/release/deps/pufatt_bench-1c2c977b62195033.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpufatt_bench-1c2c977b62195033.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
