/root/repo/target/release/deps/pufatt-b45a9592756909bd.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/pufatt-b45a9592756909bd: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
