/root/repo/target/release/examples/chaos_campaign-195be07e3d0df268.d: examples/chaos_campaign.rs

/root/repo/target/release/examples/chaos_campaign-195be07e3d0df268: examples/chaos_campaign.rs

examples/chaos_campaign.rs:
