/root/repo/target/release/examples/remote_attestation-5c947298fb81f3ec.d: examples/remote_attestation.rs Cargo.toml

/root/repo/target/release/examples/libremote_attestation-5c947298fb81f3ec.rmeta: examples/remote_attestation.rs Cargo.toml

examples/remote_attestation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
