/root/repo/target/release/examples/quickstart-1cce23df30fff2da.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1cce23df30fff2da: examples/quickstart.rs

examples/quickstart.rs:
