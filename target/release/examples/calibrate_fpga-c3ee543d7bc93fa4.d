/root/repo/target/release/examples/calibrate_fpga-c3ee543d7bc93fa4.d: crates/alupuf/examples/calibrate_fpga.rs Cargo.toml

/root/repo/target/release/examples/libcalibrate_fpga-c3ee543d7bc93fa4.rmeta: crates/alupuf/examples/calibrate_fpga.rs Cargo.toml

crates/alupuf/examples/calibrate_fpga.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
