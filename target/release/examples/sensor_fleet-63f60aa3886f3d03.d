/root/repo/target/release/examples/sensor_fleet-63f60aa3886f3d03.d: examples/sensor_fleet.rs Cargo.toml

/root/repo/target/release/examples/libsensor_fleet-63f60aa3886f3d03.rmeta: examples/sensor_fleet.rs Cargo.toml

examples/sensor_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
