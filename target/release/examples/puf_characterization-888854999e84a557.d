/root/repo/target/release/examples/puf_characterization-888854999e84a557.d: examples/puf_characterization.rs Cargo.toml

/root/repo/target/release/examples/libpuf_characterization-888854999e84a557.rmeta: examples/puf_characterization.rs Cargo.toml

examples/puf_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
