/root/repo/target/release/examples/_probe-924caf0e0532fb03.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-924caf0e0532fb03: examples/_probe.rs

examples/_probe.rs:
