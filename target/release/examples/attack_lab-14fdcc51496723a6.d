/root/repo/target/release/examples/attack_lab-14fdcc51496723a6.d: examples/attack_lab.rs Cargo.toml

/root/repo/target/release/examples/libattack_lab-14fdcc51496723a6.rmeta: examples/attack_lab.rs Cargo.toml

examples/attack_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
