/root/repo/target/release/examples/quickstart-85469ad7c2096f9b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-85469ad7c2096f9b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
