/root/repo/target/release/examples/fleet_campaign-7d529e59706fdfa2.d: examples/fleet_campaign.rs

/root/repo/target/release/examples/fleet_campaign-7d529e59706fdfa2: examples/fleet_campaign.rs

examples/fleet_campaign.rs:
