/root/repo/target/release/examples/profile_eval-8bb77e0c3a9a7eac.d: crates/bench/examples/profile_eval.rs

/root/repo/target/release/examples/profile_eval-8bb77e0c3a9a7eac: crates/bench/examples/profile_eval.rs

crates/bench/examples/profile_eval.rs:
