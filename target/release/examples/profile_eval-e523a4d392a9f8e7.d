/root/repo/target/release/examples/profile_eval-e523a4d392a9f8e7.d: crates/bench/examples/profile_eval.rs

/root/repo/target/release/examples/profile_eval-e523a4d392a9f8e7: crates/bench/examples/profile_eval.rs

crates/bench/examples/profile_eval.rs:
