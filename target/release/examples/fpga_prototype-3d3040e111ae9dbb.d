/root/repo/target/release/examples/fpga_prototype-3d3040e111ae9dbb.d: examples/fpga_prototype.rs Cargo.toml

/root/repo/target/release/examples/libfpga_prototype-3d3040e111ae9dbb.rmeta: examples/fpga_prototype.rs Cargo.toml

examples/fpga_prototype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
