/root/repo/target/release/examples/calibrate-60f11665c1f2b459.d: crates/alupuf/examples/calibrate.rs Cargo.toml

/root/repo/target/release/examples/libcalibrate-60f11665c1f2b459.rmeta: crates/alupuf/examples/calibrate.rs Cargo.toml

crates/alupuf/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
