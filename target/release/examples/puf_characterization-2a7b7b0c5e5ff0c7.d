/root/repo/target/release/examples/puf_characterization-2a7b7b0c5e5ff0c7.d: examples/puf_characterization.rs

/root/repo/target/release/examples/puf_characterization-2a7b7b0c5e5ff0c7: examples/puf_characterization.rs

examples/puf_characterization.rs:
