/root/repo/target/release/examples/fleet_campaign-c938cdd008b6f081.d: examples/fleet_campaign.rs Cargo.toml

/root/repo/target/release/examples/libfleet_campaign-c938cdd008b6f081.rmeta: examples/fleet_campaign.rs Cargo.toml

examples/fleet_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
