/root/repo/target/release/examples/fandist-b6cc232a985db829.d: crates/bench/examples/fandist.rs

/root/repo/target/release/examples/fandist-b6cc232a985db829: crates/bench/examples/fandist.rs

crates/bench/examples/fandist.rs:
