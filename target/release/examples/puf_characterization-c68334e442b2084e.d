/root/repo/target/release/examples/puf_characterization-c68334e442b2084e.d: examples/puf_characterization.rs

/root/repo/target/release/examples/puf_characterization-c68334e442b2084e: examples/puf_characterization.rs

examples/puf_characterization.rs:
