(function() {
    const implementors = Object.fromEntries([["pufatt",[["impl <a class=\"trait\" href=\"pufatt_pe32/puf_port/trait.PufPort.html\" title=\"trait pufatt_pe32::puf_port::PufPort\">PufPort</a> for <a class=\"struct\" href=\"pufatt/ports/struct.DevicePuf.html\" title=\"struct pufatt::ports::DevicePuf\">DevicePuf</a>",0],["impl <a class=\"trait\" href=\"pufatt_pe32/puf_port/trait.PufPort.html\" title=\"trait pufatt_pe32::puf_port::PufPort\">PufPort</a> for <a class=\"struct\" href=\"pufatt/ports/struct.SharedDevicePuf.html\" title=\"struct pufatt::ports::SharedDevicePuf\">SharedDevicePuf</a>",0]]],["pufatt",[["impl PufPort for <a class=\"struct\" href=\"pufatt/ports/struct.DevicePuf.html\" title=\"struct pufatt::ports::DevicePuf\">DevicePuf</a>",0],["impl PufPort for <a class=\"struct\" href=\"pufatt/ports/struct.SharedDevicePuf.html\" title=\"struct pufatt::ports::SharedDevicePuf\">SharedDevicePuf</a>",0]]],["pufatt_pe32",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[554,317,19]}