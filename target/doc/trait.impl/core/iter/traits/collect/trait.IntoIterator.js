(function() {
    const implementors = Object.fromEntries([["pufatt",[["impl&lt;'a, T&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.IntoIterator.html\" title=\"trait core::iter::traits::collect::IntoIterator\">IntoIterator</a> for &amp;'a <a class=\"struct\" href=\"pufatt/ring/struct.RingBuffer.html\" title=\"struct pufatt::ring::RingBuffer\">RingBuffer</a>&lt;T&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[363]}