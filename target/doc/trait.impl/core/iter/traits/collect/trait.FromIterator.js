(function() {
    const implementors = Object.fromEntries([["pufatt_ecc",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.bool.html\">bool</a>&gt; for <a class=\"struct\" href=\"pufatt_ecc/gf2/struct.BitVec.html\" title=\"struct pufatt_ecc::gf2::BitVec\">BitVec</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[436]}