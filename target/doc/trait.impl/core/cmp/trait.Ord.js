(function() {
    const implementors = Object.fromEntries([["pufatt_pe32",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"enum\" href=\"pufatt_pe32/trace/enum.InstClass.html\" title=\"enum pufatt_pe32::trace::InstClass\">InstClass</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"pufatt_pe32/isa/struct.Reg.html\" title=\"struct pufatt_pe32::isa::Reg\">Reg</a>",0]]],["pufatt_silicon",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"pufatt_silicon/netlist/struct.GateId.html\" title=\"struct pufatt_silicon::netlist::GateId\">GateId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"pufatt_silicon/netlist/struct.NetId.html\" title=\"struct pufatt_silicon::netlist::NetId\">NetId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[527,558]}