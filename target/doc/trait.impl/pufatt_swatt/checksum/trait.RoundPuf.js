(function() {
    const implementors = Object.fromEntries([["pufatt",[["impl <a class=\"trait\" href=\"pufatt_swatt/checksum/trait.RoundPuf.html\" title=\"trait pufatt_swatt::checksum::RoundPuf\">RoundPuf</a> for <a class=\"struct\" href=\"pufatt/ports/struct.DevicePuf.html\" title=\"struct pufatt::ports::DevicePuf\">DevicePuf</a>",0],["impl <a class=\"trait\" href=\"pufatt_swatt/checksum/trait.RoundPuf.html\" title=\"trait pufatt_swatt::checksum::RoundPuf\">RoundPuf</a> for <a class=\"struct\" href=\"pufatt/ports/struct.VerifierRoundPuf.html\" title=\"struct pufatt::ports::VerifierRoundPuf\">VerifierRoundPuf</a>&lt;'_&gt;",0]]],["pufatt",[["impl RoundPuf for <a class=\"struct\" href=\"pufatt/ports/struct.DevicePuf.html\" title=\"struct pufatt::ports::DevicePuf\">DevicePuf</a>",0],["impl RoundPuf for <a class=\"struct\" href=\"pufatt/ports/struct.VerifierRoundPuf.html\" title=\"struct pufatt::ports::VerifierRoundPuf\">VerifierRoundPuf</a>&lt;'_&gt;",0]]],["pufatt_swatt",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[577,332,20]}