(function() {
    const implementors = Object.fromEntries([["rand",[]],["rand_chacha",[["impl RngCore for <a class=\"struct\" href=\"rand_chacha/struct.ChaCha8Rng.html\" title=\"struct rand_chacha::ChaCha8Rng\">ChaCha8Rng</a>",0],["impl RngCore for <a class=\"struct\" href=\"rand_chacha/struct.ChaCha12Rng.html\" title=\"struct rand_chacha::ChaCha12Rng\">ChaCha12Rng</a>",0],["impl RngCore for <a class=\"struct\" href=\"rand_chacha/struct.ChaCha20Rng.html\" title=\"struct rand_chacha::ChaCha20Rng\">ChaCha20Rng</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[11,453]}