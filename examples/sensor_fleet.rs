//! Fleet management: enrolling and authenticating a batch of sensor nodes.
//!
//! Run with `cargo run --release --example sensor_fleet`.
//!
//! A product line manufactures many chips of the *same* ALU PUF design;
//! each die's process variation makes it individually identifiable. This
//! example contrasts the paper's two verification approaches (§2):
//!
//! * the **CRP database** — finite, replay-sensitive, no secrets to
//!   protect beyond the recorded pairs; and
//! * **emulation** from the enrolled delay table — unlimited challenges,
//!   required by PUFatt because the attestation derives challenges from
//!   its own running state.

use pufatt::enroll::enroll_fleet;
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const FLEET: usize = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 1000, FLEET)?;
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    // Factory: record a small CRP database per device and build emulators.
    let mut databases: Vec<_> = fleet.iter().map(|d| d.record_crp_database(40, &mut rng)).collect();
    let verifier_pufs: Vec<_> = fleet.iter().map(|d| d.verifier_puf()).collect::<Result<_, _>>()?;
    println!("enrolled {FLEET} devices; {} CRPs recorded per device\n", databases[0].len());

    // Field: each node authenticates against its own records.
    println!("CRP-database authentication (consume-once):");
    for (i, dev) in fleet.iter().enumerate() {
        let instance = PufInstance::new(dev.design(), dev.chip(), dev.env());
        let ch = databases[i].challenges().next().expect("database not exhausted");
        let reference = databases[i].consume(ch).expect("first use");
        let live = instance.evaluate_voted(ch, 5, &mut rng);
        let hd = live.hamming_distance(reference);
        println!("    node {i}: HD to enrolled response = {hd}/32 -> {}", if hd <= 7 { "ACCEPT" } else { "reject" });
        assert!(hd <= 7, "own records must match");
        assert!(
            matches!(databases[i].consume(ch), Err(pufatt::PufattError::ChallengeReused { .. })),
            "replay must be impossible"
        );
    }

    // Cross-check: node 0's silicon against every database (uniqueness).
    println!("\ncross-device check (node 0's responses vs every device's emulator):");
    let instance0 = PufInstance::new(fleet[0].design(), fleet[0].chip(), fleet[0].env());
    for (i, vpuf) in verifier_pufs.iter().enumerate() {
        let mut agreement = 0u32;
        let mut total = 0u32;
        for k in 0..30u64 {
            let ch = Challenge::new(k.wrapping_mul(0x9E37_79B9), k.wrapping_mul(0x85EB_CA6B) ^ i as u64, 32);
            let live = instance0.evaluate_voted(ch, 5, &mut rng);
            let emulated = vpuf.emulate(ch);
            agreement += 32 - live.hamming_distance(emulated);
            total += 32;
        }
        let pct = 100.0 * agreement as f64 / total as f64;
        let verdict = if pct > 85.0 { "same device" } else { "different device" };
        println!("    vs device {i}: {pct:.1}% bit agreement -> {verdict}");
        if i == 0 {
            assert!(pct > 85.0, "node 0 must match its own emulator");
        } else {
            assert!(pct < 85.0, "node 0 must not match device {i}'s emulator");
        }
    }
    Ok(())
}
