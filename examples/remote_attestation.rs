//! Deep-dive walkthrough of the PUFatt protocol internals.
//!
//! Run with `cargo run --release --example remote_attestation`.
//!
//! Where the quickstart treats the protocol as a black box, this example
//! opens it up: it shows the generated PE32 attestation program, the raw
//! PUF responses and their helper data for one PUF query, the verifier's
//! reconstruction, and the paper's attack matrix with the reason each
//! attack fails.

use pufatt::adversary::{memory_copy_attack, overclock_evasion_attack, proxy_attack};
use pufatt::enroll::enroll;
use pufatt::obfuscate::RESPONSES_PER_OUTPUT;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::AluPufConfig;
use pufatt_swatt::checksum::SwattParams;
use pufatt_swatt::codegen::{generate, CodegenOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 };

    // --- The attestation program ---------------------------------------
    let generated = generate(&params, &CodegenOptions::default());
    let total_lines = generated.source.lines().count();
    println!("generated attestation program ({total_lines} assembly lines); first 18:");
    for line in generated.source.lines().take(18) {
        println!("    {line}");
    }
    println!("    ...");
    println!(
        "memory layout: region ends at {}, r0 at {}, x0 at {}, results at {}, helpers from {}\n",
        generated.layout.region_end,
        generated.layout.seed_cell,
        generated.layout.x0_cell,
        generated.layout.result_base,
        generated.layout.helper_base
    );

    // --- One PUF query, opened up ---------------------------------------
    let enrolled = enroll(AluPufConfig::paper_32bit(), 1, 0)?;
    let mut device = enrolled.device_puf(5);
    let verifier_puf = enrolled.verifier_puf()?;
    let challenges: [Challenge; RESPONSES_PER_OUTPUT] =
        std::array::from_fn(|j| Challenge::new(0x1234_5678 + j as u64, 0x9ABC_DEF0 - j as u64, 32));
    let out = device.respond(&challenges);
    println!("one PUF() query (8 raw evaluations -> 1 obfuscated output):");
    println!("    helper words (26-bit syndromes): {:08x?}", out.helpers);
    println!("    obfuscated z = {:#010x}", out.z);
    let z_verifier = verifier_puf.conclude(&challenges, &out.helpers)?;
    println!("    verifier reconstructs z = {z_verifier:#010x} (match: {})\n", z_verifier == out.z);
    assert_eq!(z_verifier, out.z);

    // --- Full sessions and the attack matrix ----------------------------
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 11);
    let channel = Channel::sensor_link();
    let (mut prover, verifier, _) = provision(&enrolled, params, clock, channel, 21, 1.10)?;
    let request = AttestationRequest { x0: 0xAA55, r0: 0x1EE7 };

    // One PUF query in ~10⁴ fails reconstruction (the FNR experiment
    // quantifies this); verifiers simply re-challenge, so run a couple of
    // sessions and report the accepted one.
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xE2E);
    let (verdict, attempts) = pufatt::protocol::run_session_with_retry(&mut prover, &verifier, &mut rng, 3)?;
    println!("honest session: {verdict} (attempt {attempts})");
    let (_, report) = run_session(&mut prover, &verifier, request)?;
    println!("    response lanes: {:08x?}", report.response);

    let region = prover.expected_region();
    let mc = memory_copy_attack(enrolled.device_handle(31), &verifier, &region, request)?;
    println!("attack: {mc}");
    let oc = overclock_evasion_attack(enrolled.device_handle(32), &verifier, &region, request, 4.0)?;
    println!("attack: {oc}");
    let px = proxy_attack(&verifier, &report, channel);
    println!("attack: {px}");

    assert!(verdict.accepted && !mc.verdict.accepted && !oc.verdict.accepted && !px.verdict.accepted);
    Ok(())
}
