//! Attack lab: every adversary from the paper's analysis (and the
//! extensions), against one enrolled device.
//!
//! Run with `cargo run --release --example attack_lab`.
//!
//! Covers, in order: modeling attacks on raw vs. obfuscated responses,
//! power side-channel leakage of the obfuscation network, hardware
//! tampering, and the three protocol-level attacks (memory copy,
//! overclock evasion, proxy). One device, one enrollment — the way an
//! evaluation lab would poke at a sample.

use pufatt::adversary::{memory_copy_attack, overclock_evasion_attack, proxy_attack};
use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt::sidechannel::{leakage_correlation, PowerModel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use pufatt_alupuf::tamper::Tamper;
use pufatt_modeling::attack::{attack_raw, FeatureMap};
use pufatt_modeling::lr::TrainConfig;
use pufatt_silicon::env::Environment;
use pufatt_swatt::checksum::SwattParams;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x1AB, 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(0x1AC);
    println!("target: one enrolled 32-bit ALU PUF device\n");

    // 1. Modeling attack on raw CRPs (what an attacker with raw access gets).
    let instance = PufInstance::new(enrolled.design(), enrolled.chip(), Environment::nominal());
    let report = attack_raw(&instance, FeatureMap::CarryAware, 300, 150, &TrainConfig::default(), &mut rng);
    println!(
        "1. modeling attack on RAW responses: mean accuracy {:.1}%, best bit {:.1}%",
        100.0 * report.mean_accuracy(),
        100.0 * report.best_accuracy()
    );
    assert!(report.mean_accuracy() > 0.6, "raw CRPs must be learnable");
    println!("   -> this is why the architecture never exposes raw responses\n");

    // 2. Power side channel on the obfuscation network.
    let raw: Vec<u64> = (0..600)
        .map(|_| instance.evaluate(Challenge::random(&mut rng, 32), &mut rng).bits())
        .collect();
    let hw: Vec<f64> = raw.iter().map(|y| y.count_ones() as f64).collect();
    let unprotected = PowerModel::HammingWeight { noise_sigma: 1.0 };
    let hardened = PowerModel::DualRail { noise_sigma: 1.0 };
    let t1: Vec<f64> = raw.iter().map(|&y| unprotected.sample(y, 32, &mut rng)).collect();
    let t2: Vec<f64> = raw.iter().map(|&y| hardened.sample(y, 32, &mut rng)).collect();
    println!(
        "2. CPA on the obfuscation network: unprotected rho = {:.2}, dual-rail rho = {:.2}\n",
        leakage_correlation(&hw, &t1),
        leakage_correlation(&hw, &t2)
    );

    // 3. Hardware tampering: a probe and a voltage island.
    let probe = Tamper::ProbeLoad { stride: 3, extra_fraction: 0.05 }.apply(enrolled.design(), enrolled.chip());
    let island = Tamper::VoltageIsland {
        from: 0,
        to: enrolled.design().netlist().gate_count() / 2,
        delta_vth_v: -0.02,
    }
    .apply(enrolled.design(), enrolled.chip());
    let emulator = enrolled.verifier_puf()?;
    let mut divergence = |chip: &pufatt_alupuf::device::PufChip| {
        let inst = PufInstance::new(enrolled.design(), chip, Environment::nominal());
        let mut hd = 0u32;
        for _ in 0..40 {
            let ch = Challenge::random(&mut rng, 32);
            hd += inst.evaluate_voted(ch, 5, &mut rng).hamming_distance(emulator.emulate(ch));
        }
        hd as f64 / (40.0 * 32.0)
    };
    println!(
        "3. hardware tamper divergence: probe {:.1}%, voltage island {:.1}%\n",
        100.0 * divergence(&probe),
        100.0 * divergence(&island)
    );

    // 4. Protocol-level attacks.
    let params = SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 };
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 0x1AD);
    let (mut prover, verifier, _) = provision(&enrolled, params, clock, Channel::sensor_link(), 0x1AE, 1.10)?;
    let request = AttestationRequest { x0: rng.gen(), r0: rng.gen() };
    let (honest, report) = run_session(&mut prover, &verifier, request)?;
    println!("4. protocol attacks (honest baseline: {honest})");
    let region = prover.expected_region();
    for outcome in [
        memory_copy_attack(enrolled.device_handle(0x1AF), &verifier, &region, request)?,
        overclock_evasion_attack(enrolled.device_handle(0x1B0), &verifier, &region, request, 4.0)?,
        proxy_attack(&verifier, &report, Channel::sensor_link()),
    ] {
        println!("   {outcome}");
        assert!(!outcome.verdict.accepted, "every protocol attack must fail");
    }
    Ok(())
}
