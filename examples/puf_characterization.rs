//! PUF characterisation: the standard quality metrics for a chip batch.
//!
//! Run with `cargo run --release --example puf_characterization [threads]`.
//!
//! Computes the metrics a PUF datasheet would quote — uniqueness
//! (inter-chip HD), reliability (worst-corner intra-chip HD), uniformity
//! (response bias) and steadiness — for a small batch of simulated 32-bit
//! ALU PUF chips, before and after the XOR obfuscation network. All
//! responses are collected through the parallel batch API; the printed
//! numbers are identical for any thread count.

use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_alupuf::device::{challenge_stream_seed, AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::stats::{BiasCounter, HdHistogram};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHIPS: usize = 5;
const CHALLENGE_GROUPS: usize = 120; // x8 raw challenges each
const SEED: u64 = 0xCAFE;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("threads must be a positive integer"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    assert!(threads > 0, "threads must be positive");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let chips = design.fabricate_many(&ChipSampler::new(), CHIPS, &mut rng);

    // One flat challenge list; groups of RESPONSES_PER_OUTPUT consecutive
    // challenges feed the obfuscation network.
    let n = CHALLENGE_GROUPS * RESPONSES_PER_OUTPUT;
    let challenges: Vec<Challenge> = (0..n).map(|_| Challenge::random(&mut rng, 32)).collect();

    // Batched collection: per-chip nominal responses, a second nominal pass
    // on chip 0 (steadiness) and a hot-corner pass on chip 0 (reliability).
    // Each pass gets its own noise-stream family.
    let nominal: Vec<Vec<RawResponse>> = chips
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let inst = PufInstance::new(&design, c, Environment::nominal());
            inst.evaluate_batch(&challenges, challenge_stream_seed(SEED, 1 + i as u64), threads)
        })
        .collect();
    let repeat = PufInstance::new(&design, &chips[0], Environment::nominal()).evaluate_batch(
        &challenges,
        challenge_stream_seed(SEED, 0x4000_0000),
        threads,
    );
    let hot = PufInstance::new(&design, &chips[0], Environment::with_temp(120.0)).evaluate_batch(
        &challenges,
        challenge_stream_seed(SEED, 0x8000_0000),
        threads,
    );

    let mut inter_raw = HdHistogram::new(32);
    let mut inter_obf = HdHistogram::new(32);
    let mut reliability = HdHistogram::new(32);
    let mut steadiness = HdHistogram::new(32);
    let mut bias = BiasCounter::new(32);

    for g in 0..CHALLENGE_GROUPS {
        let base = g * RESPONSES_PER_OUTPUT;
        let group_bits =
            |chip: usize| -> [u64; RESPONSES_PER_OUTPUT] { std::array::from_fn(|j| nominal[chip][base + j].bits()) };
        for a in 0..CHIPS {
            let ra = group_bits(a);
            for rb in (a + 1..CHIPS).map(group_bits) {
                for j in 0..RESPONSES_PER_OUTPUT {
                    inter_raw.record((ra[j] ^ rb[j]).count_ones() as usize);
                }
                inter_obf.record((obfuscate(&ra, 32) ^ obfuscate(&rb, 32)).count_ones() as usize);
            }
        }
        // Reliability: chip 0, worst temperature corner vs nominal.
        for j in 0..RESPONSES_PER_OUTPUT {
            let nominal_resp = nominal[0][base + j];
            bias.record(nominal_resp);
            reliability.record_pair(nominal_resp, hot[base + j]);
            steadiness.record_pair(nominal_resp, repeat[base + j]);
        }
    }

    println!("32-bit ALU PUF characterisation ({CHIPS} chips, {n} raw challenges, {threads} threads)");
    println!("---------------------------------------------------------------");
    let pct = |h: &HdHistogram| 100.0 * h.mean_fraction();
    println!("uniqueness  (inter-chip HD, raw)        : {:.1}%  (ideal 50, paper 35.9)", pct(&inter_raw));
    println!("uniqueness  (inter-chip HD, obfuscated) : {:.1}%  (ideal 50, paper 44.6)", pct(&inter_obf));
    println!("reliability (intra-chip HD @ 120 degC)  : {:.1}%  (ideal  0, paper ~11.3)", pct(&reliability));
    println!("steadiness  (intra-chip HD @ nominal)   : {:.1}%  (ideal  0)", pct(&steadiness));
    println!("uniformity  (mean |P(1) - 0.5|)         : {:.3} (ideal 0)", bias.mean_abs_bias());

    assert!(pct(&inter_raw) > 20.0 && pct(&inter_raw) < 50.0);
    assert!(pct(&inter_obf) > pct(&inter_raw));
    assert!(pct(&reliability) < 25.0);
}
