//! PUF characterisation: the standard quality metrics for a chip batch.
//!
//! Run with `cargo run --release --example puf_characterization`.
//!
//! Computes the metrics a PUF datasheet would quote — uniqueness
//! (inter-chip HD), reliability (worst-corner intra-chip HD), uniformity
//! (response bias) and steadiness — for a small batch of simulated 32-bit
//! ALU PUF chips, before and after the XOR obfuscation network.

use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::stats::{BiasCounter, HdHistogram};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHIPS: usize = 5;
const CHALLENGE_GROUPS: usize = 120; // x8 raw challenges each

fn main() {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
    let chips = design.fabricate_many(&ChipSampler::new(), CHIPS, &mut rng);
    let nominal: Vec<PufInstance<'_>> = chips
        .iter()
        .map(|c| PufInstance::new(&design, c, Environment::nominal()))
        .collect();
    let hot: Vec<PufInstance<'_>> = chips
        .iter()
        .map(|c| PufInstance::new(&design, c, Environment::with_temp(120.0)))
        .collect();

    let mut inter_raw = HdHistogram::new(32);
    let mut inter_obf = HdHistogram::new(32);
    let mut reliability = HdHistogram::new(32);
    let mut steadiness = HdHistogram::new(32);
    let mut bias = BiasCounter::new(32);

    for _ in 0..CHALLENGE_GROUPS {
        let group: [Challenge; RESPONSES_PER_OUTPUT] = std::array::from_fn(|_| Challenge::random(&mut rng, 32));
        let responses: Vec<[u64; RESPONSES_PER_OUTPUT]> = nominal
            .iter()
            .map(|inst| std::array::from_fn(|j| inst.evaluate(group[j], &mut rng).bits()))
            .collect();
        for (a, ra) in responses.iter().enumerate() {
            for rb in &responses[a + 1..] {
                for j in 0..RESPONSES_PER_OUTPUT {
                    inter_raw.record((ra[j] ^ rb[j]).count_ones() as usize);
                }
                inter_obf.record((obfuscate(ra, 32) ^ obfuscate(rb, 32)).count_ones() as usize);
            }
        }
        // Reliability: chip 0, worst temperature corner vs nominal.
        for (j, &ch) in group.iter().enumerate() {
            let nominal_resp = pufatt_alupuf::challenge::RawResponse::new(responses[0][j], 32);
            bias.record(nominal_resp);
            reliability.record_pair(nominal_resp, hot[0].evaluate(ch, &mut rng));
            steadiness.record_pair(nominal_resp, nominal[0].evaluate(ch, &mut rng));
        }
    }

    println!("32-bit ALU PUF characterisation ({CHIPS} chips, {} raw challenges)", CHALLENGE_GROUPS * 8);
    println!("---------------------------------------------------------------");
    let pct = |h: &HdHistogram| 100.0 * h.mean_fraction();
    println!("uniqueness  (inter-chip HD, raw)        : {:.1}%  (ideal 50, paper 35.9)", pct(&inter_raw));
    println!("uniqueness  (inter-chip HD, obfuscated) : {:.1}%  (ideal 50, paper 44.6)", pct(&inter_obf));
    println!("reliability (intra-chip HD @ 120 degC)  : {:.1}%  (ideal  0, paper ~11.3)", pct(&reliability));
    println!("steadiness  (intra-chip HD @ nominal)   : {:.1}%  (ideal  0)", pct(&steadiness));
    println!("uniformity  (mean |P(1) - 0.5|)         : {:.3} (ideal 0)", bias.mean_abs_bias());

    assert!(pct(&inter_raw) > 20.0 && pct(&inter_raw) < 50.0);
    assert!(pct(&inter_obf) > pct(&inter_raw));
    assert!(pct(&reliability) < 25.0);
}
