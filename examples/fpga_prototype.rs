//! The FPGA prototype workflow (paper §4.1, "Implementation").
//!
//! Run with `cargo run --release --example fpga_prototype`.
//!
//! Walks the full Virtex-5-style flow the paper describes: place the
//! 16-bit ALU PUF on two boards, tune the 64-stage programmable delay
//! lines until "the occurrence of 0 and 1 at each arbiter is about the
//! same", measure inter/intra-chip statistics, and print the Table-1
//! resource budget the deployment pays for.

use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign};
use pufatt_alupuf::fpga::FpgaBoard;
use pufatt_alupuf::resources::ResourceEstimator;
use pufatt_alupuf::stats::HdHistogram;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let design = AluPufDesign::new(AluPufConfig::fpga_16bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF06A);
    let sampler = ChipSampler::new();
    let chip_a = design.fabricate(&sampler, &mut rng);
    let chip_b = design.fabricate(&sampler, &mut rng);
    let mut board_a = FpgaBoard::new(&design, &chip_a, Environment::nominal(), 2.0);
    let mut board_b = FpgaBoard::new(&design, &chip_b, Environment::nominal(), 2.0);
    println!("two 16-bit ALU PUF boards ({} gates each)\n", design.netlist().gate_count());

    // PDL calibration (Majzoobi et al.), as the paper performs per board.
    for (name, board) in [("A", &mut board_a), ("B", &mut board_b)] {
        let report = board.tune(400, 16, 0.06, &mut rng);
        println!(
            "board {name}: PDL tuning bias {:.3} -> {:.3} in {} rounds; settings (first 8): {:?}",
            report.bias_before,
            report.bias_after,
            report.rounds,
            &board.pdl().settings()[..8]
        );
    }

    // Measurements.
    let mut inter_raw = HdHistogram::new(16);
    let mut inter_obf = HdHistogram::new(16);
    let mut intra = HdHistogram::new(16);
    for _ in 0..300 {
        let group: [Challenge; RESPONSES_PER_OUTPUT] = std::array::from_fn(|_| Challenge::random(&mut rng, 16));
        let ra: [u64; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| board_a.evaluate(group[j], &mut rng).bits());
        let rb: [u64; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| board_b.evaluate(group[j], &mut rng).bits());
        for j in 0..RESPONSES_PER_OUTPUT {
            inter_raw.record((ra[j] ^ rb[j]).count_ones() as usize);
            intra.record((ra[j] ^ board_a.evaluate(group[j], &mut rng).bits()).count_ones() as usize);
        }
        inter_obf.record((obfuscate(&ra, 16) ^ obfuscate(&rb, 16)).count_ones() as usize);
    }
    println!("\nmeasurements (paper's two-board results in parentheses):");
    println!("  inter-chip HD raw:        {:.1}%  (18.8%)", 100.0 * inter_raw.mean_fraction());
    println!("  inter-chip HD obfuscated: {:.1}%  (41.3%)", 100.0 * inter_obf.mean_fraction());
    println!("  intra-chip HD:            {:.1}%  (18.6%)", 100.0 * intra.mean_fraction());

    // The bill of materials (Table 1).
    println!("\nresource budget (Table 1 estimator):");
    for r in ResourceEstimator::paper_prototype().table1() {
        println!("  {:<24} {}", r.component, r.estimated);
    }

    assert!(inter_obf.mean_fraction() > inter_raw.mean_fraction());
}
