//! Chaos day at the fleet: a third of the sensors sit behind a badly lossy
//! link, an eighth are compromised, and the operator wants the lifecycle
//! machinery to sort one from the other without manual triage.
//!
//! Run with `cargo run --release --example chaos_campaign`.
//!
//! Flaky devices carry a `FaultPlan` (90 % message drops plus latency
//! jitter) and talk over the plan's lossy channel; the verifier retries
//! with exponential backoff under a hard session deadline, so their
//! sessions end as typed timeouts rather than hangs. Repeated losses walk
//! a device `Active → Quarantined` exactly like attestation failures do —
//! with hysteresis (`reactivate_after` consecutive successes to climb
//! back), so a marginal link settles in quarantine instead of flapping.
//! Everything is simulated time and per-device derived randomness: rerun
//! with any worker count and the verdict sequence is identical.

use pufatt_faults::FaultPlan;
use pufatt_fleet::{
    device_is_flaky, device_is_tampered, run_campaign, CampaignConfig, ChaosConfig, FleetStatus, LifecyclePolicy,
};

fn main() {
    let flaky_fraction = 1.0 / 3.0;
    let cfg = CampaignConfig {
        devices: 48,
        workers: 6,
        sessions_per_device: 4,
        tamper_fraction: 0.125,
        policy: LifecyclePolicy {
            max_attempts: 2,
            quarantine_after: 2,
            revoke_after: 6,
            reactivate_after: 2,
            ..LifecyclePolicy::default()
        },
        chaos: Some(ChaosConfig {
            plan: FaultPlan::clean(0).with_drops(0.9).with_jitter_ms(1.0),
            flaky_fraction,
        }),
        ..CampaignConfig::default()
    };
    let chaos = cfg.chaos.as_ref().expect("configured above");
    println!(
        "enrolling {} devices: ~{:.0}% compromised, ~{:.0}% on a lossy link (plan [{}])\n",
        cfg.devices,
        cfg.tamper_fraction * 100.0,
        chaos.flaky_fraction * 100.0,
        chaos.plan,
    );

    let report = run_campaign(&cfg).expect("campaign");
    print!("{}", report.snapshot);
    println!(
        "\nwall time {:.2} s  ({:.0} sessions/s across {} workers)",
        report.wall_time.as_secs_f64(),
        report.sessions_per_second(),
        cfg.workers
    );

    // Both afflicted sets are pure functions of the seed, so the operator
    // has reproducible ground truth to grade the campaign against.
    let flaky: Vec<u32> = (0..cfg.devices as u32)
        .filter(|&id| device_is_flaky(cfg.seed, id, flaky_fraction))
        .collect();
    let tampered: Vec<u32> = (0..cfg.devices as u32)
        .filter(|&id| device_is_tampered(cfg.seed, id, cfg.tamper_fraction))
        .collect();
    println!("\nground truth: {} flaky {:?}", flaky.len(), flaky);
    println!("ground truth: {} compromised {:?}", tampered.len(), tampered);

    let mut demoted_flaky = 0usize;
    for record in &report.device_records {
        if record.flaky {
            demoted_flaky += usize::from(record.status != FleetStatus::Active);
        } else if !record.tampered {
            assert_eq!(
                record.status,
                FleetStatus::Active,
                "device {} is neither flaky nor compromised and must stay active",
                record.id
            );
        }
    }
    println!(
        "\n{demoted_flaky}/{} flaky devices ended quarantined or revoked; every healthy device stayed active",
        flaky.len()
    );
    assert!(
        demoted_flaky * 2 >= flaky.len(),
        "at 90% drops with 2 attempts and quarantine_after = 2, most flaky devices must be demoted"
    );
    assert!(report.snapshot.sessions_lost > 0, "a 90%-drop link must lose whole sessions");
    println!("the lifecycle separated lossy links from healthy devices with no manual triage");
}
