//! Quickstart: one complete PUFatt attestation session.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The flow mirrors the paper's Figure 2:
//!
//! 1. **Factory**: manufacture a chip of the ALU PUF design and extract its
//!    gate-level delay table through the trusted enrollment interface.
//! 2. **Provisioning**: generate the attestation program (a SWATT-style
//!    checksum entangled with the PUF), load it on the PE32 prover, and
//!    calibrate the time bound δ from a golden run.
//! 3. **In the field**: the verifier sends `(x0, r0)`; the prover computes
//!    the response on its own CPU; the verifier recomputes it via
//!    `PUF.Emulate()` and enforces δ.

use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Factory.
    let enrolled = enroll(AluPufConfig::paper_32bit(), /* fab seed */ 42, 0)?;
    println!("enrolled a 32-bit ALU PUF device ({} gates)", enrolled.design().netlist().gate_count());

    // 2. Provisioning: the attestation clock is set just above the PUF's
    // empirical timing limit so overclocking corrupts responses.
    let params = SwattParams { region_bits: 10, rounds: 4096, puf_interval: 32 };
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 7);
    let channel = Channel::sensor_link();
    let (mut prover, verifier, golden_cycles) = provision(&enrolled, params, clock, channel, 99, 1.10)?;
    println!(
        "provisioned: F_base = {:.0} MHz, honest run = {} cycles, delta = {:.2} ms",
        clock.frequency_mhz,
        golden_cycles,
        verifier.delta_s * 1e3
    );

    // 3. Attestation sessions.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for i in 0..3 {
        let request = AttestationRequest::random(&mut rng);
        let (verdict, report) = run_session(&mut prover, &verifier, request)?;
        println!("session {i}: {verdict} ({} helper words, {} cycles)", report.helper_words.len(), report.cycles);
        assert!(verdict.accepted, "an honest device must pass");
    }

    // A compromised device does not.
    let tamper_at = (prover.layout().x0_cell - 8) as usize;
    prover.memory_mut()[tamper_at] = 0xEB1B_EB1B;
    let (verdict, _) = run_session(&mut prover, &verifier, AttestationRequest::random(&mut rng))?;
    println!("after malware injection: {verdict}");
    assert!(!verdict.accepted, "malware must be detected");
    Ok(())
}
