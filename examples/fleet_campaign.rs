//! A fleet operator's day: enroll a product line, attest the whole fleet
//! concurrently, watch the lifecycle machinery isolate the compromised
//! devices, and read the campaign metrics.
//!
//! Run with `cargo run --release --example fleet_campaign`.
//!
//! This drives the `pufatt-fleet` engine end to end: a sharded registry
//! tracks per-device state, a worker pool runs sessions concurrently, and
//! every verdict comes from the full PUFatt protocol (PE32 checksum, ALU
//! PUF, time bound δ). Compromised devices mount the memory-copy attack
//! and are caught by the time bound, retried per policy, quarantined, and
//! — if they keep failing — revoked. The campaign is deterministic in its
//! seed: rerunning with a different worker count changes only wall-clock
//! time, never the verdicts.

use pufatt_fleet::{device_is_tampered, run_campaign, CampaignConfig, FleetStatus, LifecyclePolicy, ShardedRegistry};

fn main() {
    // A mid-sized sensor fleet: 96 devices, 1 in 6 compromised, three
    // sessions each so the lifecycle has room to quarantine repeat
    // offenders.
    let cfg = CampaignConfig {
        devices: 96,
        workers: 6,
        sessions_per_device: 3,
        tamper_fraction: 1.0 / 6.0,
        policy: LifecyclePolicy {
            max_attempts: 2,
            quarantine_after: 1,
            revoke_after: 1,
            ..LifecyclePolicy::default()
        },
        ..CampaignConfig::default()
    };
    println!(
        "enrolling {} devices ({} workers, {} registry shards, ~{:.0}% compromised)\n",
        cfg.devices,
        cfg.workers,
        cfg.shards,
        cfg.tamper_fraction * 100.0
    );

    let report = run_campaign(&cfg).expect("campaign");
    print!("{}", report.snapshot);
    println!(
        "\nwall time {:.2} s  ({:.0} sessions/s across {} workers)",
        report.wall_time.as_secs_f64(),
        report.sessions_per_second(),
        cfg.workers
    );

    // The tamper set is a pure function of the seed, so the operator's
    // ground truth is reproducible: compare it against what the campaign
    // actually caught.
    let tampered: Vec<u32> = (0..cfg.devices as u32)
        .filter(|&id| device_is_tampered(cfg.seed, id, cfg.tamper_fraction))
        .collect();
    println!("\nground truth: {} compromised devices: {:?}", tampered.len(), tampered);
    assert_eq!(
        report.snapshot.devices.quarantined + report.snapshot.devices.revoked,
        tampered.len(),
        "every compromised device (and only those) should be quarantined or revoked"
    );
    println!("all of them ended the campaign quarantined or revoked; every honest device stayed active");

    // The registry is also usable standalone — e.g. an operator manually
    // re-trusting a repaired device.
    let registry = ShardedRegistry::new(4, 16);
    registry.enroll(7);
    registry.revoke(7);
    assert_eq!(registry.status(7), Some(FleetStatus::Revoked));
    registry.re_enroll(7);
    assert_eq!(registry.status(7), Some(FleetStatus::Active));
    println!("manual lifecycle check: revoke → re-enroll round-trips");
}
