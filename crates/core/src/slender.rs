//! Slender-PUF-style substring authentication (Majzoobi et al., SPW 2012 —
//! the paper's reference \[22\] for the emulation-based verification
//! model).
//!
//! An alternative lightweight authentication the same enrolled hardware
//! supports: the prover evaluates a long response stream to a seed
//! challenge, picks a *secret random offset*, and reveals only a circular
//! substring of length `L`. The verifier emulates the full stream and
//! slides the substring over it; a genuine substring aligns somewhere with
//! far fewer than `L/2` mismatches, while an impersonator's best alignment
//! stays near `L/2`. No helper data leaves the device, and raw responses
//! are only ever partially exposed (the partial reveal plus the secret
//! offset is what blunts modeling attacks in the Slender design).
//!
//! Included because it shares every ingredient with PUFatt — device,
//! emulator, challenge derivation — and shows the enrolled delay table
//! supports more protocols than timed attestation.
//!
//! **Finding:** substring matching over *raw* ALU PUF bits is insecure
//! twice over: the design-level skew makes any two chips agree on ~70 % of
//! bits (imposters align), and the chip-static and design-shared
//! challenge-dependent components make streams correlate across seeds
//! (eavesdropped substrings replay). Folding alone, and even XOR across
//! two challenges, still leaves the shared data-dependent component (its
//! correlation only squares). The stream must be built from the **full
//! two-phase obfuscation network** (8 challenges per output word), whose
//! fourth-power decorrelation is finally enough — i.e., Slender over the
//! ALU PUF needs exactly the `PUF()` post-processing the paper specifies,
//! plus heavier temporal voting (the 8-way XOR multiplies the residual
//! noise). Even then, residual shared structure keeps an attacker's best
//! alignment near 0.29 rather than the ideal 0.40, so margins are thinner
//! than on a classic arbiter PUF — quantified in the tests and a cousin
//! of the bias-leakage finding in DESIGN.md.

use crate::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use crate::ports::{DevicePuf, VerifierPuf};
use pufatt_alupuf::challenge::Challenge;
use rand::Rng;

/// Parameters of a substring-authentication session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlenderParams {
    /// Challenges contributing to the response stream (stream length =
    /// `stream_challenges × width` bits).
    pub stream_challenges: usize,
    /// Revealed substring length in bits.
    pub substring_len: usize,
    /// Accept when the best alignment's mismatch fraction is at most this
    /// (genuine ≈ intra-chip error rate; imposter ≈ 0.5).
    pub accept_threshold: f64,
}

impl Default for SlenderParams {
    fn default() -> Self {
        SlenderParams {
            stream_challenges: 96,
            substring_len: 256,
            accept_threshold: 0.24,
        }
    }
}

impl SlenderParams {
    /// Stream length in bits for a given response width (eight challenges
    /// produce one `width`-bit obfuscated word).
    pub fn stream_bits(&self, width: usize) -> usize {
        (self.stream_challenges / RESPONSES_PER_OUTPUT) * width
    }

    /// Validates the parameters for a response width.
    ///
    /// # Panics
    ///
    /// Panics if the substring would not fit the stream or the threshold is
    /// not a probability.
    pub fn validate(&self, width: usize) {
        assert!(self.substring_len >= 16, "substring too short to be meaningful");
        assert!(self.substring_len <= self.stream_bits(width), "substring longer than the stream");
        assert!((0.0..=0.5).contains(&self.accept_threshold), "threshold must be in [0, 0.5]");
    }
}

/// Deterministic challenge schedule shared by prover and verifier
/// (SplitMix64-style derivation from the public seed).
pub fn stream_challenges(seed: u64, count: usize, width: usize) -> Vec<Challenge> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count).map(|_| Challenge::new(next(), next(), width)).collect()
}

/// Prover side: evaluates the stream and reveals a circular substring at a
/// secret random offset.
pub fn prover_substring<R: Rng + ?Sized>(
    device: &mut DevicePuf,
    seed: u64,
    params: &SlenderParams,
    rng: &mut R,
) -> Vec<bool> {
    let width = device.width();
    params.validate(width);
    let challenges = stream_challenges(seed, params.stream_challenges, width);
    let mut stream = Vec::with_capacity(params.stream_bits(width));
    for group in challenges.chunks_exact(RESPONSES_PER_OUTPUT) {
        #[allow(clippy::expect_used)]
        // analyze: allow(panic: chunks_exact yields exactly RESPONSES_PER_OUTPUT items)
        let group: [Challenge; RESPONSES_PER_OUTPUT] = group.try_into().expect("chunked exactly");
        let z = device.respond(&group).z;
        for b in 0..width {
            stream.push((z >> b) & 1 == 1);
        }
    }
    let offset = rng.gen_range(0..stream.len());
    (0..params.substring_len).map(|i| stream[(offset + i) % stream.len()]).collect()
}

/// Outcome of verifier-side substring matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlenderOutcome {
    /// Best-matching circular offset into the emulated stream.
    pub best_offset: usize,
    /// Mismatch fraction at the best offset.
    pub mismatch_fraction: f64,
    /// Whether the session is accepted.
    pub accepted: bool,
}

/// Verifier side: emulates the stream and slides the substring (circular).
///
/// # Panics
///
/// Panics on inconsistent parameters (see [`SlenderParams::validate`]) or
/// a substring of the wrong length.
pub fn verify_substring(
    verifier: &VerifierPuf,
    seed: u64,
    substring: &[bool],
    params: &SlenderParams,
) -> SlenderOutcome {
    let width = verifier.width();
    params.validate(width);
    assert_eq!(substring.len(), params.substring_len, "substring length mismatch");
    let challenges = stream_challenges(seed, params.stream_challenges, width);
    let mut stream = Vec::with_capacity(params.stream_bits(width));
    for group in challenges.chunks_exact(RESPONSES_PER_OUTPUT) {
        let ys: [u64; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| verifier.emulate(group[j]).bits());
        let z = obfuscate(&ys, width);
        for b in 0..width {
            stream.push((z >> b) & 1 == 1);
        }
    }
    let n = stream.len();
    let mut best_offset = 0;
    let mut best_mismatch = usize::MAX;
    for offset in 0..n {
        let mismatch = substring
            .iter()
            .enumerate()
            .filter(|(i, &bit)| stream[(offset + i) % n] != bit)
            .count();
        if mismatch < best_mismatch {
            best_mismatch = mismatch;
            best_offset = offset;
        }
    }
    let mismatch_fraction = best_mismatch as f64 / params.substring_len as f64;
    SlenderOutcome {
        best_offset,
        mismatch_fraction,
        accepted: mismatch_fraction <= params.accept_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll::enroll;
    use pufatt_alupuf::device::AluPufConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn genuine_device_authenticates() {
        let enrolled = enroll(AluPufConfig::paper_32bit(), 0x51E, 0).unwrap();
        let mut device = enrolled.device_puf(4);
        device.set_votes(15);
        let verifier = enrolled.verifier_puf().unwrap();
        let params = SlenderParams::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for session in 0..3 {
            let seed = 100 + session;
            let sub = prover_substring(&mut device, seed, &params, &mut rng);
            let outcome = verify_substring(&verifier, seed, &sub, &params);
            assert!(outcome.accepted, "session {session}: {outcome:?}");
            assert!(outcome.mismatch_fraction < 0.24, "{outcome:?}");
        }
    }

    #[test]
    fn imposter_is_rejected() {
        let genuine = enroll(AluPufConfig::paper_32bit(), 0x51E, 0).unwrap();
        let imposter = enroll(AluPufConfig::paper_32bit(), 0x51F, 0).unwrap();
        let verifier = genuine.verifier_puf().unwrap();
        let mut device = imposter.device_puf(4);
        let params = SlenderParams::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut rejected = 0;
        for session in 0..3u64 {
            let sub = prover_substring(&mut device, 200 + session, &params, &mut rng);
            let outcome = verify_substring(&verifier, 200 + session, &sub, &params);
            rejected += (!outcome.accepted) as u32;
            assert!(outcome.mismatch_fraction > 0.24, "imposter alignment too good: {outcome:?}");
        }
        assert_eq!(rejected, 3);
    }

    #[test]
    fn replay_against_wrong_seed_fails() {
        // A recorded substring does not verify against a fresh seed: the
        // emulated stream is different.
        let enrolled = enroll(AluPufConfig::paper_32bit(), 0x520, 0).unwrap();
        let mut device = enrolled.device_puf(4);
        device.set_votes(15);
        let verifier = enrolled.verifier_puf().unwrap();
        let params = SlenderParams::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sub = prover_substring(&mut device, 7, &params, &mut rng);
        let outcome = verify_substring(&verifier, 8, &sub, &params);
        assert!(!outcome.accepted, "replayed substring must not match a fresh stream: {outcome:?}");
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = stream_challenges(1, 8, 32);
        let b = stream_challenges(1, 8, 32);
        let c = stream_challenges(2, 8, 32);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic(expected = "longer than the stream")]
    fn substring_must_fit() {
        SlenderParams {
            stream_challenges: 8,
            substring_len: 256,
            accept_threshold: 0.25,
        }
        .validate(32);
    }
}
