//! A bounded ring buffer with eviction accounting.
//!
//! Both retention problems in the verifier-side service layer are the same
//! shape: an append-mostly event stream (session records on the
//! [`crate::server::AttestationServer`], per-device attestation history in
//! the fleet registry) that must never grow without bound on a long-lived
//! process. [`RingBuffer`] keeps the newest `capacity` items and counts
//! what it evicted, so operators can tell "empty because quiet" from
//! "empty because rolled over".

use std::collections::VecDeque;

/// Fixed-capacity FIFO retention: pushing beyond capacity evicts the
/// oldest element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    evicted: u64,
}

impl<T> RingBuffer<T> {
    /// Creates an empty buffer retaining at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-retention log is a configuration
    /// error, not a degenerate mode.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Rebuilds a buffer from persisted state: `items` are the retained
    /// elements (oldest first, already within `capacity`) and
    /// `total_pushed` the lifetime push count — the eviction counter is
    /// recomputed as `total_pushed - items.len()`. This is the durable
    /// store's restore path; excess items beyond `capacity` are trimmed
    /// from the front (oldest) rather than refused.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, like [`RingBuffer::new`].
    pub fn rehydrate(capacity: usize, items: Vec<T>, total_pushed: u64) -> Self {
        let mut ring = RingBuffer::new(capacity);
        let skip = items.len().saturating_sub(capacity);
        ring.items = items.into_iter().skip(skip).collect();
        ring.evicted = total_pushed.saturating_sub(ring.items.len() as u64);
        ring
    }

    /// Appends an element, evicting (and returning) the oldest one if the
    /// buffer is full.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.items.len() == self.capacity {
            self.evicted += 1;
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Elements currently retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The retention cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many elements have been evicted over the buffer's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total elements ever pushed (retained + evicted).
    pub fn total_pushed(&self) -> u64 {
        self.evicted + self.items.len() as u64
    }

    /// Iterates oldest → newest over the retained elements.
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, T> {
        self.items.iter()
    }

    /// The newest retained element.
    pub fn last(&self) -> Option<&T> {
        self.items.back()
    }

    /// Drops all retained elements (eviction count unaffected).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a, T> IntoIterator for &'a RingBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_and_counts_evictions() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            let evicted = ring.push(i);
            assert_eq!(evicted, if i < 3 { None } else { Some(i - 3) });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.evicted(), 2);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.last(), Some(&4));
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let mut ring = RingBuffer::new(2);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_refused() {
        let _ = RingBuffer::<u8>::new(0);
    }

    #[test]
    fn rehydrate_restores_retention_and_eviction_state() {
        let rebuilt = RingBuffer::rehydrate(3, vec![7, 8, 9], 5);
        assert_eq!(rebuilt.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(rebuilt.evicted(), 2);
        assert_eq!(rebuilt.total_pushed(), 5);
        // Over-capacity input keeps the newest items.
        let trimmed = RingBuffer::rehydrate(2, vec![1, 2, 3], 3);
        assert_eq!(trimmed.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(trimmed.evicted(), 1);
    }
}
