//! The two-phase XOR obfuscation network (paper §2, "Response
//! Obfuscation").
//!
//! Modeling attacks (Rührmair et al.) learn delay PUFs from raw CRPs; the
//! paper blocks them by never exposing raw responses. Phase 1 folds each
//! 2n-bit response onto itself (`a[i] = y[i] ⊕ y[i+n]`) and concatenates
//! two folded responses into a 2n-bit word; phase 2 XORs four phase-1 words.
//! One obfuscated output `z` therefore consumes **eight** raw PUF
//! evaluations, and each output bit is an XOR of 8 raw response bits from
//! 8 different challenges — the structure that makes logistic-regression
//! modeling collapse (reproduced in the `pufatt-modeling` crate).
//!
//! The network's internal registers are architecturally invisible; in this
//! model that invariant holds by construction, because only [`obfuscate`]'s
//! result ever leaves the pipeline.

/// Raw responses consumed per obfuscated output.
pub const RESPONSES_PER_OUTPUT: usize = 8;

/// Phase-1 self-fold: `a[i] = y[i] ⊕ y[i+n]` for `i < n = width/2`,
/// producing an `n`-bit word.
///
/// # Panics
///
/// Panics if `width` is odd or not in `2..=64`.
pub fn fold_halves(y: u64, width: usize) -> u64 {
    assert!((2..=64).contains(&width) && width.is_multiple_of(2), "width {width} must be even and in 2..=64");
    let n = width / 2;
    let mask = (1u64 << n) - 1;
    (y ^ (y >> n)) & mask
}

/// Phase-1 pair combination: folds two responses and concatenates them into
/// a `width`-bit word (`b = a0 ∥ a1`, `a1` in the high half).
pub fn phase1_pair(y0: u64, y1: u64, width: usize) -> u64 {
    let n = width / 2;
    fold_halves(y0, width) | (fold_halves(y1, width) << n)
}

/// The full network: eight raw responses → one `width`-bit output
/// `z = b0 ⊕ b1 ⊕ b2 ⊕ b3`.
///
/// # Panics
///
/// Panics on invalid `width` (see [`fold_halves`]).
pub fn obfuscate(ys: &[u64; RESPONSES_PER_OUTPUT], width: usize) -> u64 {
    let mut z = 0;
    for pair in ys.chunks_exact(2) {
        z ^= phase1_pair(pair[0], pair[1], width);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_xor_of_halves() {
        // width 8, n = 4: y = hi:0b1100, lo:0b1010 → a = 0b0110.
        assert_eq!(fold_halves(0b1100_1010, 8), 0b0110);
    }

    #[test]
    fn fold_masks_to_half_width() {
        assert!(fold_halves(u64::MAX, 32) <= 0xFFFF);
        assert_eq!(fold_halves(u64::MAX, 32), 0, "all-ones folds to zero");
    }

    #[test]
    fn phase1_concatenates() {
        let b = phase1_pair(0b1100_1010, 0b1111_0000, 8);
        assert_eq!(b & 0xF, 0b0110);
        assert_eq!(b >> 4, 0b1111);
    }

    #[test]
    fn obfuscate_is_linear_in_each_input() {
        // XOR-linearity: z(ys with y0 ⊕= d) = z(ys) ⊕ phase1(d, 0).
        let ys = [
            0x1111_2222u64,
            0x3333_4444,
            0x5555_6666,
            0x7777_8888,
            0x9999_AAAA,
            0xBBBB_CCCC,
            0xDDDD_EEEE,
            0xF0F0_0F0F,
        ];
        let z = obfuscate(&ys, 32);
        let d = 0x0001_0001u64;
        let mut ys2 = ys;
        ys2[0] ^= d;
        assert_eq!(obfuscate(&ys2, 32), z ^ phase1_pair(d, 0, 32));
    }

    #[test]
    fn single_input_bit_affects_exactly_one_output_bit() {
        for bit in 0..32 {
            let mut ys = [0u64; 8];
            ys[2] = 1 << bit;
            let z = obfuscate(&ys, 32);
            assert_eq!(z.count_ones(), 1, "bit {bit}");
        }
    }

    #[test]
    fn obfuscation_debiases() {
        // Feed strongly biased "responses" (bit i always 1 for low bits):
        // XOR folding across challenges removes challenge-independent bias.
        // With constant inputs the fold of y ⊕ y cancels pairwise.
        let ys = [0xFFFF_0000u64; 8];
        let z = obfuscate(&ys, 32);
        assert_eq!(z, 0, "constant bias cancels entirely");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_width() {
        fold_halves(0, 7);
    }
}
