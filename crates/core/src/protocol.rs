//! The PUFatt remote attestation protocol (paper Fig. 2).
//!
//! ```text
//! Verifier V                                   Prover P
//!   x0 ←R, r0 ←R      ── (x0, r0) ──▶     r ← SWAT(S, r0) ⊗ PUF(x·)
//!   start timer                            (PE32 program, real cycles)
//!   r' ← recompute    ◀── (r, helpers) ──
//!   accept iff r = r' and elapsed ≤ δ
//! ```
//!
//! The prover runs the generated PE32 checksum program on its own CPU; its
//! wall time is `cycles / F_base` plus channel transfer both ways. The
//! verifier recomputes `r` natively via the checksum reference and
//! `PUF.Emulate()` driven by the prover's helper-data stream.

use crate::error::PufattError;
use crate::obfuscate::RESPONSES_PER_OUTPUT;
use crate::ports::{SharedDevicePuf, VerifierPuf, VerifierRoundPuf};
use pufatt_pe32::asm::assemble;
use pufatt_pe32::cpu::{Clock, Cpu, Trap};
use pufatt_swatt::checksum::{self, SwattParams, STATE_WORDS};
use pufatt_swatt::codegen::{generate, CodegenOptions, SwattLayout};
use rand::Rng;
use std::fmt;

/// The network between prover and verifier. The paper's oracle-attack
/// argument rests on this channel being far slower than the on-chip
/// CPU↔PUF path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl Channel {
    /// A 250 kbit/s, 2 ms sensor-network link (802.15.4-class).
    pub fn sensor_link() -> Self {
        Channel { bandwidth_bps: 250_000.0, latency_s: 0.002 }
    }

    /// One-way transfer time for a message of `bits`.
    pub fn transfer_s(&self, bits: u64) -> f64 {
        self.latency_s + bits as f64 / self.bandwidth_bps
    }
}

/// The verifier's challenge message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestationRequest {
    /// PUF challenge seed x₀.
    pub x0: u32,
    /// Attestation (checksum) challenge r₀.
    pub r0: u32,
}

impl AttestationRequest {
    /// Draws a fresh random request.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        AttestationRequest { x0: rng.gen(), r0: rng.gen() }
    }

    /// Size of the request on the wire, in bits.
    pub fn wire_bits(&self) -> u64 {
        64
    }

    /// Serialises the request (8 bytes, little-endian x₀ then r₀).
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.x0.to_le_bytes());
        out[4..].copy_from_slice(&self.r0.to_le_bytes());
        out
    }

    /// Parses a request written by [`AttestationRequest::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`PufattError::Malformed`] for a wrong-size buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PufattError> {
        if bytes.len() != 8 {
            return Err(PufattError::Malformed(format!("attestation request must be 8 bytes, got {}", bytes.len())));
        }
        Ok(AttestationRequest {
            x0: le32(bytes, 0).unwrap_or(0),
            r0: le32(bytes, 4).unwrap_or(0),
        })
    }
}

/// Little-endian u32 at byte offset `at`, `None` past the end.
fn le32(bytes: &[u8], at: usize) -> Option<u32> {
    let b = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Little-endian u64 at byte offset `at`, `None` past the end.
fn le64(bytes: &[u8], at: usize) -> Option<u64> {
    let lo = le32(bytes, at)?;
    let hi = le32(bytes, at + 4)?;
    Some(lo as u64 | (hi as u64) << 32)
}

/// The prover's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attestation response `r` (the checksum's final lanes).
    pub response: [u32; STATE_WORDS],
    /// Helper-data words, 8 per PUF query, in query order.
    pub helper_words: Vec<u32>,
    /// CPU cycles the computation took (converted to time via the clock).
    pub cycles: u64,
}

impl AttestationReport {
    /// Size of the report on the wire, in bits.
    pub fn wire_bits(&self) -> u64 {
        (STATE_WORDS as u64 + self.helper_words.len() as u64) * 32
    }

    /// Serialises the report: magic `PATR`, cycle count, helper count,
    /// response lanes, helper words (all little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + 4 * (STATE_WORDS + self.helper_words.len()));
        out.extend_from_slice(b"PATR");
        out.extend_from_slice(&self.cycles.to_le_bytes());
        out.extend_from_slice(&(self.helper_words.len() as u32).to_le_bytes());
        for w in self.response.iter().chain(&self.helper_words) {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parses a report written by [`AttestationReport::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`PufattError::Malformed`] describing the first structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PufattError> {
        if bytes.len() < 16 || &bytes[..4] != b"PATR" {
            return Err(PufattError::Malformed("not an attestation report".into()));
        }
        let cycles = le64(bytes, 4).unwrap_or(0);
        let helper_count = le32(bytes, 12).unwrap_or(0) as usize;
        let expected = 16 + 4 * (STATE_WORDS + helper_count);
        if bytes.len() != expected {
            return Err(PufattError::Malformed(format!(
                "attestation report should be {expected} bytes, got {}",
                bytes.len()
            )));
        }
        // The length check above guarantees every `word(i)` is in range.
        let word = |i: usize| le32(bytes, 16 + 4 * i).unwrap_or(0);
        let response: [u32; STATE_WORDS] = std::array::from_fn(word);
        let helper_words = (0..helper_count).map(|i| word(STATE_WORDS + i)).collect();
        Ok(AttestationReport { response, helper_words, cycles })
    }
}

/// Verdict of one attestation session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Overall outcome: both checks passed.
    pub accepted: bool,
    /// The recomputed response matched.
    pub response_ok: bool,
    /// The measured time met the bound δ.
    pub time_ok: bool,
    /// Measured end-to-end time in seconds.
    pub elapsed_s: f64,
    /// The enforced bound δ in seconds.
    pub delta_s: f64,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (response {}, time {:.3} ms vs delta {:.3} ms)",
            if self.accepted { "ACCEPT" } else { "REJECT" },
            if self.response_ok { "ok" } else { "MISMATCH" },
            self.elapsed_s * 1e3,
            self.delta_s * 1e3
        )
    }
}

/// A memory write that lands while the checksum traversal is running: after
/// `at_cycle` CPU cycles, the word at `addr` is XORed with `xor`.
///
/// This models both a fault-injection glitch and the race a real attacker
/// would attempt (modify memory after the checksum has passed over it). The
/// verifier's defence is probabilistic: the pseudo-random traversal visits
/// every cell O(n·log n) times, so a mid-traversal change is caught unless
/// it lands after the *last* visit to that cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MidTraversalTamper {
    /// Cycle count after which the write lands.
    pub at_cycle: u64,
    /// Word address to modify.
    pub addr: u32,
    /// XOR mask applied to the word.
    pub xor: u32,
}

/// The prover: a PE32 device with the attestation program in memory and the
/// ALU PUF on its port.
pub struct ProverDevice {
    cpu: Cpu,
    puf: SharedDevicePuf,
    layout: SwattLayout,
    params: SwattParams,
    image_words: usize,
}

impl fmt::Debug for ProverDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProverDevice")
            .field("params", &self.params)
            .field("image_words", &self.image_words)
            .field("clock_mhz", &self.cpu.clock().frequency_mhz)
            .finish()
    }
}

impl ProverDevice {
    /// Provisions a prover: generates the checksum program for `params` and
    /// `options`, assembles it, and wires up the PUF.
    ///
    /// # Errors
    ///
    /// [`PufattError::Codegen`] if the generated program fails to assemble
    /// or does not fit beneath the region's challenge cells.
    pub fn new(
        puf: SharedDevicePuf,
        params: SwattParams,
        options: &CodegenOptions,
        clock: Clock,
    ) -> Result<Self, PufattError> {
        let generated = generate(&params, options);
        let program = assemble(&generated.source).map_err(|e| PufattError::Codegen(e.to_string()))?;
        if program.image.len() as u32 > generated.layout.x0_cell {
            return Err(PufattError::Codegen(format!(
                "program ({} words) collides with challenge cells at {}",
                program.image.len(),
                generated.layout.x0_cell
            )));
        }
        let mut cpu = Cpu::new(generated.layout.memory_words.max(64) as usize);
        cpu.set_clock(clock);
        cpu.attach_puf(Box::new(puf.clone()));
        cpu.load_program(&program.image);
        Ok(ProverDevice {
            cpu,
            puf,
            layout: generated.layout,
            params,
            image_words: program.image.len(),
        })
    }

    /// The device's memory layout.
    pub fn layout(&self) -> SwattLayout {
        self.layout
    }

    /// The checksum parameters baked into the program.
    pub fn params(&self) -> SwattParams {
        self.params
    }

    /// The attested-region memory image (what an honest verifier expects).
    pub fn expected_region(&self) -> Vec<u32> {
        self.cpu.memory()[..self.layout.region_end as usize].to_vec()
    }

    /// Direct memory access — the adversary's lever.
    pub fn memory_mut(&mut self) -> &mut [u32] {
        self.cpu.memory_mut()
    }

    /// The shared PUF instance this device evaluates. Exposed so campaign
    /// checkpointing can capture and restore its noise-RNG position.
    pub fn puf(&self) -> &SharedDevicePuf {
        &self.puf
    }

    /// Re-clocks the CPU; when `couple_puf` is set the PUF races the new
    /// cycle time (the physically accurate behaviour — the ALU PUF shares
    /// the CPU clock network, §4.2).
    pub fn set_clock(&mut self, clock: Clock, couple_puf: bool) {
        self.cpu.set_clock(clock);
        if couple_puf {
            self.puf.with(|d| d.set_cycle_ps(Some(clock.cycle_ps())));
        }
    }

    /// The current clock.
    pub fn clock(&self) -> Clock {
        self.cpu.clock()
    }

    /// Injects (or clears, with `None`) a response fault on the device's
    /// PUF: every subsequent raw evaluation passes through the fault model
    /// before helper generation, which is what makes sub-`t` noise
    /// recoverable by the reverse fuzzy extractor and beyond-`t` bursts a
    /// guaranteed rejection.
    pub fn set_response_fault(&mut self, fault: Option<crate::ports::ResponseFault>) {
        self.puf.with(|d| d.set_response_fault(fault));
    }

    /// Runs one attestation: writes the challenges, executes the program,
    /// collects response, helper data and cycle count.
    ///
    /// # Errors
    ///
    /// [`PufattError::ProverTrap`] if the program traps (should not happen
    /// for generated programs).
    pub fn attest(&mut self, request: AttestationRequest) -> Result<AttestationReport, PufattError> {
        self.attest_with_tamper(request, None)
    }

    /// Runs one attestation with an optional memory write landing *during*
    /// the checksum traversal (the TOCTOU-style fault the robustness layer
    /// injects: the attacker or a glitch rewrites attested memory after the
    /// traversal has started, so only the not-yet-visited cells reflect the
    /// change).
    ///
    /// # Errors
    ///
    /// [`PufattError::ProverTrap`] if the program traps; the tamper itself
    /// traps (instead of panicking) if its address is outside memory.
    pub fn attest_with_tamper(
        &mut self,
        request: AttestationRequest,
        tamper: Option<MidTraversalTamper>,
    ) -> Result<AttestationReport, PufattError> {
        // Fresh run: reset architectural state, keep memory (program +
        // whatever the adversary planted), plant the challenges.
        let memory: Vec<u32> = self.cpu.memory().to_vec();
        self.cpu.reset();
        self.cpu.memory_mut().copy_from_slice(&memory);
        self.cpu.store_word(self.layout.seed_cell, request.r0)?;
        self.cpu.store_word(self.layout.x0_cell, request.x0)?;
        self.puf.with(|d| {
            d.take_helper_log();
        });
        let run = match tamper {
            None => self.cpu.run(u64::MAX)?,
            Some(t) => match self.cpu.run(t.at_cycle) {
                // The program finished before the tamper was due.
                Ok(done) => done,
                Err(Trap::CycleLimit) => {
                    let word = self.cpu.load_word(t.addr)?;
                    self.cpu.store_word(t.addr, word ^ t.xor)?;
                    self.cpu.run(u64::MAX)?
                }
                Err(trap) => return Err(trap.into()),
            },
        };
        let mut response = [0u32; STATE_WORDS];
        for (k, lane) in response.iter_mut().enumerate() {
            *lane = self.cpu.load_word(self.layout.result_base + k as u32)?;
        }
        let helper_words = self.puf.with(|d| d.take_helper_log());
        Ok(AttestationReport { response, helper_words, cycles: run.cycles })
    }
}

/// The verifier: expected memory, the enrolled PUF model, and the time
/// bound.
#[derive(Debug, Clone)]
pub struct Verifier {
    expected_region: Vec<u32>,
    puf: VerifierPuf,
    params: SwattParams,
    layout: SwattLayout,
    channel: Channel,
    /// The prover clock frequency the verifier expects (F_base).
    pub expected_clock: Clock,
    /// The enforced time bound δ in seconds.
    pub delta_s: f64,
}

impl Verifier {
    /// Builds a verifier for a provisioned prover.
    ///
    /// `expected_region` is the known-good memory image (taken from a
    /// golden device at provisioning time); `delta_s` comes from
    /// [`Verifier::calibrate_delta`].
    pub fn new(
        expected_region: Vec<u32>,
        puf: VerifierPuf,
        params: SwattParams,
        layout: SwattLayout,
        channel: Channel,
        expected_clock: Clock,
        delta_s: f64,
    ) -> Self {
        Verifier {
            expected_region,
            puf,
            params,
            layout,
            channel,
            expected_clock,
            delta_s,
        }
    }

    /// Derives δ from a measured honest run: honest time × `slack` plus
    /// both channel traversals.
    pub fn calibrate_delta(honest_cycles: u64, clock: Clock, channel: Channel, report_bits: u64, slack: f64) -> f64 {
        let compute_s = clock.duration_ns(honest_cycles) * 1e-9;
        compute_s * slack + channel.transfer_s(64) + channel.transfer_s(report_bits)
    }

    /// Recomputes the expected attestation response for `request` given the
    /// prover's helper-data stream.
    ///
    /// # Errors
    ///
    /// Reconstruction failures surface as [`PufattError`]; the caller
    /// normally treats them as a response mismatch.
    pub fn expected_response(
        &self,
        request: AttestationRequest,
        helper_words: &[u32],
    ) -> Result<[u32; STATE_WORDS], PufattError> {
        let mut region = self.expected_region.clone();
        region[self.layout.seed_cell as usize] = request.r0;
        region[self.layout.x0_cell as usize] = request.x0;
        let mut round_puf = VerifierRoundPuf::new(&self.puf, helper_words);
        let result = checksum::compute(&region, request.r0, request.x0, &self.params, &mut round_puf);
        if let Some(e) = round_puf.failure() {
            return Err(e.clone());
        }
        Ok(result.response)
    }

    /// Full verification of a session: recompute `r`, check it, and check
    /// the time bound.
    ///
    /// `prover_clock` is the clock the prover *claims* (and the verifier
    /// expects); the elapsed time is computed from the report's cycle count
    /// at that clock plus channel time in both directions.
    pub fn verify(&self, request: AttestationRequest, report: &AttestationReport, prover_compute_s: f64) -> Verdict {
        let elapsed_s = self.channel.transfer_s(request.wire_bits())
            + prover_compute_s
            + self.channel.transfer_s(report.wire_bits());
        self.verify_timed(request, report, elapsed_s)
    }

    /// Like [`Verifier::verify`], but for a caller that *measured* the
    /// end-to-end time itself — the entry point the robustness layer uses
    /// when the report travelled a lossy channel whose latency the clean
    /// [`Channel`] model cannot predict.
    pub fn verify_timed(&self, request: AttestationRequest, report: &AttestationReport, elapsed_s: f64) -> Verdict {
        let response_ok = match self.expected_response(request, &report.helper_words) {
            Ok(expected) => expected == report.response,
            Err(_) => false,
        };
        let time_ok = elapsed_s <= self.delta_s;
        Verdict {
            accepted: response_ok && time_ok,
            response_ok,
            time_ok,
            elapsed_s,
            delta_s: self.delta_s,
        }
    }

    /// The channel model.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// The checksum parameters the verifier expects (public protocol
    /// parameters — the adversary knows them too).
    pub fn params(&self) -> SwattParams {
        self.params
    }

    /// Number of PUF queries (and thus 8× helper words) a conforming report
    /// carries.
    pub fn expected_helper_words(&self) -> usize {
        self.params.puf_queries() as usize * RESPONSES_PER_OUTPUT
    }

    /// Starts a new attestation session on the PUF model: clears the
    /// session-scoped CRP cache so retries within the session hit while a
    /// fresh session starts cold.
    pub fn begin_session(&self) {
        self.puf.begin_session();
    }

    /// Cumulative CRP cache `(hits, misses)` of the PUF model.
    pub fn crp_cache_stats(&self) -> (u64, u64) {
        self.puf.crp_cache_stats()
    }
}

/// Derives the attestation-mode clock from the device's PUF timing limit.
///
/// The overclocking defence (§4.2) requires the attestation clock to sit
/// just above the PUF's empirical settling times — any meaningful speedup
/// then violates arbiter setup and corrupts responses. `guard` is the
/// calibration margin (e.g. 1.1 = 10 % above the worst settling time seen
/// in `samples` random challenges).
pub fn puf_limited_clock(enrolled: &crate::enroll::EnrolledDevice, guard: f64, samples: usize, seed: u64) -> Clock {
    let mut device = enrolled.device_puf(seed);
    let cycle_ps = device.calibrate_cycle_ps(samples, guard);
    Clock::new(1e6 / cycle_ps)
}

/// Provisions a matched prover/verifier pair from an enrolled device, using
/// a golden run to calibrate δ.
///
/// Returns `(prover, verifier, honest_cycles)`.
///
/// # Errors
///
/// Propagates codegen/trap errors from provisioning and the golden run.
pub fn provision(
    enrolled: &crate::enroll::EnrolledDevice,
    params: SwattParams,
    clock: Clock,
    channel: Channel,
    noise_seed: u64,
    slack: f64,
) -> Result<(ProverDevice, Verifier, u64), PufattError> {
    let puf = enrolled.device_handle(noise_seed);
    let mut prover = ProverDevice::new(puf, params, &CodegenOptions::default(), clock)?;
    // The ALU PUF shares the CPU clock network: couple it, so the honest
    // device also lives with its calibrated timing margin.
    prover.set_clock(clock, true);
    let expected_region = prover.expected_region();

    // Golden run (at provisioning, in the factory): calibrates δ.
    let golden = prover.attest(AttestationRequest { x0: 1, r0: 1 })?;
    let report_bits = golden.wire_bits();
    let delta_s = Verifier::calibrate_delta(golden.cycles, clock, channel, report_bits, slack);

    let verifier =
        Verifier::new(expected_region, enrolled.verifier_puf()?, params, prover.layout(), channel, clock, delta_s);
    Ok((prover, verifier, golden.cycles))
}

/// Runs one complete session: request → prover computes → verifier checks.
///
/// # Errors
///
/// Propagates prover traps.
pub fn run_session(
    prover: &mut ProverDevice,
    verifier: &Verifier,
    request: AttestationRequest,
) -> Result<(Verdict, AttestationReport), PufattError> {
    let report = prover.attest(request)?;
    // The prover's *real* compute time follows its actual clock; the
    // verifier has no way to see the clock, only the wall time.
    let compute_s = prover.clock().duration_ns(report.cycles) * 1e-9;
    let verdict = verifier.verify(request, &report, compute_s);
    Ok((verdict, report))
}

/// Runs sessions until one is accepted or `max_attempts` is exhausted,
/// drawing a fresh request each time.
///
/// Error correction leaves a small false-negative rate per attestation
/// (quantified in the FNR experiment); verifiers re-challenge on failure,
/// which drives the honest-rejection probability to `FNR^attempts` while
/// leaving every attack detected (attacks fail deterministically, not by
/// bad luck).
///
/// Returns the final verdict and the number of attempts made.
///
/// # Errors
///
/// Propagates prover traps.
pub fn run_session_with_retry<R: Rng + ?Sized>(
    prover: &mut ProverDevice,
    verifier: &Verifier,
    rng: &mut R,
    max_attempts: usize,
) -> Result<(Verdict, usize), PufattError> {
    // A zero budget is treated as one attempt instead of panicking — fault
    // campaigns construct retry budgets dynamically, and misconfiguration
    // must surface as a verdict, never as a crash.
    let max_attempts = max_attempts.max(1);
    let mut attempt = 1;
    loop {
        let request = AttestationRequest::random(rng);
        let (verdict, _) = run_session(prover, verifier, request)?;
        if verdict.accepted || attempt == max_attempts {
            return Ok((verdict, attempt));
        }
        attempt += 1;
    }
}

/// Authenticates one live response against a recorded CRP database (the
/// paper's §2 database approach): the challenge's reference response is
/// *consumed* — each challenge authenticates at most once — and the device
/// is accepted when the live response lies within `max_distance` bits of
/// the enrolled reference (PUF noise tolerance).
///
/// # Errors
///
/// [`PufattError::ChallengeReused`] if the challenge was already consumed
/// (a replay is refused *before* any comparison — the reference is gone,
/// so a reused challenge can never authenticate);
/// [`PufattError::ChallengeUnknown`] for a challenge that was never
/// enrolled.
pub fn authenticate_with_database(
    database: &mut crate::enroll::CrpDatabase,
    challenge: pufatt_alupuf::challenge::Challenge,
    live: pufatt_alupuf::challenge::RawResponse,
    max_distance: u32,
) -> Result<bool, PufattError> {
    let reference = database.consume(challenge)?;
    Ok(live.hamming_distance(reference) <= max_distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll::enroll;
    use pufatt_alupuf::device::AluPufConfig;

    fn small_params() -> SwattParams {
        SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 }
    }

    fn setup() -> (ProverDevice, Verifier) {
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let (p, v, _) =
            provision(&enrolled, small_params(), Clock::new(100.0), Channel::sensor_link(), 7, 1.10).unwrap();
        (p, v)
    }

    #[test]
    fn honest_prover_is_accepted() {
        let (mut prover, verifier) = setup();
        for seed in 0..3u32 {
            let request = AttestationRequest { x0: 0xA0A0 + seed, r0: 0xB0B0 + seed };
            let (verdict, report) = run_session(&mut prover, &verifier, request).unwrap();
            assert!(verdict.response_ok, "honest response must verify (seed {seed}): {verdict}");
            assert!(verdict.time_ok, "honest timing must fit (seed {seed}): {verdict}");
            assert!(verdict.accepted);
            assert_eq!(report.helper_words.len(), verifier.expected_helper_words());
        }
    }

    #[test]
    fn database_authentication_consumes_and_refuses_replay() {
        use pufatt_alupuf::device::PufInstance;
        use rand::SeedableRng;
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let mut db = enrolled.record_crp_database_batch(8, 21, 22, 1);
        let instance = PufInstance::new(enrolled.design(), enrolled.chip(), enrolled.env());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut keys: Vec<_> = db.challenges().collect();
        keys.sort_by_key(|c| (c.a, c.b));
        let ch = keys[0];
        let live = instance.evaluate(ch, &mut rng);
        let accepted = authenticate_with_database(&mut db, ch, live, enrolled.design().width() as u32 / 4).unwrap();
        assert!(accepted, "an honest device within noise tolerance authenticates");
        // The same challenge again — even with a perfect response — is a
        // typed replay refusal, not a silent miss.
        assert!(matches!(
            authenticate_with_database(&mut db, ch, live, u32::MAX),
            Err(PufattError::ChallengeReused { challenge }) if challenge == ch
        ));
    }

    #[test]
    fn tampered_memory_is_rejected() {
        let (mut prover, verifier) = setup();
        // Flip one word inside the attested region (not the challenge
        // cells).
        prover.memory_mut()[100] ^= 0x1;
        let request = AttestationRequest { x0: 5, r0: 6 };
        let (verdict, _) = run_session(&mut prover, &verifier, request).unwrap();
        assert!(!verdict.response_ok, "tampering must break the response");
        assert!(!verdict.accepted);
    }

    #[test]
    fn wrong_chip_is_rejected() {
        // Same design, different silicon: the imposter computes the right
        // checksum structure but its PUF outputs (and helper data) do not
        // verify against the enrolled delay table.
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let imposter = enroll(AluPufConfig::paper_32bit(), 43, 0).unwrap();
        let (_, verifier, _) =
            provision(&enrolled, small_params(), Clock::new(100.0), Channel::sensor_link(), 7, 1.10).unwrap();
        let (mut imposter_prover, _, _) =
            provision(&imposter, small_params(), Clock::new(100.0), Channel::sensor_link(), 7, 1.10).unwrap();
        let request = AttestationRequest { x0: 9, r0: 10 };
        let (verdict, _) = run_session(&mut imposter_prover, &verifier, request).unwrap();
        assert!(!verdict.response_ok, "imposter must fail response verification: {verdict}");
    }

    #[test]
    fn delta_calibration_scales_with_cycles() {
        let c = Clock::new(100.0);
        let ch = Channel::sensor_link();
        let d1 = Verifier::calibrate_delta(1_000_000, c, ch, 1024, 1.1);
        let d2 = Verifier::calibrate_delta(2_000_000, c, ch, 1024, 1.1);
        assert!(d2 > d1);
        // 1M cycles at 100 MHz = 10 ms; with slack 1.1 and channel ≈ 4+ ms.
        assert!(d1 > 0.011 && d1 < 0.050, "{d1}");
    }

    #[test]
    fn wire_formats_round_trip() {
        let req = AttestationRequest { x0: 0xAABB_CCDD, r0: 0x1122_3344 };
        assert_eq!(AttestationRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        assert!(AttestationRequest::from_bytes(&[0; 7]).is_err());

        let report = AttestationReport {
            response: [1, 2, 3, 4, 5, 6, 7, 8],
            helper_words: vec![0xAA, 0xBB, 0xCC],
            cycles: 123_456,
        };
        let bytes = report.to_bytes();
        assert_eq!(AttestationReport::from_bytes(&bytes).unwrap(), report);
        assert!(AttestationReport::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(AttestationReport::from_bytes(&bad).is_err());
    }

    #[test]
    fn channel_model_accounts_latency_and_bandwidth() {
        let ch = Channel { bandwidth_bps: 1000.0, latency_s: 0.5 };
        assert!((ch.transfer_s(1000) - 1.5).abs() < 1e-12);
    }
}
