//! Concrete PUF endpoints: the prover's device-side pipeline and the
//! verifier's emulator-side pipeline, with adapters for the PE32 PUF port
//! and the checksum's `RoundPuf` hook.

use crate::error::PufattError;
use crate::obfuscate::RESPONSES_PER_OUTPUT;
use crate::pipeline::{ProveOutput, PufPipeline};
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_alupuf::device::{AluPufDesign, PufChip, PufInstance};
use pufatt_alupuf::emulate::{DelayTable, SharedPufEmulator};
use pufatt_pe32::puf_port::{PufOutput, PufPort};
use pufatt_silicon::env::Environment;
use pufatt_swatt::checksum::{RoundPuf, STATE_WORDS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A deterministic fault injected into every raw PUF response a device
/// produces — the robustness layer's model of a PUF whose noise exceeds
/// the enrolled characterisation (aging, voltage droop, temperature, or a
/// fault-injection attack on the arbiter latches).
///
/// Flips are XORed *on top of* the device's physical noise, so the error
/// the verifier's BCH\[32,6,16\] decoder sees is the combination of both.
/// All randomness comes from the device's own seeded noise source, keeping
/// fault-injected runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseFault {
    /// Independent per-bit flip probability applied to every raw response.
    pub flip_probability: f64,
    /// Exact number of contiguous bits flipped when a burst lands (models
    /// beyond-`t` error events; the BCH code tolerates bursts of weight
    /// ≤ 7).
    pub burst_weight: u32,
    /// A burst lands on every `burst_period`-th raw evaluation
    /// (1 = every evaluation, 0 = never).
    pub burst_period: u32,
}

impl ResponseFault {
    /// A fault that does nothing (no flips, no bursts).
    pub fn none() -> Self {
        ResponseFault { flip_probability: 0.0, burst_weight: 0, burst_period: 0 }
    }

    /// Whether this fault can ever flip a bit.
    pub fn is_active(&self) -> bool {
        self.flip_probability > 0.0 || (self.burst_weight > 0 && self.burst_period > 0)
    }
}

/// The physical PUF of one prover device: design + chip + operating point,
/// with the post-processing pipeline and the device's private noise source.
#[derive(Debug)]
pub struct DevicePuf {
    design: Arc<AluPufDesign>,
    chip: Arc<PufChip>,
    env: Environment,
    /// Effective per-gate delays at `env`, computed once at construction;
    /// per-call instances are rebuilt from this cache instead of re-running
    /// the delay model (`PufInstance` borrows the design, so it cannot
    /// outlive a method call on the `Arc`-holding device).
    delays_ps: Vec<f64>,
    pipeline: PufPipeline,
    rng: ChaCha8Rng,
    /// When set, PUF evaluations race against this clock period (the
    /// overclocking model); `None` evaluates with safe clocking.
    cycle_ps: Option<f64>,
    /// Temporal-majority votes per raw evaluation (post-processing noise
    /// suppression; 1 = single-shot).
    votes: u32,
    /// Challenges buffered between `pstart` and `pend`.
    buffer: Vec<(u32, u32)>,
    /// Helper words of every finalized session, in order.
    helper_log: Vec<u32>,
    /// Optional injected response fault (the robustness layer's hook).
    fault: Option<ResponseFault>,
    /// Raw evaluations performed, counted for burst scheduling.
    evaluations: u64,
}

impl DevicePuf {
    /// Assembles the device PUF.
    ///
    /// # Errors
    ///
    /// Propagates [`PufattError::UnsupportedWidth`] for widths without a
    /// matching code.
    pub fn new(
        design: Arc<AluPufDesign>,
        chip: Arc<PufChip>,
        env: Environment,
        noise_seed: u64,
    ) -> Result<Self, PufattError> {
        let pipeline = PufPipeline::for_width(design.width())?;
        let delays_ps = design.effective_delays_ps(chip.silicon(), &env);
        Ok(DevicePuf {
            design,
            chip,
            env,
            delays_ps,
            pipeline,
            rng: ChaCha8Rng::seed_from_u64(noise_seed),
            cycle_ps: None,
            votes: 5,
            buffer: Vec::new(),
            helper_log: Vec::new(),
            fault: None,
            evaluations: 0,
        })
    }

    /// Couples PUF evaluation to a clock period in ps (`None` restores safe
    /// clocking). Used by the overclocking attack: shrinking the period
    /// below `T_ALU + T_set` corrupts responses.
    pub fn set_cycle_ps(&mut self, cycle_ps: Option<f64>) {
        self.cycle_ps = cycle_ps;
    }

    /// Sets the temporal-majority vote count (default 5).
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn set_votes(&mut self, votes: u32) {
        assert!(votes > 0, "at least one vote required");
        self.votes = votes;
    }

    /// Minimum reliable clock period of this device's PUF (`T_ALU + T_set`).
    pub fn min_reliable_cycle_ps(&self) -> f64 {
        self.instance().min_reliable_cycle_ps()
    }

    /// Rebuilds a short-lived instance from the cached delay vector.
    fn instance(&self) -> PufInstance<'_> {
        PufInstance::from_delays(&self.design, &self.chip, self.env, self.delays_ps.clone())
    }

    /// Empirical attestation-clock calibration (see
    /// [`PufInstance::calibrate_cycle_ps`]); uses the device's own noise
    /// source for sampling.
    pub fn calibrate_cycle_ps(&mut self, samples: usize, guard: f64) -> f64 {
        let instance = PufInstance::from_delays(&self.design, &self.chip, self.env, self.delays_ps.clone());
        instance.calibrate_cycle_ps(samples, guard, &mut self.rng)
    }

    /// The post-processing pipeline.
    pub fn pipeline(&self) -> &PufPipeline {
        &self.pipeline
    }

    /// The response width.
    pub fn width(&self) -> usize {
        self.design.width()
    }

    /// Injects (or clears) a deterministic response fault. Subsequent raw
    /// evaluations pass through [`ResponseFault`] bit-flipping driven by the
    /// device's seeded noise source.
    pub fn set_response_fault(&mut self, fault: Option<ResponseFault>) {
        self.fault = fault.filter(ResponseFault::is_active);
    }

    /// The currently injected response fault, if any.
    pub fn response_fault(&self) -> Option<ResponseFault> {
        self.fault
    }

    /// Snapshot of the device's private noise state: the seeded RNG's
    /// keystream position plus the raw-evaluation counter that schedules
    /// fault bursts. Together with the noise seed (held by the caller)
    /// this fully determines every future noisy evaluation, which is what
    /// lets a resumed campaign fast-forward a device instead of replaying
    /// all of its past sessions.
    pub fn noise_state(&self) -> (u64, u64) {
        (self.rng.word_pos(), self.evaluations)
    }

    /// Restores a noise snapshot taken by [`DevicePuf::noise_state`] on a
    /// freshly provisioned device with the same noise seed.
    pub fn restore_noise_state(&mut self, word_pos: u64, evaluations: u64) {
        self.rng.set_word_pos(word_pos);
        self.evaluations = evaluations;
    }

    /// Applies the injected fault (if any) to one freshly evaluated raw
    /// response, consuming the device RNG deterministically.
    fn apply_fault(&mut self, raw: RawResponse) -> RawResponse {
        let Some(fault) = self.fault else { return raw };
        self.evaluations += 1;
        let width = raw.width();
        let mut bits = raw.bits();
        if fault.flip_probability > 0.0 {
            for i in 0..width {
                if self.rng.gen::<f64>() < fault.flip_probability {
                    bits ^= 1 << i;
                }
            }
        }
        if fault.burst_weight > 0
            && fault.burst_period > 0
            && self.evaluations.is_multiple_of(u64::from(fault.burst_period))
        {
            // A contiguous burst of exactly `burst_weight` flips at a random
            // start, wrapping around the word.
            let start = self.rng.gen_range(0..width);
            for j in 0..(fault.burst_weight as usize).min(width) {
                bits ^= 1 << ((start + j) % width);
            }
        }
        RawResponse::new(bits, width)
    }

    /// Evaluates a single raw (pre-pipeline) response with the device's
    /// configured voting — the primitive other protocols built on the same
    /// hardware use (e.g. [`crate::slender`]).
    pub fn evaluate_raw(&mut self, challenge: Challenge) -> RawResponse {
        let raw = {
            let instance = PufInstance::from_delays(&self.design, &self.chip, self.env, self.delays_ps.clone());
            match self.cycle_ps {
                Some(cycle) => instance.evaluate_voted_clocked(challenge, cycle, self.votes, &mut self.rng),
                None => instance.evaluate_voted(challenge, self.votes, &mut self.rng),
            }
        };
        self.apply_fault(raw)
    }

    /// Evaluates one group of 8 challenges through the full pipeline.
    pub fn respond(&mut self, challenges: &[Challenge; RESPONSES_PER_OUTPUT]) -> ProveOutput {
        let raw: [RawResponse; RESPONSES_PER_OUTPUT] = {
            let instance = PufInstance::from_delays(&self.design, &self.chip, self.env, self.delays_ps.clone());
            std::array::from_fn(|j| match self.cycle_ps {
                Some(cycle) => instance.evaluate_voted_clocked(challenges[j], cycle, self.votes, &mut self.rng),
                None => instance.evaluate_voted(challenges[j], self.votes, &mut self.rng),
            })
        };
        let raw = raw.map(|r| self.apply_fault(r));
        self.pipeline.prove(&raw)
    }

    /// Helper words accumulated since the last [`DevicePuf::take_helper_log`].
    pub fn take_helper_log(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.helper_log)
    }

    fn pairs_to_challenges(width: usize, pairs: &[(u32, u32)]) -> [Challenge; RESPONSES_PER_OUTPUT] {
        // Sessions are expected to carry exactly 8 challenges (the
        // obfuscation network's arity); short sessions repeat the last
        // challenge, long ones keep the first 8.
        std::array::from_fn(|j| {
            let &(a, b) = pairs.get(j).or(pairs.last()).unwrap_or(&(0, 0));
            Challenge::new(a as u64, b as u64, width)
        })
    }
}

impl PufPort for DevicePuf {
    fn start(&mut self) {
        self.buffer.clear();
    }

    fn challenge(&mut self, a: u32, b: u32) {
        self.buffer.push((a, b));
    }

    fn finalize(&mut self) -> PufOutput {
        let pairs = std::mem::take(&mut self.buffer);
        let challenges = DevicePuf::pairs_to_challenges(self.width(), &pairs);
        let out = self.respond(&challenges);
        self.helper_log.extend_from_slice(&out.helpers);
        PufOutput { z: out.z as u32, helper: out.helpers.to_vec() }
    }
}

impl RoundPuf for DevicePuf {
    fn query(&mut self, challenges: &[(u32, u32); STATE_WORDS]) -> u32 {
        self.start();
        for &(a, b) in challenges {
            self.challenge(a, b);
        }
        self.finalize().z
    }
}

/// A shareable handle to a [`DevicePuf`]: lets the prover harness keep
/// control (clock coupling, helper-log retrieval) while the CPU owns a
/// `Box<dyn PufPort>` of the same device.
#[derive(Debug, Clone)]
pub struct SharedDevicePuf(pub Arc<Mutex<DevicePuf>>);

impl SharedDevicePuf {
    /// Wraps a device.
    pub fn new(device: DevicePuf) -> Self {
        SharedDevicePuf(Arc::new(Mutex::new(device)))
    }

    /// Runs a closure over the device. Poison-tolerant: a panic in an
    /// earlier closure (e.g. a failed assertion in a chaos test) must not
    /// cascade into every later session on the same device.
    pub fn with<T>(&self, f: impl FnOnce(&mut DevicePuf) -> T) -> T {
        f(&mut self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl PufPort for SharedDevicePuf {
    fn start(&mut self) {
        self.with(|d| d.start());
    }

    fn challenge(&mut self, a: u32, b: u32) {
        self.with(|d| d.challenge(a, b));
    }

    fn finalize(&mut self) -> PufOutput {
        self.with(|d| d.finalize())
    }
}

/// Upper bound on cached CRPs per verifier model. Sessions consume 64
/// challenges (8 checksum queries × 8 challenges), so one session fits with
/// a wide margin; the cap only guards against unbounded growth if a caller
/// never starts a new session.
const CRP_CACHE_CAP: usize = 4096;

/// The verifier's model of one enrolled device: a shared emulator (design +
/// delay table + pooled bit-sliced engines) + pipeline + a session-scoped
/// arrival-time/CRP cache.
///
/// The cache maps a full challenge `(a, b)` to the emulated raw response
/// bits. It is cleared by [`VerifierPuf::begin_session`], making per-session
/// hit/miss deltas independent of fleet scheduling order: retried attempts
/// within one session replay the same 64 challenges and hit, while a fresh
/// session always starts cold. Clones get an empty cache and zeroed
/// counters (a clone models a *new* verifier instance, not shared state).
pub struct VerifierPuf {
    emulator: SharedPufEmulator,
    pipeline: PufPipeline,
    cache: Mutex<HashMap<(u64, u64), u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for VerifierPuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.crp_cache_stats();
        f.debug_struct("VerifierPuf")
            .field("width", &self.width())
            .field("crp_hits", &hits)
            .field("crp_misses", &misses)
            .finish_non_exhaustive()
    }
}

impl Clone for VerifierPuf {
    fn clone(&self) -> Self {
        VerifierPuf {
            emulator: self.emulator.clone(),
            pipeline: self.pipeline.clone(),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl VerifierPuf {
    /// Builds the verifier-side PUF from enrollment data.
    ///
    /// # Errors
    ///
    /// Propagates [`PufattError::UnsupportedWidth`].
    pub fn new(design: Arc<AluPufDesign>, table: DelayTable) -> Result<Self, PufattError> {
        let pipeline = PufPipeline::for_width(design.width())?;
        let emulator = SharedPufEmulator::new(design, table);
        Ok(VerifierPuf {
            emulator,
            pipeline,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The response width.
    pub fn width(&self) -> usize {
        self.emulator.design().width()
    }

    /// Starts a new attestation session: clears the CRP cache (the hit/miss
    /// counters persist — read them with [`VerifierPuf::crp_cache_stats`]).
    pub fn begin_session(&self) {
        lock(&self.cache).clear();
    }

    /// Cumulative CRP cache `(hits, misses)` since construction.
    pub fn crp_cache_stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Emulates the reference raw response to one challenge, through the
    /// session CRP cache.
    pub fn emulate(&self, challenge: Challenge) -> RawResponse {
        let key = (challenge.a, challenge.b);
        if let Some(&bits) = lock(&self.cache).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return RawResponse::new(bits, self.width());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let resp = self.emulator.emulate(challenge);
        self.insert_cached(key, resp.bits());
        resp
    }

    /// Emulates many reference responses with pooled engines, fanned across
    /// `threads` workers (order-preserving and thread-count invariant).
    /// Bulk characterisation bypasses the CRP cache: its challenge streams
    /// are fresh by construction and would only evict session entries.
    pub fn emulate_batch(&self, challenges: &[Challenge], threads: usize) -> Vec<RawResponse> {
        self.emulator.emulate_batch(challenges, threads)
    }

    /// Verifier side of one 8-challenge session.
    ///
    /// Cache hits are served from the session CRP cache; the misses are
    /// emulated as one bit-sliced batch (consecutive lookups in a session
    /// also reuse the engine's incremental cone state).
    ///
    /// # Errors
    ///
    /// [`PufattError::ReconstructionFailed`] when the helper data does not
    /// decode against the emulated references.
    pub fn conclude(
        &self,
        challenges: &[Challenge; RESPONSES_PER_OUTPUT],
        helpers: &[u32; RESPONSES_PER_OUTPUT],
    ) -> Result<u64, PufattError> {
        let width = self.width();
        let mut refs: [RawResponse; RESPONSES_PER_OUTPUT] = std::array::from_fn(|_| RawResponse::new(0, width));
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = lock(&self.cache);
            for (j, ch) in challenges.iter().enumerate() {
                match cache.get(&(ch.a, ch.b)) {
                    Some(&bits) => refs[j] = RawResponse::new(bits, width),
                    None => missing.push(j),
                }
            }
        }
        self.hits
            .fetch_add((RESPONSES_PER_OUTPUT - missing.len()) as u64, Ordering::Relaxed);
        self.misses.fetch_add(missing.len() as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            let wanted: Vec<Challenge> = missing.iter().map(|&j| challenges[j]).collect();
            let fresh = self.emulator.emulate_many(&wanted);
            let mut cache = lock(&self.cache);
            if cache.len() + fresh.len() > CRP_CACHE_CAP {
                cache.clear();
            }
            for (&j, resp) in missing.iter().zip(&fresh) {
                refs[j] = *resp;
                cache.insert((challenges[j].a, challenges[j].b), resp.bits());
            }
        }
        self.pipeline.conclude(&refs, helpers)
    }

    fn insert_cached(&self, key: (u64, u64), bits: u64) {
        let mut cache = lock(&self.cache);
        if cache.len() >= CRP_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, bits);
    }
}

/// Poison-tolerant lock: the data under these mutexes is a plain cache, so
/// a panicking holder cannot leave it logically corrupt.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// `RoundPuf` for the verifier: replays the prover's helper-word stream
/// against the emulator. Reconstruction failures poison the instance (the
/// recomputed response will then differ and attestation rejects).
#[derive(Debug)]
pub struct VerifierRoundPuf<'a> {
    puf: &'a VerifierPuf,
    helpers: &'a [u32],
    cursor: usize,
    failure: Option<PufattError>,
}

impl<'a> VerifierRoundPuf<'a> {
    /// Creates a replay over `helpers` (8 words per PUF query, in order).
    pub fn new(puf: &'a VerifierPuf, helpers: &'a [u32]) -> Self {
        VerifierRoundPuf { puf, helpers, cursor: 0, failure: None }
    }

    /// The first reconstruction failure, if any occurred.
    pub fn failure(&self) -> Option<&PufattError> {
        self.failure.as_ref()
    }

    /// Helper words consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl RoundPuf for VerifierRoundPuf<'_> {
    fn query(&mut self, challenges: &[(u32, u32); STATE_WORDS]) -> u32 {
        let end = self.cursor + RESPONSES_PER_OUTPUT;
        let Some(slice) = self.helpers.get(self.cursor..end) else {
            self.failure.get_or_insert(PufattError::HelperStreamExhausted);
            return 0;
        };
        self.cursor = end;
        let w = self.puf.width();
        let chs: [Challenge; RESPONSES_PER_OUTPUT] =
            std::array::from_fn(|j| Challenge::new(challenges[j].0 as u64, challenges[j].1 as u64, w));
        let helpers: [u32; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| slice[j]);
        match self.puf.conclude(&chs, &helpers) {
            Ok(z) => z as u32,
            Err(e) => {
                self.failure.get_or_insert(e);
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll;
    use pufatt_alupuf::device::AluPufConfig;
    use rand::Rng;

    fn setup() -> (SharedDevicePuf, VerifierPuf) {
        let enrolled = enroll::enroll(AluPufConfig::paper_32bit(), 7, 2024).expect("32-bit width supported");
        (enrolled.device_handle(11), enrolled.verifier_puf().unwrap())
    }

    #[test]
    fn device_and_verifier_agree_through_round_puf() {
        let (device, verifier) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut z_dev = Vec::new();
        let mut queries = Vec::new();
        device.with(|d| {
            for _ in 0..4 {
                let pairs: [(u32, u32); 8] = std::array::from_fn(|_| (rng.gen(), rng.gen()));
                queries.push(pairs);
                z_dev.push(d.query(&pairs));
            }
        });
        let helpers = device.with(|d| d.take_helper_log());
        assert_eq!(helpers.len(), 32, "8 helper words per query");
        let mut vr = VerifierRoundPuf::new(&verifier, &helpers);
        for (q, &zd) in queries.iter().zip(&z_dev) {
            let zv = vr.query(q);
            assert_eq!(zv, zd, "verifier must recompute the device's z");
        }
        assert!(vr.failure().is_none());
    }

    #[test]
    fn helper_stream_exhaustion_is_flagged() {
        let (_, verifier) = setup();
        let helpers = [0u32; 4]; // too short
        let mut vr = VerifierRoundPuf::new(&verifier, &helpers);
        let z = vr.query(&[(0, 0); 8]);
        assert_eq!(z, 0);
        assert_eq!(vr.failure(), Some(&PufattError::HelperStreamExhausted));
    }

    #[test]
    fn overclocked_device_diverges_from_verifier() {
        let (device, verifier) = setup();
        // Random operands rarely ripple the whole carry chain, so the
        // violation must cut into the *empirical* settling range.
        let unsafe_cycle = device.with(|d| d.calibrate_cycle_ps(64, 1.0)) * 0.05;
        device.with(|d| d.set_cycle_ps(Some(unsafe_cycle)));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // Per-query corruption is probabilistic (only ~half the sum bits
        // toggle per challenge, and ECC absorbs up to 7 errors); the
        // protocol detects the attack by amplification over its many PUF
        // queries, so a substantial per-query mismatch rate suffices here.
        let mut mismatches = 0;
        let queries = 12;
        for _ in 0..queries {
            let pairs: [(u32, u32); 8] = std::array::from_fn(|_| (rng.gen(), rng.gen()));
            let zd = device.with(|d| d.query(&pairs));
            let helpers = device.with(|d| d.take_helper_log());
            let mut vr = VerifierRoundPuf::new(&verifier, &helpers);
            let zv = vr.query(&pairs);
            if zd != zv || vr.failure().is_some() {
                mismatches += 1;
            }
        }
        assert!(mismatches >= queries / 3, "overclocking must corrupt z ({mismatches}/{queries})");
    }

    #[test]
    fn short_sessions_are_padded() {
        let (device, _) = setup();
        let out = device.with(|d| {
            d.start();
            d.challenge(1, 2);
            d.finalize()
        });
        assert_eq!(out.helper.len(), 8, "padded to the network arity");
    }
}
