//! The attestation authority: managing a fleet of enrolled devices.
//!
//! The paper's protocol is one prover / one verifier; an actual deployment
//! (the sensor-network setting the paper motivates) runs one verifier
//! against many devices. [`AttestationServer`] holds per-device verifiers
//! keyed by a device identifier, schedules sessions, records outcomes, and
//! supports revocation — the bookkeeping layer between the protocol and an
//! operator.

use crate::enroll::EnrolledDevice;
use crate::error::PufattError;
use crate::protocol::{provision, AttestationRequest, Channel, ProverDevice, Verifier};
use crate::ring::RingBuffer;
use pufatt_pe32::cpu::Clock;
use pufatt_swatt::checksum::SwattParams;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a managed device.
pub type DeviceId = u32;

/// Status of one managed device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceStatus {
    /// Enrolled and eligible for attestation.
    Active,
    /// Removed from service (failed attestations, decommissioned, …);
    /// further sessions are refused.
    Revoked,
}

/// One recorded attestation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The device attested.
    pub device: DeviceId,
    /// Whether the verifier accepted.
    pub accepted: bool,
    /// Whether the response matched (independent of timing).
    pub response_ok: bool,
    /// Whether the time bound held.
    pub time_ok: bool,
    /// Measured elapsed time in seconds.
    pub elapsed_s: f64,
}

/// The verifier-side authority for a fleet.
pub struct AttestationServer {
    devices: HashMap<DeviceId, ManagedDevice>,
    log: RingBuffer<SessionRecord>,
    /// Devices are auto-revoked after this many consecutive failures
    /// (honest false negatives are rare; repeated failure means compromise
    /// or hardware fault).
    pub revoke_after_failures: u32,
}

/// Default session-log retention of [`AttestationServer`] (newest records
/// win once exceeded).
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

struct ManagedDevice {
    verifier: Verifier,
    status: DeviceStatus,
    consecutive_failures: u32,
}

impl fmt::Debug for AttestationServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttestationServer")
            .field("devices", &self.devices.len())
            .field("sessions_logged", &self.log.len())
            .finish()
    }
}

impl AttestationServer {
    /// Creates an empty authority (auto-revocation after 3 consecutive
    /// failures).
    pub fn new() -> Self {
        AttestationServer::with_log_capacity(DEFAULT_LOG_CAPACITY)
    }

    /// Creates an empty authority retaining at most `log_capacity` session
    /// records (the newest win; evictions are counted, see
    /// [`AttestationServer::log`]).
    ///
    /// # Panics
    ///
    /// Panics if `log_capacity == 0`.
    pub fn with_log_capacity(log_capacity: usize) -> Self {
        AttestationServer {
            devices: HashMap::new(),
            log: RingBuffer::new(log_capacity),
            revoke_after_failures: 3,
        }
    }

    /// Provisions one enrolled device into the fleet, returning the paired
    /// prover (which in a real deployment ships to the field).
    ///
    /// # Errors
    ///
    /// Propagates provisioning failures; refuses duplicate ids.
    pub fn provision_device(
        &mut self,
        id: DeviceId,
        enrolled: &EnrolledDevice,
        params: SwattParams,
        clock: Clock,
        channel: Channel,
        noise_seed: u64,
    ) -> Result<ProverDevice, PufattError> {
        if self.devices.contains_key(&id) {
            return Err(PufattError::Codegen(format!("device {id} already provisioned")));
        }
        let (prover, verifier, _) = provision(enrolled, params, clock, channel, noise_seed, 1.10)?;
        self.devices.insert(
            id,
            ManagedDevice {
                verifier,
                status: DeviceStatus::Active,
                consecutive_failures: 0,
            },
        );
        Ok(prover)
    }

    /// Number of managed devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A device's status.
    pub fn status(&self, id: DeviceId) -> Option<DeviceStatus> {
        self.devices.get(&id).map(|d| d.status)
    }

    /// Manually revokes a device.
    pub fn revoke(&mut self, id: DeviceId) {
        if let Some(d) = self.devices.get_mut(&id) {
            d.status = DeviceStatus::Revoked;
        }
    }

    /// Runs one attestation session against device `id`.
    ///
    /// # Errors
    ///
    /// Refuses unknown or revoked devices; propagates prover traps.
    pub fn attest<R: Rng + ?Sized>(
        &mut self,
        id: DeviceId,
        prover: &mut ProverDevice,
        rng: &mut R,
    ) -> Result<SessionRecord, PufattError> {
        let device = self
            .devices
            .get_mut(&id)
            .ok_or_else(|| PufattError::Codegen(format!("unknown device {id}")))?;
        if device.status == DeviceStatus::Revoked {
            return Err(PufattError::Codegen(format!("device {id} is revoked")));
        }
        let request = AttestationRequest::random(rng);
        let report = prover.attest(request)?;
        let compute_s = prover.clock().duration_ns(report.cycles) * 1e-9;
        let verdict = device.verifier.verify(request, &report, compute_s);
        let record = SessionRecord {
            device: id,
            accepted: verdict.accepted,
            response_ok: verdict.response_ok,
            time_ok: verdict.time_ok,
            elapsed_s: verdict.elapsed_s,
        };
        if verdict.accepted {
            device.consecutive_failures = 0;
        } else {
            device.consecutive_failures += 1;
            if device.consecutive_failures >= self.revoke_after_failures {
                device.status = DeviceStatus::Revoked;
            }
        }
        self.log.push(record.clone());
        Ok(record)
    }

    /// The retained session records, oldest first, with retention
    /// accounting ([`RingBuffer::evicted`] says how many older records
    /// rolled off).
    pub fn log(&self) -> &RingBuffer<SessionRecord> {
        &self.log
    }

    /// Acceptance statistics: `(accepted, total)` sessions for a device.
    pub fn stats(&self, id: DeviceId) -> (usize, usize) {
        let mine = self.log.iter().filter(|r| r.device == id);
        let total = mine.clone().count();
        let accepted = mine.filter(|r| r.accepted).count();
        (accepted, total)
    }
}

impl Default for AttestationServer {
    fn default() -> Self {
        AttestationServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll::enroll_fleet;
    use crate::protocol::puf_limited_clock;
    use pufatt_alupuf::device::AluPufConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SwattParams {
        SwattParams { region_bits: 9, rounds: 512, puf_interval: 16 }
    }

    #[test]
    fn fleet_provisioning_and_attestation() {
        let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 0x900, 2).unwrap();
        let mut server = AttestationServer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut provers = Vec::new();
        for (i, dev) in fleet.iter().enumerate() {
            let clock = puf_limited_clock(dev, 1.10, 64, i as u64);
            let prover = server
                .provision_device(i as DeviceId, dev, params(), clock, Channel::sensor_link(), 50 + i as u64)
                .unwrap();
            provers.push(prover);
        }
        assert_eq!(server.device_count(), 2);
        for (i, prover) in provers.iter_mut().enumerate() {
            let record = server.attest(i as DeviceId, prover, &mut rng).unwrap();
            assert!(record.accepted, "device {i}: {record:?}");
        }
        assert_eq!(server.log().len(), 2);
        assert_eq!(server.stats(0), (1, 1));
    }

    #[test]
    fn duplicate_ids_are_refused() {
        let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 0x901, 1).unwrap();
        let mut server = AttestationServer::new();
        let clock = puf_limited_clock(&fleet[0], 1.10, 64, 0);
        server
            .provision_device(7, &fleet[0], params(), clock, Channel::sensor_link(), 1)
            .unwrap();
        assert!(server
            .provision_device(7, &fleet[0], params(), clock, Channel::sensor_link(), 2)
            .is_err());
    }

    #[test]
    fn compromised_device_is_auto_revoked() {
        let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 0x902, 1).unwrap();
        let mut server = AttestationServer::new();
        let clock = puf_limited_clock(&fleet[0], 1.10, 64, 0);
        let mut prover = server
            .provision_device(1, &fleet[0], params(), clock, Channel::sensor_link(), 3)
            .unwrap();
        // Infect the device.
        let at = (prover.layout().x0_cell - 6) as usize;
        prover.memory_mut()[at] = 0xEB1B_EB1B;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for round in 0..3 {
            let record = server.attest(1, &mut prover, &mut rng).unwrap();
            assert!(!record.accepted, "round {round}");
        }
        assert_eq!(server.status(1), Some(DeviceStatus::Revoked));
        assert!(server.attest(1, &mut prover, &mut rng).is_err(), "revoked devices are refused");
        assert_eq!(server.stats(1), (0, 3));
    }

    #[test]
    fn session_log_is_bounded() {
        let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 0x904, 1).unwrap();
        let mut server = AttestationServer::with_log_capacity(4);
        let clock = puf_limited_clock(&fleet[0], 1.10, 64, 0);
        let mut prover = server
            .provision_device(1, &fleet[0], params(), clock, Channel::sensor_link(), 5)
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            server.attest(1, &mut prover, &mut rng).unwrap();
        }
        assert_eq!(server.log().len(), 4, "retention cap holds");
        assert_eq!(server.log().evicted(), 3);
        assert_eq!(server.log().total_pushed(), 7);
        // Stats survive rollover on the retained window.
        let (accepted, total) = server.stats(1);
        assert_eq!(total, 4);
        assert!(accepted <= 4);
    }

    #[test]
    fn unknown_device_is_an_error() {
        let fleet = enroll_fleet(AluPufConfig::paper_32bit(), 0x903, 1).unwrap();
        let mut server = AttestationServer::new();
        let clock = puf_limited_clock(&fleet[0], 1.10, 64, 0);
        let mut prover = server
            .provision_device(1, &fleet[0], params(), clock, Channel::sensor_link(), 3)
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(server.attest(99, &mut prover, &mut rng).is_err());
    }
}
