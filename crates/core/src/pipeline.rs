//! `PUF()` — the paper's composition of raw ALU PUF, error correction and
//! obfuscation.
//!
//! Prover side ([`PufPipeline::prove`]): for each of 8 noisy raw responses
//! `y'ⱼ`, emit the helper syndrome `hⱼ = H·y'ⱼ`; feed the `y'ⱼ` themselves
//! into the obfuscation network to get `z`.
//!
//! Verifier side ([`PufPipeline::conclude`]): emulate the reference
//! responses `yⱼ`, reconstruct each `y'ⱼ` from `(yⱼ, hⱼ)` via the reverse
//! fuzzy extractor, and run the same obfuscation network. When every
//! reconstruction succeeds (probability 1 − FNR, §4.1) both sides hold the
//! identical `z`.
//!
//! Note the ordering subtlety the paper calls out: obfuscation happens
//! *after* error correction in the sense that both parties obfuscate the
//! same agreed value `y'` — a single uncorrected bit error before the XOR
//! network would avalanche into `z`.

use crate::error::PufattError;
use crate::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::RawResponse;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::{Decoder, HelperData, ReverseFuzzyExtractor};

/// Device-side result of one `pstart … pend` session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProveOutput {
    /// The obfuscated output `z` (low `width` bits).
    pub z: u64,
    /// One packed helper syndrome per raw response.
    pub helpers: [u32; RESPONSES_PER_OUTPUT],
}

/// The post-processing pipeline for one response width.
#[derive(Debug, Clone)]
pub struct PufPipeline {
    width: usize,
    fe: ReverseFuzzyExtractor<ReedMuller1>,
}

impl PufPipeline {
    /// Builds the pipeline for a response width (must be a power of two in
    /// `4..=32`; the paper uses 32 in simulation, 16 on FPGA).
    ///
    /// # Errors
    ///
    /// [`PufattError::UnsupportedWidth`] if no RM(1,m) code of that length
    /// exists or its helper data would not fit the 32-bit helper words.
    pub fn for_width(width: usize) -> Result<Self, PufattError> {
        let ok = width.is_power_of_two() && (4..=32).contains(&width);
        if !ok {
            return Err(PufattError::UnsupportedWidth { width });
        }
        let m = width.trailing_zeros();
        Ok(PufPipeline { width, fe: ReverseFuzzyExtractor::new(ReedMuller1::new(m)) })
    }

    /// The paper's simulated configuration: 32-bit responses with
    /// BCH\[32,6,16\].
    pub fn paper_32bit() -> Self {
        PufPipeline::for_width(32).expect("32 is a supported width")
    }

    /// Response width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Helper bits per raw response (`n − k`; 26 for the paper's code).
    pub fn helper_bits(&self) -> usize {
        self.fe.decoder().code().syndrome_bits()
    }

    fn to_bitvec(&self, r: RawResponse) -> BitVec {
        BitVec::from_word(r.bits(), self.width)
    }

    /// Prover side: helper syndromes + obfuscated output from 8 noisy raw
    /// responses.
    ///
    /// # Panics
    ///
    /// Panics if a response width disagrees with the pipeline width.
    pub fn prove(&self, raw: &[RawResponse; RESPONSES_PER_OUTPUT]) -> ProveOutput {
        let mut helpers = [0u32; RESPONSES_PER_OUTPUT];
        let mut ys = [0u64; RESPONSES_PER_OUTPUT];
        for (j, &r) in raw.iter().enumerate() {
            assert_eq!(r.width(), self.width, "response width mismatch");
            let h: HelperData = self.fe.generate(&self.to_bitvec(r)).expect("width checked");
            helpers[j] = h.0.as_word() as u32;
            ys[j] = r.bits();
        }
        ProveOutput { z: obfuscate(&ys, self.width), helpers }
    }

    /// Verifier side: reconstructs the prover's raw responses from emulated
    /// references + helper data and recomputes `z`.
    ///
    /// # Errors
    ///
    /// [`PufattError::ReconstructionFailed`] when a helper syndrome cannot
    /// be decoded against its reference (more errors than the code
    /// corrects, or a mismatched device — impersonation).
    pub fn conclude(
        &self,
        references: &[RawResponse; RESPONSES_PER_OUTPUT],
        helpers: &[u32; RESPONSES_PER_OUTPUT],
    ) -> Result<u64, PufattError> {
        let mut ys = [0u64; RESPONSES_PER_OUTPUT];
        for (j, (&r, &h)) in references.iter().zip(helpers).enumerate() {
            assert_eq!(r.width(), self.width, "reference width mismatch");
            let helper = HelperData(BitVec::from_word(h as u64, self.helper_bits()));
            let rec = self
                .fe
                .reproduce(&self.to_bitvec(r), &helper)
                .map_err(|_| PufattError::ReconstructionFailed { index: j })?;
            ys[j] = rec.response.as_word();
        }
        Ok(obfuscate(&ys, self.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn noisy_copy(r: RawResponse, flips: &[usize]) -> RawResponse {
        let mut bits = r.bits();
        for &f in flips {
            bits ^= 1 << f;
        }
        RawResponse::new(bits, r.width())
    }

    #[test]
    fn widths() {
        assert!(PufPipeline::for_width(32).is_ok());
        assert!(PufPipeline::for_width(16).is_ok());
        assert!(PufPipeline::for_width(4).is_ok());
        assert!(matches!(PufPipeline::for_width(12), Err(PufattError::UnsupportedWidth { width: 12 })));
        assert!(matches!(PufPipeline::for_width(64), Err(PufattError::UnsupportedWidth { width: 64 })));
        assert_eq!(PufPipeline::paper_32bit().helper_bits(), 26);
    }

    #[test]
    fn noise_free_round_trip() {
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let raw: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
        let out = p.prove(&raw);
        let z = p.conclude(&raw, &out.helpers).unwrap();
        assert_eq!(z, out.z);
    }

    #[test]
    fn survives_up_to_7_errors_per_response() {
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            // The *references* are the emulator's clean values; the device's
            // noisy responses carry up to 7 flips each.
            let refs: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let noisy: [RawResponse; 8] = std::array::from_fn(|j| {
                let k = rng.gen_range(0..=7);
                let mut flips: Vec<usize> = (0..32).collect();
                for i in 0..k {
                    let pick = rng.gen_range(i..32);
                    flips.swap(i, pick);
                }
                noisy_copy(refs[j], &flips[..k])
            });
            let out = p.prove(&noisy);
            let z = p.conclude(&refs, &out.helpers).unwrap();
            assert_eq!(z, out.z, "verifier must agree with device despite noise");
        }
    }

    #[test]
    fn wrong_device_forges_one_z_with_probability_one_quarter() {
        // Structural observation (documented in DESIGN.md): ML decoding
        // against a wrong reference reconstructs a word in the *same coset*
        // as the prover's response, i.e. off by an RM(1,5) codeword. Every
        // codeword is the truth table of an affine function, so the
        // obfuscation's half-fold collapses it to all-zeros or all-ones —
        // one z therefore matches iff two parity bits vanish: probability
        // 1/4 per z, and 4^-q over an attestation's q PUF queries.
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut accepted = 0;
        let trials = 400;
        for _ in 0..trials {
            let device: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let imposter: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let out = p.prove(&device);
            match p.conclude(&imposter, &out.helpers) {
                Ok(z) if z == out.z => accepted += 1,
                _ => {}
            }
        }
        let rate = accepted as f64 / trials as f64;
        assert!((0.13..0.40).contains(&rate), "single-z forgery rate {rate} should be ~1/4");
    }

    #[test]
    fn helper_words_fit_26_bits() {
        let p = PufPipeline::paper_32bit();
        let raw: [RawResponse; 8] = std::array::from_fn(|j| RawResponse::new(0xFFFF_FFFF >> j, 32));
        let out = p.prove(&raw);
        assert!(out.helpers.iter().all(|&h| h < (1 << 26)));
    }

    #[test]
    fn sixteen_bit_fpga_pipeline() {
        let p = PufPipeline::for_width(16).unwrap();
        assert_eq!(p.helper_bits(), 11, "[16,5] code has 11 syndrome bits");
        let raw: [RawResponse; 8] = std::array::from_fn(|j| RawResponse::new(0x1234 ^ j as u64, 16));
        let out = p.prove(&raw);
        let z = p.conclude(&raw, &out.helpers).unwrap();
        assert_eq!(z, out.z);
        assert!(z <= 0xFFFF);
    }
}
