//! `PUF()` — the paper's composition of raw ALU PUF, error correction and
//! obfuscation.
//!
//! Prover side ([`PufPipeline::prove`]): for each of 8 noisy raw responses
//! `y'ⱼ`, emit the helper syndrome `hⱼ = H·y'ⱼ`; feed the `y'ⱼ` themselves
//! into the obfuscation network to get `z`.
//!
//! Verifier side ([`PufPipeline::conclude`]): emulate the reference
//! responses `yⱼ`, reconstruct each `y'ⱼ` from `(yⱼ, hⱼ)` via the reverse
//! fuzzy extractor, and run the same obfuscation network. When every
//! reconstruction succeeds (probability 1 − FNR, §4.1) both sides hold the
//! identical `z`.
//!
//! Note the ordering subtlety the paper calls out: obfuscation happens
//! *after* error correction in the sense that both parties obfuscate the
//! same agreed value `y'` — a single uncorrected bit error before the XOR
//! network would avalanche into `z`.

use crate::error::PufattError;
use crate::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::RawResponse;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::{Decoder, HelperData, ReverseFuzzyExtractor};

/// Seed of the burst-scattering interleaver permutation.
///
/// Chosen by exhaustive search: under this permutation every *contiguous*
/// error burst of weight 8..=16, at every one of the 32 wrapping start
/// positions, lands at Hamming distance ≥ 8 from every RM(1,5) codeword,
/// so the verifier's bounded-distance rule always rejects it (pinned by
/// `contiguous_bursts_beyond_t_are_always_rejected`). Without the
/// interleaver nearly every weight-9..12 burst sits *inside* the support
/// of some weight-16 codeword and decodes to a neighbouring word with
/// ≤ 7 "corrections" — see the failure-mode atlas in DESIGN.md §9.
const INTERLEAVER_SEED: u64 = 7;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed bit permutation for a response width: a splitmix64-driven
/// Fisher-Yates shuffle. RM(1,m) is invariant under *affine* permutations
/// of the bit index (bit reversal, rotation, index XOR all map codewords
/// to codewords), so the shuffle must be — and a random shuffle virtually
/// always is — non-affine.
fn interleaver(width: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..width).collect();
    let mut state = INTERLEAVER_SEED;
    for i in (1..width).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Device-side result of one `pstart … pend` session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProveOutput {
    /// The obfuscated output `z` (low `width` bits).
    pub z: u64,
    /// One packed helper syndrome per raw response.
    pub helpers: [u32; RESPONSES_PER_OUTPUT],
}

/// The post-processing pipeline for one response width.
///
/// Between the raw PUF response and the code domain sits a fixed,
/// public bit interleaver (in hardware: wiring in front of the syndrome
/// generator, zero gates). Physically-plausible faults — carry-chain
/// setup violations under overclocking, latch glitches — corrupt
/// *contiguous* bit runs, and contiguous bursts are exactly the shape
/// that aliases onto RM(1,5) codewords within the `t = 7` bound. The
/// interleaver scatters them into random-position patterns, which never
/// alias (a weight-`w ≥ 8` scattered error sits ≥ 8 from every
/// codeword under the pinned permutation). The interleaver lives
/// entirely inside [`prove`](PufPipeline::prove) /
/// [`conclude`](PufPipeline::conclude): helper words are syndromes of
/// the *interleaved* response, but the reconstructed value handed to
/// the obfuscation network is back in raw response order.
#[derive(Debug, Clone)]
pub struct PufPipeline {
    width: usize,
    fe: ReverseFuzzyExtractor<ReedMuller1>,
    /// `interleave[src] = dst`: raw response bit → code-domain bit.
    interleave: Vec<usize>,
    /// Inverse permutation: code-domain bit → raw response bit.
    deinterleave: Vec<usize>,
}

impl PufPipeline {
    /// Builds the pipeline for a response width (must be a power of two in
    /// `4..=32`; the paper uses 32 in simulation, 16 on FPGA).
    ///
    /// # Errors
    ///
    /// [`PufattError::UnsupportedWidth`] if no RM(1,m) code of that length
    /// exists or its helper data would not fit the 32-bit helper words.
    pub fn for_width(width: usize) -> Result<Self, PufattError> {
        let ok = width.is_power_of_two() && (4..=32).contains(&width);
        if !ok {
            return Err(PufattError::UnsupportedWidth { width });
        }
        let m = width.trailing_zeros();
        let interleave = interleaver(width);
        let mut deinterleave = vec![0usize; width];
        for (src, &dst) in interleave.iter().enumerate() {
            deinterleave[dst] = src;
        }
        Ok(PufPipeline {
            width,
            fe: ReverseFuzzyExtractor::new(ReedMuller1::new(m)),
            interleave,
            deinterleave,
        })
    }

    /// The paper's simulated configuration: 32-bit responses with
    /// BCH\[32,6,16\].
    #[allow(clippy::expect_used)]
    pub fn paper_32bit() -> Self {
        PufPipeline::for_width(32).expect("32 is a supported width") // analyze: allow(panic: 32 is in the supported set)
    }

    /// Response width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Helper bits per raw response (`n − k`; 26 for the paper's code).
    pub fn helper_bits(&self) -> usize {
        self.fe.decoder().code().syndrome_bits()
    }

    fn permute_word(map: &[usize], word: u64) -> u64 {
        let mut out = 0u64;
        for (src, &dst) in map.iter().enumerate() {
            out |= (word >> src & 1) << dst;
        }
        out
    }

    /// The raw response mapped into the code domain.
    fn to_code_domain(&self, r: RawResponse) -> BitVec {
        BitVec::from_word(Self::permute_word(&self.interleave, r.bits()), self.width)
    }

    /// Prover side: helper syndromes + obfuscated output from 8 noisy raw
    /// responses.
    ///
    /// # Panics
    ///
    /// Panics if a response width disagrees with the pipeline width.
    #[allow(clippy::expect_used)]
    pub fn prove(&self, raw: &[RawResponse; RESPONSES_PER_OUTPUT]) -> ProveOutput {
        let mut helpers = [0u32; RESPONSES_PER_OUTPUT];
        let mut ys = [0u64; RESPONSES_PER_OUTPUT];
        for (j, &r) in raw.iter().enumerate() {
            assert_eq!(r.width(), self.width, "response width mismatch");
            // analyze: allow(panic: width equality asserted one line up)
            let h: HelperData = self.fe.generate(&self.to_code_domain(r)).expect("width checked");
            helpers[j] = h.0.as_word() as u32;
            ys[j] = r.bits();
        }
        ProveOutput { z: obfuscate(&ys, self.width), helpers }
    }

    /// Verifier side: reconstructs the prover's raw responses from emulated
    /// references + helper data and recomputes `z`.
    ///
    /// # Errors
    ///
    /// [`PufattError::ReconstructionFailed`] when a helper syndrome cannot
    /// be decoded against its reference, and
    /// [`PufattError::OutOfTolerance`] when it decodes only by correcting
    /// more than `t` bit errors. The underlying maximum-likelihood decoder
    /// would happily hand back heavier patterns (a weight-9 error is
    /// usually still its coset's leader), but the paper's BCH decoder is
    /// bounded-distance and the security argument leans on that: the
    /// verifier must treat any correction beyond `t` as a failure, or
    /// excess noise and overclock-corrupted responses survive on lucky
    /// decodes.
    pub fn conclude(
        &self,
        references: &[RawResponse; RESPONSES_PER_OUTPUT],
        helpers: &[u32; RESPONSES_PER_OUTPUT],
    ) -> Result<u64, PufattError> {
        let bound = self.fe.decoder().guaranteed_correction();
        let mut ys = [0u64; RESPONSES_PER_OUTPUT];
        for (j, (&r, &h)) in references.iter().zip(helpers).enumerate() {
            assert_eq!(r.width(), self.width, "reference width mismatch");
            let helper = HelperData(BitVec::from_word(h as u64, self.helper_bits()));
            let rec = self
                .fe
                .reproduce(&self.to_code_domain(r), &helper)
                .map_err(|_| PufattError::ReconstructionFailed { index: j })?;
            if rec.corrected_errors > bound {
                return Err(PufattError::OutOfTolerance { index: j, corrected: rec.corrected_errors, bound });
            }
            ys[j] = Self::permute_word(&self.deinterleave, rec.response.as_word());
        }
        Ok(obfuscate(&ys, self.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn noisy_copy(r: RawResponse, flips: &[usize]) -> RawResponse {
        let mut bits = r.bits();
        for &f in flips {
            bits ^= 1 << f;
        }
        RawResponse::new(bits, r.width())
    }

    #[test]
    fn widths() {
        assert!(PufPipeline::for_width(32).is_ok());
        assert!(PufPipeline::for_width(16).is_ok());
        assert!(PufPipeline::for_width(4).is_ok());
        assert!(matches!(PufPipeline::for_width(12), Err(PufattError::UnsupportedWidth { width: 12 })));
        assert!(matches!(PufPipeline::for_width(64), Err(PufattError::UnsupportedWidth { width: 64 })));
        assert_eq!(PufPipeline::paper_32bit().helper_bits(), 26);
    }

    #[test]
    fn noise_free_round_trip() {
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let raw: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
        let out = p.prove(&raw);
        let z = p.conclude(&raw, &out.helpers).unwrap();
        assert_eq!(z, out.z);
    }

    #[test]
    fn survives_up_to_7_errors_per_response() {
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            // The *references* are the emulator's clean values; the device's
            // noisy responses carry up to 7 flips each.
            let refs: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let noisy: [RawResponse; 8] = std::array::from_fn(|j| {
                let k = rng.gen_range(0..=7);
                let mut flips: Vec<usize> = (0..32).collect();
                for i in 0..k {
                    let pick = rng.gen_range(i..32);
                    flips.swap(i, pick);
                }
                noisy_copy(refs[j], &flips[..k])
            });
            let out = p.prove(&noisy);
            let z = p.conclude(&refs, &out.helpers).unwrap();
            assert_eq!(z, out.z, "verifier must agree with device despite noise");
        }
    }

    #[test]
    fn wrong_device_is_rejected_as_out_of_tolerance() {
        // Structural observation (documented in DESIGN.md): ML decoding
        // against a wrong reference reconstructs a word in the *same coset*
        // as the prover's response, i.e. off by an RM(1,5) codeword — and
        // before the bounded-distance check, ~1/4 of single-z forgeries
        // slipped through the obfuscation fold. The t-bound closes that:
        // a wrong-device decode needs ≤ 7 corrections on *all 8* responses
        // (p ≈ 0.067⁸ ≈ 4·10⁻¹⁰), so impersonation now fails essentially
        // always, and fails *typed*.
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 400;
        let mut out_of_tolerance = 0;
        for _ in 0..trials {
            let device: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let imposter: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
            let out = p.prove(&device);
            match p.conclude(&imposter, &out.helpers) {
                Ok(z) => assert_ne!(z, out.z, "imposter must never land the right z"),
                Err(PufattError::OutOfTolerance { corrected, bound, .. }) => {
                    assert!(corrected > bound);
                    out_of_tolerance += 1;
                }
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert!(
            out_of_tolerance > trials * 9 / 10,
            "wrong-reference decodes should overwhelmingly exceed t: {out_of_tolerance}/{trials}"
        );
    }

    #[test]
    fn contiguous_bursts_beyond_t_are_always_rejected() {
        // The reason the interleaver exists. Without it a contiguous burst
        // of weight 9..=12 lies (for most start positions) entirely inside
        // the support of a weight-16 RM(1,5) codeword; ML decode then lands
        // on reference ⊕ codeword with 16 − w ≤ 7 "corrections", sails past
        // the bounded-distance check with the WRONG word, and the XOR
        // obfuscation fold can collapse the codeword difference so `z`
        // still matches — a silent accept of a corrupted response. The
        // pinned permutation scatters every such burst to distance ≥ 8 from
        // every codeword, so every combination below must fail typed.
        let p = PufPipeline::paper_32bit();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for weight in 8u32..=16 {
            for start in 0..32u32 {
                let burst: u64 = (0..weight).fold(0u64, |acc, k| acc | 1 << ((start + k) % 32));
                let device: [RawResponse; 8] = std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32));
                let refs: [RawResponse; 8] = std::array::from_fn(|j| RawResponse::new(device[j].bits() ^ burst, 32));
                let out = p.prove(&device);
                let err = p.conclude(&refs, &out.helpers);
                assert!(
                    matches!(
                        err,
                        Err(PufattError::ReconstructionFailed { .. }) | Err(PufattError::OutOfTolerance { .. })
                    ),
                    "weight-{weight} burst at bit {start} must be rejected, got {err:?}"
                );
            }
        }
    }

    #[test]
    fn interleaver_is_a_permutation_and_non_affine() {
        // Sanity on the fixed wiring: it must be a bijection, and it must
        // NOT be an affine map of the 5-bit index space — RM(1,5) is
        // invariant under affine index permutations, which would make the
        // interleaver a no-op against burst aliasing. An affine map sends
        // index 0 to some `b` and satisfies π(i) = A·i ⊕ b with A linear,
        // i.e. π(i ⊕ j) ⊕ b = (π(i) ⊕ b) ⊕ (π(j) ⊕ b) for all i, j.
        let perm = interleaver(32);
        let mut seen = [false; 32];
        for &d in &perm {
            assert!(!seen[d], "duplicate target bit {d}");
            seen[d] = true;
        }
        let b = perm[0];
        let linear_part: Vec<usize> = perm.iter().map(|&d| d ^ b).collect();
        let affine = (0..32usize).all(|i| (0..32usize).all(|j| linear_part[i ^ j] == linear_part[i] ^ linear_part[j]));
        assert!(!affine, "interleaver must not be affine over the index space");
    }

    #[test]
    fn helper_words_fit_26_bits() {
        let p = PufPipeline::paper_32bit();
        let raw: [RawResponse; 8] = std::array::from_fn(|j| RawResponse::new(0xFFFF_FFFF >> j, 32));
        let out = p.prove(&raw);
        assert!(out.helpers.iter().all(|&h| h < (1 << 26)));
    }

    #[test]
    fn sixteen_bit_fpga_pipeline() {
        let p = PufPipeline::for_width(16).unwrap();
        assert_eq!(p.helper_bits(), 11, "[16,5] code has 11 syndrome bits");
        let raw: [RawResponse; 8] = std::array::from_fn(|j| RawResponse::new(0x1234 ^ j as u64, 16));
        let out = p.prove(&raw);
        let z = p.conclude(&raw, &out.helpers).unwrap();
        assert_eq!(z, out.z);
        assert!(z <= 0xFFFF);
    }
}
