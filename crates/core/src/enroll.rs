//! Enrollment: manufacturing a device and provisioning its verifier.
//!
//! The paper describes two verification approaches (§2): a
//! challenge/response database recorded before deployment, and emulation
//! from the gate-level delay table read out through a trusted (later
//! fused-off) interface. PUFatt *needs* the emulation approach — the
//! checksum derives PUF challenges from its own running state, so they
//! cannot be known at enrollment time — but the CRP database is provided
//! for completeness and for the database-vs-emulation trade-off ablation.

use crate::error::PufattError;
use crate::ports::{DevicePuf, SharedDevicePuf, VerifierPuf};
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufChip, PufInstance};
use pufatt_alupuf::emulate::DelayTable;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One enrolled device: the shared design, the manufactured chip, and the
/// delay table extracted through the trusted enrollment interface.
#[derive(Debug, Clone)]
pub struct EnrolledDevice {
    design: Arc<AluPufDesign>,
    chip: Arc<PufChip>,
    table: DelayTable,
    env: Environment,
}

impl EnrolledDevice {
    /// The design (shared by all devices of the product line).
    pub fn design(&self) -> &Arc<AluPufDesign> {
        &self.design
    }

    /// The manufactured chip.
    pub fn chip(&self) -> &Arc<PufChip> {
        &self.chip
    }

    /// The enrollment operating point.
    pub fn env(&self) -> Environment {
        self.env
    }

    /// Builds the device-side PUF endpoint (prover).
    ///
    /// # Panics
    ///
    /// Panics only if the design width became unsupported, which
    /// enrollment already validated.
    #[allow(clippy::expect_used)]
    pub fn device_puf(&self, noise_seed: u64) -> DevicePuf {
        DevicePuf::new(self.design.clone(), self.chip.clone(), self.env, noise_seed)
            .expect("width validated at enrollment") // analyze: allow(panic: enroll() rejects unsupported widths)
    }

    /// Builds a shareable device handle (for wiring into a PE32 CPU).
    pub fn device_handle(&self, noise_seed: u64) -> SharedDevicePuf {
        SharedDevicePuf::new(self.device_puf(noise_seed))
    }

    /// Builds the verifier-side PUF from the enrolled delay table.
    ///
    /// # Errors
    ///
    /// Propagates [`PufattError::UnsupportedWidth`].
    pub fn verifier_puf(&self) -> Result<VerifierPuf, PufattError> {
        VerifierPuf::new(self.design.clone(), self.table.clone())
    }

    /// Records a challenge/response database of `count` random challenges —
    /// the paper's alternative verification approach.
    pub fn record_crp_database<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> CrpDatabase {
        let instance = PufInstance::new(&self.design, &self.chip, self.env);
        let mut entries = HashMap::with_capacity(count);
        let w = self.design.width();
        for _ in 0..count {
            let ch = Challenge::random(rng, w);
            // Enrollment averages a few evaluations to store the likeliest
            // response (standard practice to suppress metastable bits).
            let mut votes = [0u32; 64];
            const SAMPLES: u32 = 5;
            for _ in 0..SAMPLES {
                let r = instance.evaluate(ch, rng);
                for (b, v) in votes.iter_mut().enumerate().take(w) {
                    *v += r.bit(b) as u32;
                }
            }
            let mut bits = 0u64;
            for (b, &v) in votes.iter().enumerate().take(w) {
                if v * 2 > SAMPLES {
                    bits |= 1 << b;
                }
            }
            entries.insert(ch, RawResponse::new(bits, w));
        }
        CrpDatabase { entries, spent: HashSet::new(), width: w }
    }

    /// Parallel CRP recording: `count` challenges drawn deterministically
    /// from `challenge_seed`, majority-voted over 5 samples each via the
    /// batched evaluation path, fanned across `threads` workers.
    ///
    /// Unlike [`EnrolledDevice::record_crp_database`] (which threads one
    /// caller RNG through every draw), the batched variant is a pure
    /// function of `(challenge_seed, noise_seed, count)` and is
    /// bit-identical for any `threads` value.
    pub fn record_crp_database_batch(
        &self,
        count: usize,
        challenge_seed: u64,
        noise_seed: u64,
        threads: usize,
    ) -> CrpDatabase {
        let w = self.design.width();
        let mut rng = ChaCha8Rng::seed_from_u64(challenge_seed);
        let challenges: Vec<Challenge> = (0..count).map(|_| Challenge::random(&mut rng, w)).collect();
        let instance = PufInstance::new(&self.design, &self.chip, self.env);
        let responses = instance.evaluate_batch_voted(&challenges, 5, noise_seed, threads);
        let entries = challenges.into_iter().zip(responses).collect();
        CrpDatabase { entries, spent: HashSet::new(), width: w }
    }
}

/// Manufactures and enrolls one device of `config`'s product line.
///
/// `fab_seed` drives the process-variation draw (one seed = one chip);
/// `design` skew comes from the config's own design seed.
///
/// # Errors
///
/// [`PufattError::UnsupportedWidth`] if the width has no matching code.
pub fn enroll(config: AluPufConfig, fab_seed: u64, _enroll_nonce: u64) -> Result<EnrolledDevice, PufattError> {
    let width = config.width;
    if !(width.is_power_of_two() && (4..=32).contains(&width)) {
        return Err(PufattError::UnsupportedWidth { width });
    }
    let design = Arc::new(AluPufDesign::new(config));
    enroll_with_design(&design, fab_seed)
}

/// Manufactures and enrolls one more device of an already-instantiated
/// product line: the design (netlist, layout skew) is shared by reference,
/// only the silicon draw and delay-table extraction run per device. This
/// is the fast path fleet-scale campaigns use — instantiating the design
/// once instead of per device.
///
/// # Errors
///
/// [`PufattError::UnsupportedWidth`] if the design's width has no matching
/// code.
pub fn enroll_with_design(design: &Arc<AluPufDesign>, fab_seed: u64) -> Result<EnrolledDevice, PufattError> {
    let width = design.width();
    if !(width.is_power_of_two() && (4..=32).contains(&width)) {
        return Err(PufattError::UnsupportedWidth { width });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(fab_seed);
    let chip = Arc::new(design.fabricate(&ChipSampler::new(), &mut rng));
    let env = Environment::nominal();
    let table = DelayTable::extract(design, &chip, env);
    Ok(EnrolledDevice { design: design.clone(), chip, table, env })
}

/// Enrolls `count` devices of the same design (a "product line"), with
/// distinct chips.
///
/// # Errors
///
/// Propagates [`PufattError::UnsupportedWidth`].
pub fn enroll_fleet(config: AluPufConfig, base_seed: u64, count: usize) -> Result<Vec<EnrolledDevice>, PufattError> {
    let width = config.width;
    if !(width.is_power_of_two() && (4..=32).contains(&width)) {
        return Err(PufattError::UnsupportedWidth { width });
    }
    let design = Arc::new(AluPufDesign::new(config));
    (0..count)
        .map(|i| enroll_with_design(&design, base_seed.wrapping_add(i as u64)))
        .collect()
}

/// The database-of-CRPs verification approach (paper §2): finite,
/// replay-sensitive, usable only for challenges recorded at enrollment.
///
/// Consumed challenges are remembered, so a second [`CrpDatabase::consume`]
/// of the same challenge is a typed [`PufattError::ChallengeReused`] —
/// distinguishable from a challenge that was never enrolled. A durable
/// deployment persists the spent set (see the `pufatt-store` crate) and
/// re-marks it via [`CrpDatabase::mark_spent`] after a restart, so a crash
/// can lose an unused CRP but never re-issue a consumed one.
#[derive(Debug, Clone)]
pub struct CrpDatabase {
    entries: HashMap<Challenge, RawResponse>,
    spent: HashSet<Challenge>,
    width: usize,
}

impl CrpDatabase {
    /// Challenges remaining in the database.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is exhausted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Response width of the stored CRPs.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Looks up a reference response without consuming it (replays
    /// possible — the caller is responsible for freshness).
    pub fn peek(&self, challenge: Challenge) -> Option<RawResponse> {
        self.entries.get(&challenge).copied()
    }

    /// Consumes a CRP: each challenge authenticates at most once,
    /// preventing replay (the paper's stated discipline).
    ///
    /// # Errors
    ///
    /// [`PufattError::ChallengeReused`] if the challenge was already
    /// consumed (a replay — attack signal, never re-issued);
    /// [`PufattError::ChallengeUnknown`] if it was never enrolled.
    pub fn consume(&mut self, challenge: Challenge) -> Result<RawResponse, PufattError> {
        match self.entries.remove(&challenge) {
            Some(response) => {
                self.spent.insert(challenge);
                Ok(response)
            }
            None if self.spent.contains(&challenge) => Err(PufattError::ChallengeReused { challenge }),
            None => Err(PufattError::ChallengeUnknown { challenge }),
        }
    }

    /// Marks a challenge as spent without returning its response — how a
    /// durable spent set is re-applied after recovery. Returns whether the
    /// challenge was present (an absent one is still recorded as spent, so
    /// the refusal stays typed as a reuse).
    pub fn mark_spent(&mut self, challenge: Challenge) -> bool {
        let was_present = self.entries.remove(&challenge).is_some();
        self.spent.insert(challenge);
        was_present
    }

    /// Whether a challenge has been consumed (or marked spent).
    pub fn is_spent(&self, challenge: Challenge) -> bool {
        self.spent.contains(&challenge)
    }

    /// Challenges consumed or marked spent so far.
    pub fn spent_count(&self) -> usize {
        self.spent.len()
    }

    /// Iterates over the stored challenges (e.g. to drive an
    /// authentication session with known-enrolled challenges).
    pub fn challenges(&self) -> impl Iterator<Item = Challenge> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufatt_alupuf::device::{AdderKind, ArbiterConfig};

    fn small_config() -> AluPufConfig {
        AluPufConfig {
            width: 16,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 99,
        }
    }

    #[test]
    fn enroll_is_deterministic_per_seed() {
        let a = enroll(small_config(), 1, 0).unwrap();
        let b = enroll(small_config(), 1, 0).unwrap();
        assert_eq!(a.chip().silicon().vth(), b.chip().silicon().vth());
        let c = enroll(small_config(), 2, 0).unwrap();
        assert_ne!(a.chip().silicon().vth(), c.chip().silicon().vth());
    }

    #[test]
    fn fleet_devices_share_design_but_not_silicon() {
        let fleet = enroll_fleet(small_config(), 10, 3).unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0].design().design_skew_ps(), fleet[1].design().design_skew_ps());
        assert_ne!(fleet[0].chip().silicon().vth(), fleet[1].chip().silicon().vth());
    }

    #[test]
    fn unsupported_width_is_rejected() {
        let cfg = AluPufConfig {
            width: 24,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 1,
        };
        assert!(matches!(enroll(cfg, 1, 0), Err(PufattError::UnsupportedWidth { width: 24 })));
    }

    #[test]
    fn crp_database_consumption_prevents_replay() {
        let dev = enroll(small_config(), 3, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut db = dev.record_crp_database(20, &mut rng);
        assert_eq!(db.len(), 20);
        let ch = db.challenges().next().unwrap();
        assert!(db.peek(ch).is_some());
        assert!(db.consume(ch).is_ok());
        assert!(
            matches!(db.consume(ch), Err(PufattError::ChallengeReused { challenge }) if challenge == ch),
            "second use must be a typed replay refusal"
        );
        assert!(db.is_spent(ch));
        assert_eq!(db.spent_count(), 1);
        let stranger = Challenge { a: !ch.a, b: !ch.b };
        assert!(
            matches!(db.consume(stranger), Err(PufattError::ChallengeUnknown { .. })),
            "never-enrolled challenges are a distinct error"
        );
        assert_eq!(db.len(), 19);
    }

    #[test]
    fn mark_spent_blocks_reissue_after_recovery() {
        // Simulates the durable-store restart path: a fresh database built
        // from the same enrollment, with the persisted spent set re-applied.
        let dev = enroll(small_config(), 3, 0).unwrap();
        let db = dev.record_crp_database_batch(10, 5, 6, 1);
        let ch = {
            let mut first = db.clone();
            let picked = first.challenges().next().unwrap();
            first.consume(picked).unwrap();
            picked
        };
        let mut recovered = db;
        assert!(recovered.mark_spent(ch), "challenge was present before recovery");
        assert!(
            matches!(recovered.consume(ch), Err(PufattError::ChallengeReused { .. })),
            "a recovered spent set must refuse re-issue"
        );
    }

    #[test]
    fn batched_crp_database_is_thread_invariant_and_accurate() {
        let dev = enroll(small_config(), 5, 0).unwrap();
        let a = dev.record_crp_database_batch(24, 77, 88, 1);
        let b = dev.record_crp_database_batch(24, 77, 88, 4);
        assert_eq!(a.len(), 24);
        let mut keys: Vec<_> = a.challenges().collect();
        keys.sort_by_key(|c| (c.a, c.b));
        for ch in keys {
            assert_eq!(a.peek(ch), b.peek(ch), "thread count changed a stored CRP");
        }
        // And the stored majority votes track a live device.
        let instance = PufInstance::new(dev.design(), dev.chip(), dev.env());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total_hd = 0u32;
        for ch in a.challenges() {
            total_hd += instance.evaluate(ch, &mut rng).hamming_distance(a.peek(ch).unwrap());
        }
        let frac = total_hd as f64 / (24.0 * a.width() as f64);
        assert!(frac < 0.2, "live-vs-batched-database distance {frac}");
    }

    #[test]
    fn crp_database_matches_live_device() {
        let dev = enroll(small_config(), 4, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let db = dev.record_crp_database(30, &mut rng);
        let instance = PufInstance::new(dev.design(), dev.chip(), dev.env());
        let mut total_hd = 0u32;
        let mut n = 0u32;
        for ch in db.challenges() {
            let reference = db.peek(ch).unwrap();
            // A live evaluation must sit close to the enrolled majority vote.
            total_hd += instance.evaluate(ch, &mut rng).hamming_distance(reference);
            n += 1;
        }
        let frac = total_hd as f64 / (n as f64 * db.width() as f64);
        assert!(frac < 0.2, "live-vs-database distance {frac}");
    }
}
