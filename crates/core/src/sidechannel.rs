//! Power side-channel model of the obfuscation network (paper §4.1,
//! "Side-channel Attack Resiliency").
//!
//! The paper acknowledges that combining side-channel analysis with
//! machine learning can attack XOR-obfuscated PUFs (Mahmoud et al. \[18\])
//! and claims the standard countermeasure — making power consumption
//! independent of the processed data — deploys "with a small hardware
//! overhead". This module models both sides:
//!
//! * [`PowerModel::HammingWeight`] — the classic CMOS leakage: each
//!   register update leaks the Hamming weight of the latched value plus
//!   Gaussian measurement noise. The obfuscation network latches the raw
//!   responses `y₀..y₇` internally, so an attacker's trace contains
//!   `HW(yⱼ)` samples even though the architectural interface never
//!   exposes `yⱼ`.
//! * [`PowerModel::DualRail`] — the countermeasure: dual-rail/constant-
//!   weight encoding makes every update latch a fixed number of ones, so
//!   the trace carries only noise.
//!
//! [`leakage_correlation`] quantifies the attack surface as the Pearson
//! correlation between the true Hamming weights and the observed trace —
//! the statistic a correlation power analysis (CPA) attacker maximises.

use crate::obfuscate::RESPONSES_PER_OUTPUT;
use rand::Rng;

/// Leakage behaviour of the obfuscation network's internal registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerModel {
    /// Unprotected CMOS: sample = `HW(value) + N(0, noise²)`.
    HammingWeight {
        /// Measurement noise standard deviation, in HW units.
        noise_sigma: f64,
    },
    /// Dual-rail precharge logic: every update has constant weight
    /// (`width/2` rails toggle regardless of data); sample = constant +
    /// noise.
    DualRail {
        /// Measurement noise standard deviation, in HW units.
        noise_sigma: f64,
    },
}

impl PowerModel {
    /// One trace sample for a register update latching `value`.
    pub fn sample<R: Rng + ?Sized>(&self, value: u64, width: usize, rng: &mut R) -> f64 {
        match *self {
            PowerModel::HammingWeight { noise_sigma } => {
                (value & mask(width)).count_ones() as f64 + gaussian(rng) * noise_sigma
            }
            PowerModel::DualRail { noise_sigma } => width as f64 / 2.0 + gaussian(rng) * noise_sigma,
        }
    }

    /// The trace of one `PUF()` invocation: one sample per raw response
    /// latched into the obfuscation network.
    pub fn trace<R: Rng + ?Sized>(
        &self,
        raw_responses: &[u64; RESPONSES_PER_OUTPUT],
        width: usize,
        rng: &mut R,
    ) -> [f64; RESPONSES_PER_OUTPUT] {
        std::array::from_fn(|j| self.sample(raw_responses[j], width, rng))
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Pearson correlation between true Hamming weights and trace samples —
/// the CPA attacker's statistic. Near 1 means the trace reveals `HW(yⱼ)`;
/// near 0 means the countermeasure holds.
///
/// # Panics
///
/// Panics if the slices differ in length or fewer than two samples are
/// given.
pub fn leakage_correlation(true_hw: &[f64], trace: &[f64]) -> f64 {
    assert_eq!(true_hw.len(), trace.len(), "sample count mismatch");
    assert!(true_hw.len() >= 2, "need at least two samples");
    let n = true_hw.len() as f64;
    let mx = true_hw.iter().sum::<f64>() / n;
    let my = trace.iter().sum::<f64>() / n;
    let cov: f64 = true_hw.iter().zip(trace).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / n;
    let sx = (true_hw.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>() / n).sqrt();
    let sy = (trace.iter().map(|y| (y - my) * (y - my)).sum::<f64>() / n).sqrt();
    if sx == 0.0 || sy == 0.0 {
        0.0
    } else {
        cov / (sx * sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn collect(model: PowerModel, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut hw = Vec::with_capacity(n * 8);
        let mut trace = Vec::with_capacity(n * 8);
        for _ in 0..n {
            let ys: [u64; 8] = std::array::from_fn(|_| rng.gen::<u32>() as u64);
            let t = model.trace(&ys, 32, &mut rng);
            for j in 0..8 {
                hw.push(ys[j].count_ones() as f64);
                trace.push(t[j]);
            }
        }
        (hw, trace)
    }

    #[test]
    fn unprotected_network_leaks() {
        let (hw, trace) = collect(PowerModel::HammingWeight { noise_sigma: 1.0 }, 200, 1);
        let rho = leakage_correlation(&hw, &trace);
        assert!(rho > 0.8, "HW leakage must correlate strongly: {rho}");
    }

    #[test]
    fn dual_rail_kills_the_leakage() {
        let (hw, trace) = collect(PowerModel::DualRail { noise_sigma: 1.0 }, 200, 2);
        let rho = leakage_correlation(&hw, &trace);
        assert!(rho.abs() < 0.1, "dual-rail trace must be uncorrelated: {rho}");
    }

    #[test]
    fn noise_degrades_but_does_not_remove_leakage() {
        let (hw_low, trace_low) = collect(PowerModel::HammingWeight { noise_sigma: 0.5 }, 300, 3);
        let (hw_high, trace_high) = collect(PowerModel::HammingWeight { noise_sigma: 6.0 }, 300, 4);
        let low = leakage_correlation(&hw_low, &trace_low);
        let high = leakage_correlation(&hw_high, &trace_high);
        assert!(low > high, "more noise, less correlation: {low} vs {high}");
        assert!(high > 0.1, "noise alone is not a countermeasure: {high}");
    }

    #[test]
    fn sample_respects_width_mask() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = PowerModel::HammingWeight { noise_sigma: 0.0 };
        // Bits above the width must not leak.
        let s = model.sample(0xFFFF_0003, 16, &mut rng);
        assert!((s - 2.0).abs() < 1e-9, "only the low 16 bits count: {s}");
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        assert_eq!(leakage_correlation(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
