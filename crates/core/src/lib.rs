//! PUFatt: embedded platform attestation based on processor-based PUFs
//! (Kong, Koushanfar, Pendyala, Sadeghi, Wachsmann — DAC 2014).
//!
//! This crate assembles the paper's contribution from the substrate crates:
//!
//! * [`obfuscate`] — the two-phase XOR obfuscation network.
//! * [`pipeline`] — `PUF()`: raw ALU PUF → reverse fuzzy extractor
//!   (BCH\[32,6,16\] syndrome helper data) → obfuscation, for both the
//!   device and the verifier side.
//! * [`ports`] — the concrete PUF endpoints and their adapters onto the
//!   PE32 CPU port and the checksum's PUF hook.
//! * [`enroll`](mod@crate::enroll) — manufacturing, delay-table extraction, CRP databases.
//! * [`protocol`] — the Fig. 2 remote-attestation protocol with a channel
//!   model and time-bound (δ) enforcement.
//! * [`adversary`] — the attacks of the security analysis: memory-copy
//!   malware hiding, overclock evasion, proxy/oracle outsourcing,
//!   impersonation.
//! * [`sidechannel`] — power-leakage model of the obfuscation network and
//!   the dual-rail countermeasure (§4.1's side-channel discussion).
//! * [`server`] — fleet management: per-device verifiers, session logs,
//!   revocation.
//! * [`slender`] — Slender-PUF-style substring authentication over the
//!   same enrolled hardware (the paper's reference \[22\]).
//!
//! # Quickstart
//!
//! ```
//! use pufatt::enroll::enroll;
//! use pufatt::protocol::{provision, run_session, AttestationRequest, Channel};
//! use pufatt_alupuf::device::AluPufConfig;
//! use pufatt_pe32::cpu::Clock;
//! use pufatt_swatt::checksum::SwattParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Factory: manufacture a device, extract its delay table.
//! let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0)?;
//!
//! // Provision the attestation program and calibrate the time bound.
//! let params = SwattParams { region_bits: 9, rounds: 512, puf_interval: 16 };
//! let (mut prover, verifier, _) =
//!     provision(&enrolled, params, Clock::new(100.0), Channel::sensor_link(), 7, 1.10)?;
//!
//! // In the field: one attestation session.
//! let request = AttestationRequest { x0: 0xAABB, r0: 0xCCDD };
//! let (verdict, _report) = run_session(&mut prover, &verifier, request)?;
//! assert!(verdict.accepted);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Lib-target panics are linted (see [lints.clippy] in Cargo.toml);
// tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adversary;
pub mod enroll;
pub mod error;
pub mod obfuscate;
pub mod pipeline;
pub mod ports;
pub mod protocol;
pub mod ring;
pub mod server;
pub mod sidechannel;
pub mod slender;

pub use adversary::AttackOutcome;
pub use enroll::{enroll, enroll_fleet, CrpDatabase, EnrolledDevice};
pub use error::PufattError;
pub use pipeline::{ProveOutput, PufPipeline};
pub use ports::{DevicePuf, ResponseFault, SharedDevicePuf, VerifierPuf, VerifierRoundPuf};
pub use protocol::{
    authenticate_with_database, provision, puf_limited_clock, run_session, run_session_with_retry, AttestationReport,
    AttestationRequest, Channel, MidTraversalTamper, ProverDevice, Verdict, Verifier,
};
pub use ring::RingBuffer;
pub use server::{AttestationServer, DeviceStatus, SessionRecord};
