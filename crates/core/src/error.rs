//! Error types of the PUFatt core.

use std::fmt;

/// Errors of the PUF post-processing pipeline and the attestation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PufattError {
    /// The response width has no matching error-correcting code
    /// (supported: powers of two from 4 to 32 bits).
    UnsupportedWidth {
        /// The offending width.
        width: usize,
    },
    /// The verifier could not reconstruct a raw response from its helper
    /// data (too many bit errors — a false negative).
    ReconstructionFailed {
        /// Index of the raw response within its group of 8.
        index: usize,
    },
    /// The helper-data stream ended before all PUF queries were replayed.
    HelperStreamExhausted,
    /// The prover's CPU trapped during attestation.
    ProverTrap(pufatt_pe32::cpu::Trap),
    /// The generated attestation program failed to assemble (internal).
    Codegen(String),
}

impl fmt::Display for PufattError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufattError::UnsupportedWidth { width } => {
                write!(f, "no error-correcting code for response width {width} (supported: 4, 8, 16, 32)")
            }
            PufattError::ReconstructionFailed { index } => {
                write!(f, "helper data could not reconstruct raw response {index}")
            }
            PufattError::HelperStreamExhausted => write!(f, "helper-data stream exhausted"),
            PufattError::ProverTrap(t) => write!(f, "prover trapped: {t}"),
            PufattError::Codegen(m) => write!(f, "attestation codegen failed: {m}"),
        }
    }
}

impl std::error::Error for PufattError {}

impl From<pufatt_pe32::cpu::Trap> for PufattError {
    fn from(t: pufatt_pe32::cpu::Trap) -> Self {
        PufattError::ProverTrap(t)
    }
}
