//! Error types of the PUFatt core.

use pufatt_alupuf::challenge::Challenge;
use std::fmt;

/// Errors of the PUF post-processing pipeline and the attestation protocol.
///
/// (`Eq` is deliberately absent: the timeout variant carries the measured
/// elapsed time as an `f64`.)
#[derive(Debug, Clone, PartialEq)]
pub enum PufattError {
    /// The response width has no matching error-correcting code
    /// (supported: powers of two from 4 to 32 bits).
    UnsupportedWidth {
        /// The offending width.
        width: usize,
    },
    /// The verifier could not reconstruct a raw response from its helper
    /// data (too many bit errors — a false negative).
    ReconstructionFailed {
        /// Index of the raw response within its group of 8.
        index: usize,
    },
    /// A reconstruction decoded, but only by correcting more bit errors
    /// than the code guarantees (`t`). The paper's BCH decoder is
    /// bounded-distance — anything beyond `t` is a decoding failure — and
    /// the verifier enforces the same bound: a response this noisy is
    /// out of tolerance (excess noise, overclocking, or an imposter), never
    /// silently accepted on a lucky decode.
    OutOfTolerance {
        /// Index of the raw response within its group of 8.
        index: usize,
        /// Bit errors the decoder had to correct.
        corrected: usize,
        /// The code's guaranteed correction radius `t`.
        bound: usize,
    },
    /// The helper-data stream ended before all PUF queries were replayed.
    HelperStreamExhausted,
    /// The prover's CPU trapped during attestation.
    ProverTrap(pufatt_pe32::cpu::Trap),
    /// The generated attestation program failed to assemble (internal).
    Codegen(String),
    /// The session's end-to-end time exceeded the verifier's deadline
    /// before a valid report arrived (a first-class outcome under lossy
    /// channels — not a panic, not a silent reject).
    Timeout {
        /// Simulated seconds the session had consumed when it was cut off.
        elapsed_s: f64,
        /// The enforced deadline in seconds.
        deadline_s: f64,
    },
    /// Every attempt of a session lost a protocol message in transit; the
    /// retry budget ran out without the verifier ever seeing a report.
    ChannelLost {
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// A wire message failed structural validation when parsed.
    Malformed(String),
    /// A CRP-database challenge was presented again after being consumed.
    /// Each challenge authenticates at most once (the paper's replay
    /// discipline); a reuse is an attack signal or a state-management bug,
    /// never re-issued. Carries the (public) challenge for diagnostics —
    /// challenges travel the wire in the clear, responses never appear in
    /// errors.
    ChallengeReused {
        /// The challenge that was already consumed.
        challenge: Challenge,
    },
    /// A challenge was never enrolled in this CRP database — distinct from
    /// [`PufattError::ChallengeReused`] so a caller cannot misread a
    /// replay as a typo.
    ChallengeUnknown {
        /// The unrecognised challenge.
        challenge: Challenge,
    },
    /// The durable state layer failed (I/O error, corrupted store). The
    /// payload is the storage layer's own rendering; it never contains
    /// response material.
    Storage(String),
    /// One storage shard is sick (Degraded or Failed) and the requested
    /// device's durable state lives on it: the request is refused up
    /// front rather than risking an accepted-but-undurable verdict.
    /// Devices on healthy shards are unaffected; an operator reopen of
    /// the shard restores service. Distinct from
    /// [`PufattError::Storage`], which names a failure that already
    /// happened rather than a typed, per-shard refusal.
    StorageUnavailable {
        /// Index of the sick store shard.
        shard: u32,
    },
    /// The network transport failed at the service level (version
    /// mismatch, protocol violation, server-side refusal) — distinct from
    /// [`PufattError::Timeout`]/[`PufattError::ChannelLost`], which name
    /// link-level losses the retry machine handles, and from
    /// [`PufattError::Malformed`], which names undecodable bytes. The
    /// payload is the transport layer's own rendering; it never contains
    /// response material.
    Transport(String),
}

impl fmt::Display for PufattError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufattError::UnsupportedWidth { width } => {
                write!(f, "no error-correcting code for response width {width} (supported: 4, 8, 16, 32)")
            }
            PufattError::ReconstructionFailed { index } => {
                write!(f, "helper data could not reconstruct raw response {index}")
            }
            PufattError::OutOfTolerance { index, corrected, bound } => {
                write!(f, "raw response {index} needed {corrected} corrections, beyond the code's t = {bound}")
            }
            PufattError::HelperStreamExhausted => write!(f, "helper-data stream exhausted"),
            PufattError::ProverTrap(t) => write!(f, "prover trapped: {t}"),
            PufattError::Codegen(m) => write!(f, "attestation codegen failed: {m}"),
            PufattError::Timeout { elapsed_s, deadline_s } => {
                write!(
                    f,
                    "session deadline exceeded: {:.3} ms elapsed vs {:.3} ms allowed",
                    elapsed_s * 1e3,
                    deadline_s * 1e3
                )
            }
            PufattError::ChannelLost { attempts } => {
                write!(f, "channel lost every message across {attempts} attempts")
            }
            PufattError::Malformed(m) => write!(f, "malformed wire message: {m}"),
            PufattError::ChallengeReused { challenge } => {
                write!(
                    f,
                    "challenge (a={:#x}, b={:#x}) was already consumed — replay refused",
                    challenge.a, challenge.b
                )
            }
            PufattError::ChallengeUnknown { challenge } => {
                write!(f, "challenge (a={:#x}, b={:#x}) is not enrolled in this database", challenge.a, challenge.b)
            }
            PufattError::Storage(m) => write!(f, "durable state layer failed: {m}"),
            PufattError::StorageUnavailable { shard } => {
                write!(f, "storage shard {shard} unavailable (degraded or failed); healthy shards keep attesting — reopen the shard to recover")
            }
            PufattError::Transport(m) => write!(f, "transport failed: {m}"),
        }
    }
}

impl std::error::Error for PufattError {}

impl From<pufatt_pe32::cpu::Trap> for PufattError {
    fn from(t: pufatt_pe32::cpu::Trap) -> Self {
        PufattError::ProverTrap(t)
    }
}
