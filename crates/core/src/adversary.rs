//! The paper's adversaries (§3 trust model, §4.2 security analysis), as
//! runnable attacks against a provisioned prover/verifier pair.
//!
//! * [`memory_copy_attack`] — malware hides by redirecting checksum reads
//!   to a pristine copy of the expected memory. The response forges
//!   correctly; the per-round overhead breaks the time bound δ.
//! * [`overclock_evasion_attack`] — the same adversary overclocks the CPU
//!   to claw the overhead back. The time bound passes, but the ALU PUF
//!   shares the clock network: setup-time violations corrupt `z` and the
//!   response check fails (the paper's headline defence).
//! * [`proxy_attack`] — the checksum is outsourced to a fast machine that
//!   queries the prover's PUF as an oracle over the constrained external
//!   channel; the per-query round trips exceed δ.
//! * Impersonation — a different chip of the same design running the
//!   honest code; its helper data does not verify against the enrolled
//!   delay table (exercised directly in the protocol tests and the
//!   `protocol_security` bench, since it needs no dedicated adversary
//!   code).

use crate::error::PufattError;
use crate::ports::SharedDevicePuf;
use crate::protocol::{run_session, AttestationReport, AttestationRequest, Channel, ProverDevice, Verdict, Verifier};
use pufatt_pe32::cpu::Clock;
use pufatt_swatt::checksum::SwattParams;
use pufatt_swatt::codegen::{CodegenOptions, Redirection};
use std::fmt;

/// Outcome of an attack attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Name of the attack.
    pub attack: &'static str,
    /// The verifier's verdict.
    pub verdict: Verdict,
    /// Free-form note on what gave the attack away (empty if it succeeded).
    pub detected_by: &'static str,
}

impl AttackOutcome {
    fn conclude(attack: &'static str, verdict: Verdict) -> Self {
        let detected_by = match (verdict.accepted, verdict.response_ok, verdict.time_ok) {
            (true, _, _) => "",
            (false, false, false) => "response mismatch and time bound",
            (false, false, true) => "response mismatch",
            (false, true, false) => "time bound",
            (false, true, true) => unreachable!("rejected verdicts fail at least one check"),
        };
        AttackOutcome { attack, verdict, detected_by }
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.verdict.accepted {
            write!(f, "{}: NOT DETECTED ({})", self.attack, self.verdict)
        } else {
            write!(f, "{}: detected by {} ({})", self.attack, self.detected_by, self.verdict)
        }
    }
}

/// Builds the adversary's device: the attested region is overwritten with
/// the redirecting checksum + malware, and a pristine copy of the expected
/// memory is stashed in scratch.
///
/// `overclock` scales the CPU clock (1.0 = honest F_base); the PUF is
/// *always* coupled to the resulting cycle time, because it shares the
/// clock network.
///
/// # Errors
///
/// Propagates provisioning failures.
pub fn build_malicious_prover(
    puf: SharedDevicePuf,
    params: SwattParams,
    expected_region: &[u32],
    base_clock: Clock,
    overclock: f64,
) -> Result<ProverDevice, PufattError> {
    let region_words = expected_region.len() as u32;
    // The copy region must clear the honest layout's scratch; place it one
    // full region above the region end.
    let copy_base = region_words * 4;
    // Redirect everything except the two challenge cells at the top of the
    // region: their values change per request and are public, so the
    // adversary reads them live (a copy would go stale).
    let redirect = Redirection { malware_start: 0, malware_end: region_words - 2, copy_base };
    let mut prover = ProverDevice::new(puf, params, &CodegenOptions { redirect: Some(redirect) }, base_clock)?;
    for (offset, &word) in expected_region[..region_words as usize - 2].iter().enumerate() {
        prover.memory_mut()[copy_base as usize + offset] = word;
    }
    // Plant some malware in a gap of the attested region (below the
    // challenge cells).
    let malware_at = region_words as usize - 18;
    for (i, slot) in prover.memory_mut()[malware_at..malware_at + 8].iter_mut().enumerate() {
        *slot = 0xEB1B_0000 | i as u32;
    }
    let clock = Clock::new(base_clock.frequency_mhz * overclock);
    prover.set_clock(clock, true);
    Ok(prover)
}

/// The memory-copy attack at the honest clock: forged response, broken
/// timing.
///
/// # Errors
///
/// Propagates prover traps.
pub fn memory_copy_attack(
    puf: SharedDevicePuf,
    verifier: &Verifier,
    expected_region: &[u32],
    request: AttestationRequest,
) -> Result<AttackOutcome, PufattError> {
    let mut prover =
        build_malicious_prover(puf, verifier_params(verifier), expected_region, verifier.expected_clock, 1.0)?;
    let (verdict, _) = run_session(&mut prover, verifier, request)?;
    Ok(AttackOutcome::conclude("memory-copy (F_base)", verdict))
}

/// The memory-copy attack with overclocking chosen to mask the overhead.
///
/// # Errors
///
/// Propagates prover traps.
pub fn overclock_evasion_attack(
    puf: SharedDevicePuf,
    verifier: &Verifier,
    expected_region: &[u32],
    request: AttestationRequest,
    overclock: f64,
) -> Result<AttackOutcome, PufattError> {
    let mut prover =
        build_malicious_prover(puf, verifier_params(verifier), expected_region, verifier.expected_clock, overclock)?;
    let (verdict, _) = run_session(&mut prover, verifier, request)?;
    Ok(AttackOutcome::conclude("memory-copy + overclock", verdict))
}

/// The proxy (oracle) attack: a powerful remote machine computes the
/// checksum instantly but must fetch every `z` from the prover's PUF over
/// the external channel (`ext`). Returns the verdict the verifier would
/// reach from pure timing — the response itself would be correct.
pub fn proxy_attack(verifier: &Verifier, honest_report: &AttestationReport, ext: Channel) -> AttackOutcome {
    let queries = (honest_report.helper_words.len() / 8) as u64;
    // Per oracle query: ship 8 challenge pairs out (8 × 64 bits) and the
    // obfuscated z + helper words back (32 + 8 × 32 bits).
    let per_query_s = ext.transfer_s(8 * 64) + ext.transfer_s(32 + 8 * 32);
    // The remote machine's own compute time is assumed zero (most
    // favourable to the adversary).
    let compute_s = queries as f64 * per_query_s;
    let verdict = verifier.verify(AttestationRequest { x0: 0, r0: 0 }, honest_report, compute_s);
    // Response correctness: by construction the adversary relays the honest
    // values, so only timing matters; patch the response flag accordingly.
    let verdict = Verdict { response_ok: true, accepted: verdict.time_ok, ..verdict };
    AttackOutcome::conclude("proxy/oracle", verdict)
}

fn verifier_params(v: &Verifier) -> SwattParams {
    // The adversary knows the protocol parameters (Kerckhoffs).
    v.params()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll::enroll;
    use crate::protocol::provision;
    use pufatt_alupuf::device::AluPufConfig;

    fn setup() -> (ProverDevice, Verifier, SharedDevicePuf, Vec<u32>) {
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let params = SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 };
        let clock = crate::protocol::puf_limited_clock(&enrolled, 1.10, 128, 99);
        let (prover, verifier, _) = provision(&enrolled, params, clock, Channel::sensor_link(), 7, 1.10).unwrap();
        let region = prover.expected_region();
        let puf = enrolled.device_handle(13);
        (prover, verifier, puf, region)
    }

    #[test]
    fn memory_copy_attack_caught_by_timing() {
        let (_, verifier, puf, region) = setup();
        let out = memory_copy_attack(puf, &verifier, &region, AttestationRequest { x0: 3, r0: 4 }).unwrap();
        assert!(!out.verdict.accepted, "{out}");
        assert!(out.verdict.response_ok, "the forgery itself must succeed: {out}");
        assert!(!out.verdict.time_ok, "timing must catch it: {out}");
    }

    #[test]
    fn overclock_evasion_caught_by_puf() {
        let (_, verifier, puf, region) = setup();
        // Overclock far enough to beat the time bound (and, because the
        // PUF shares the clock, deep into setup violation).
        let out = overclock_evasion_attack(puf, &verifier, &region, AttestationRequest { x0: 3, r0: 4 }, 4.0).unwrap();
        assert!(!out.verdict.accepted, "{out}");
        assert!(out.verdict.time_ok, "overclocking must beat the clock: {out}");
        assert!(!out.verdict.response_ok, "the PUF must corrupt: {out}");
    }

    #[test]
    fn proxy_attack_caught_by_timing() {
        let (mut prover, verifier, _, _) = setup();
        let report = prover.attest(AttestationRequest { x0: 1, r0: 2 }).unwrap();
        let out = proxy_attack(&verifier, &report, Channel::sensor_link());
        assert!(!out.verdict.accepted, "{out}");
        assert!(!out.verdict.time_ok, "{out}");
    }

    #[test]
    fn proxy_attack_would_succeed_on_a_fast_enough_channel() {
        // Sanity check of the model: with an absurdly fast external channel
        // the oracle attack fits the bound — the defence *is* the bandwidth
        // assumption, as the paper states.
        let (mut prover, verifier, _, _) = setup();
        let report = prover.attest(AttestationRequest { x0: 1, r0: 2 }).unwrap();
        let fast = Channel { bandwidth_bps: 1e12, latency_s: 1e-9 };
        let out = proxy_attack(&verifier, &report, fast);
        assert!(out.verdict.accepted, "{out}");
    }
}
