//! Silicon aging: threshold-voltage drift over the device lifetime.
//!
//! PUFs drift as transistors age — NBTI/PBTI raise the threshold voltage
//! of stressed devices, shifting gate delays and eventually flipping
//! marginal arbiters. The paper's related work (Kong & Koushanfar, TETC
//! 2013) even *exploits* directed aging to tune responses; for attestation
//! the concern is the opposite: enrolled delay tables go stale.
//!
//! The model follows the standard NBTI power law
//! `ΔV_th(t) = A · (t / t₀)^n` with `n ≈ 0.16`, applied per gate with an
//! activity-dependent stress factor (gates toggling less sit in a stressed
//! state longer). It answers two reproduction-relevant questions:
//!
//! * how fast does the intra-chip HD against the *enrollment-time*
//!   emulator grow (when does the FNR budget run out), and
//! * does re-enrollment (refreshing the delay table) restore it.

use crate::device::{AluPufDesign, PufChip};
use pufatt_silicon::variation::Chip;
use rand::Rng;

/// NBTI aging parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Drift amplitude in volts at the reference time (typical 45 nm NBTI
    /// after one year at nominal stress: 20–30 mV).
    pub amplitude_v: f64,
    /// Power-law exponent (NBTI: ≈ 0.16).
    pub exponent: f64,
    /// Reference time in hours for `amplitude_v` (one year).
    pub reference_hours: f64,
    /// Spread of the per-gate stress factor (0 = uniform stress; larger
    /// values model activity imbalance between gates).
    pub stress_spread: f64,
}

impl AgingModel {
    /// Representative 45 nm NBTI parameters.
    pub fn nbti_45nm() -> Self {
        AgingModel {
            amplitude_v: 0.025,
            exponent: 0.16,
            reference_hours: 8760.0,
            stress_spread: 0.3,
        }
    }

    /// Mean threshold-voltage drift after `hours` of operation.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative.
    pub fn mean_drift_v(&self, hours: f64) -> f64 {
        assert!(hours >= 0.0, "time must be non-negative");
        if hours == 0.0 {
            return 0.0;
        }
        self.amplitude_v * (hours / self.reference_hours).powf(self.exponent)
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel::nbti_45nm()
    }
}

/// Ages a manufactured chip by `hours`, returning the aged chip.
///
/// Every gate's V_th rises by the model's mean drift scaled by a per-gate
/// stress factor drawn from `rng` (lognormal-ish via `exp(N(0,σ))`,
/// normalised to mean 1). The arbiter offsets are carried over unchanged —
/// arbiters age too, but their contribution is inside the V_th drift of
/// their input gates in this model.
pub fn age_chip<R: Rng + ?Sized>(
    design: &AluPufDesign,
    chip: &PufChip,
    model: &AgingModel,
    hours: f64,
    rng: &mut R,
) -> PufChip {
    let drift = model.mean_drift_v(hours);
    let technology = chip.silicon().technology().clone();
    let spread = model.stress_spread;
    // Normalise E[exp(N(0, σ²))] = exp(σ²/2) away so the mean drift is
    // exactly `drift`.
    let norm = (spread * spread / 2.0).exp();
    let vth: Vec<f64> = chip
        .silicon()
        .vth()
        .iter()
        .map(|&v| {
            let stress = (gaussian(rng) * spread).exp() / norm;
            v + drift * stress
        })
        .collect();
    let aged = Chip::from_vth(vth, technology);
    PufChip::with_parts(aged, chip.arbiter_offset_ps().to_vec(), design.width())
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::Challenge;
    use crate::device::{AluPufConfig, AluPufDesign, PufInstance};
    use crate::emulate::PufEmulator;
    use pufatt_silicon::env::Environment;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (AluPufDesign, PufChip) {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        (design, chip)
    }

    #[test]
    fn drift_follows_power_law() {
        let m = AgingModel::nbti_45nm();
        assert_eq!(m.mean_drift_v(0.0), 0.0);
        assert!((m.mean_drift_v(m.reference_hours) - m.amplitude_v).abs() < 1e-12);
        // Power law: doubling time multiplies drift by 2^n.
        let ratio = m.mean_drift_v(2.0 * m.reference_hours) / m.mean_drift_v(m.reference_hours);
        assert!((ratio - 2f64.powf(m.exponent)).abs() < 1e-9);
    }

    #[test]
    fn aging_raises_every_vth() {
        let (design, chip) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let aged = age_chip(&design, &chip, &AgingModel::nbti_45nm(), 8760.0, &mut rng);
        for (new, old) in aged.silicon().vth().iter().zip(chip.silicon().vth()) {
            assert!(new > old, "aging must raise V_th");
        }
    }

    #[test]
    fn aged_responses_drift_from_enrollment() {
        // The enrollment-time emulator slowly loses track of the aging
        // device; drift grows with time but stays moderate over one year
        // (the symmetric layout cancels the common-mode shift).
        let (design, chip) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let model = AgingModel::nbti_45nm();

        let mut distances = Vec::new();
        for hours in [0.0, 8760.0, 10.0 * 8760.0] {
            let aged = age_chip(&design, &chip, &model, hours, &mut rng);
            let instance = PufInstance::new(&design, &aged, Environment::nominal());
            let mut hd = 0u32;
            let n = 60;
            for _ in 0..n {
                let ch = Challenge::random(&mut rng, 32);
                hd += instance.evaluate_voted(ch, 5, &mut rng).hamming_distance(emulator.emulate(ch));
            }
            distances.push(hd as f64 / (n as f64 * 32.0));
        }
        assert!(distances[1] >= distances[0], "drift must not shrink with age: {distances:?}");
        assert!(distances[2] >= distances[1], "drift must grow over a decade: {distances:?}");
        assert!(distances[2] < 0.5, "aged device must remain recognisable: {distances:?}");
    }

    #[test]
    fn re_enrollment_restores_agreement() {
        let (design, chip) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let aged = age_chip(&design, &chip, &AgingModel::nbti_45nm(), 5.0 * 8760.0, &mut rng);
        let stale = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let fresh = PufEmulator::enroll(&design, &aged, Environment::nominal());
        let instance = PufInstance::new(&design, &aged, Environment::nominal());
        let mut stale_hd = 0u32;
        let mut fresh_hd = 0u32;
        let n = 60;
        for _ in 0..n {
            let ch = Challenge::random(&mut rng, 32);
            let live = instance.evaluate_voted(ch, 5, &mut rng);
            stale_hd += live.hamming_distance(stale.emulate(ch));
            fresh_hd += live.hamming_distance(fresh.emulate(ch));
        }
        assert!(fresh_hd <= stale_hd, "re-enrollment must not hurt: fresh {fresh_hd} vs stale {stale_hd}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        AgingModel::nbti_45nm().mean_drift_v(-1.0);
    }
}
