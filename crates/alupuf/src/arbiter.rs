//! Classic delay-PUF baselines: the arbiter PUF and the feed-forward
//! arbiter PUF.
//!
//! The paper positions the ALU PUF against these (Fig. 1 "Similar to the
//! Arbiter PUF…"; §4.1 quotes the feed-forward arbiter's 38 % inter-chip
//! and 9.8 % intra-chip HD from Maes & Verbauwhede \[17\]). This module
//! implements both in the standard *additive linear delay model* of the
//! PUF literature: each switch stage contributes a delay difference
//! `±δᵢ` depending on its select bit, and the arbiter signs the total.
//! That model is exact for the switch-chain structure and is precisely the
//! form the Rührmair modeling attack exploits through the parity feature
//! map ([`parity_features`]).
//!
//! The `arbiter_comparison` bench reproduces the paper's quoted comparison
//! numbers and shows what the ALU PUF buys (hardware reuse) and costs
//! (bias) relative to the classic designs.

use rand::Rng;

/// One manufactured arbiter PUF: per-stage delay differences.
///
/// Stage `i` adds `delta[i]` when the challenge bit is 0 and `−delta[i]`
/// when it is 1 (the switch crosses the racing pair). The response is
/// `1` if the accumulated difference (plus arbiter noise) is negative.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterPuf {
    delta_ps: Vec<f64>,
    noise_sigma_ps: f64,
}

impl ArbiterPuf {
    /// Samples a chip: per-stage deltas from `N(0, stage_sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or exceeds 128.
    pub fn sample<R: Rng + ?Sized>(stages: usize, stage_sigma_ps: f64, noise_sigma_ps: f64, rng: &mut R) -> Self {
        assert!((1..=128).contains(&stages), "stages {stages} out of range");
        ArbiterPuf {
            delta_ps: (0..stages).map(|_| gaussian(rng) * stage_sigma_ps).collect(),
            noise_sigma_ps,
        }
    }

    /// Number of switch stages (challenge bits).
    pub fn stages(&self) -> usize {
        self.delta_ps.len()
    }

    /// The accumulated delay difference for a challenge (no noise) — what
    /// the additive model calls `Δ(c)`.
    pub fn delay_difference_ps(&self, challenge: u128) -> f64 {
        // A switch in crossed state (bit = 1) swaps the racing lines, which
        // *negates the sign of every later stage's contribution*. The
        // standard closed form: Δ = Σ δᵢ · (−1)^(c_i ⊕ c_{i+1} ⊕ … ⊕ c_{n−1}).
        let n = self.stages();
        let mut suffix_parity = false;
        let mut delta = 0.0;
        for i in (0..n).rev() {
            if (challenge >> i) & 1 == 1 {
                suffix_parity = !suffix_parity;
            }
            delta += if suffix_parity { -self.delta_ps[i] } else { self.delta_ps[i] };
        }
        delta
    }

    /// Evaluates one challenge (noisy).
    pub fn evaluate<R: Rng + ?Sized>(&self, challenge: u128, rng: &mut R) -> bool {
        self.delay_difference_ps(challenge) + gaussian(rng) * self.noise_sigma_ps < 0.0
    }

    /// The noise-free (maximum-likelihood) response.
    pub fn evaluate_ml(&self, challenge: u128) -> bool {
        self.delay_difference_ps(challenge) < 0.0
    }
}

/// A feed-forward arbiter PUF: intermediate arbiters tap the race part-way
/// and drive later stage selects, making the response a non-linear
/// function of the challenge (the classic anti-modeling hardening, at a
/// known reliability cost — the intermediate arbiters add noisy decision
/// points).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedForwardArbiterPuf {
    base: ArbiterPuf,
    /// `(tap_stage, driven_stage)` pairs: the sign of the race at
    /// `tap_stage` replaces the challenge bit of `driven_stage`.
    loops: Vec<(usize, usize)>,
}

impl FeedForwardArbiterPuf {
    /// Samples a chip with `loops` feed-forward taps spread evenly.
    ///
    /// # Panics
    ///
    /// Panics if parameters are inconsistent (see [`ArbiterPuf::sample`])
    /// or too many loops are requested for the stage count.
    pub fn sample<R: Rng + ?Sized>(
        stages: usize,
        loops: usize,
        stage_sigma_ps: f64,
        noise_sigma_ps: f64,
        rng: &mut R,
    ) -> Self {
        assert!(loops >= 1 && loops * 4 <= stages, "need >= 4 stages per loop");
        let base = ArbiterPuf::sample(stages, stage_sigma_ps, noise_sigma_ps, rng);
        let span = stages / (loops + 1);
        let loops = (0..loops).map(|l| ((l + 1) * span - 1, (l + 1) * span + 1)).collect();
        FeedForwardArbiterPuf { base, loops }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.base.stages()
    }

    fn effective_challenge<R: Rng + ?Sized>(&self, challenge: u128, rng: Option<&mut R>) -> u128 {
        // Evaluate taps in order; each tap signs the *partial* race up to
        // its stage under the challenge-so-far. Intermediate arbiters are
        // noisy too (they are the dominant noise source in real FF PUFs).
        let mut effective = challenge;
        let mut rng = rng;
        for &(tap, driven) in &self.loops {
            let partial = ArbiterPuf {
                delta_ps: self.base.delta_ps[..=tap].to_vec(),
                noise_sigma_ps: self.base.noise_sigma_ps,
            };
            let bit = match &mut rng {
                Some(r) => partial.evaluate(effective, &mut **r),
                None => partial.evaluate_ml(effective),
            };
            if bit {
                effective |= 1 << driven;
            } else {
                effective &= !(1 << driven);
            }
        }
        effective
    }

    /// Evaluates one challenge (noisy, including intermediate arbiters).
    pub fn evaluate<R: Rng + ?Sized>(&self, challenge: u128, rng: &mut R) -> bool {
        let effective = self.effective_challenge(challenge, Some(rng));
        self.base.evaluate(effective, rng)
    }

    /// The noise-free response.
    pub fn evaluate_ml(&self, challenge: u128) -> bool {
        let effective = self.effective_challenge::<rand::rngs::ThreadRng>(challenge, None);
        self.base.evaluate_ml(effective)
    }
}

/// The parity feature map of the additive model: `Φᵢ(c) =
/// (−1)^(cᵢ ⊕ … ⊕ c_{n−1})` plus a constant 1 — in this basis the arbiter
/// PUF is an exact linear threshold, which is why logistic regression
/// cracks it (Rührmair et al. \[27\]).
pub fn parity_features(challenge: u128, stages: usize) -> Vec<f64> {
    let mut features = Vec::with_capacity(stages + 1);
    let mut suffix_parity = false;
    let mut rev = Vec::with_capacity(stages);
    for i in (0..stages).rev() {
        if (challenge >> i) & 1 == 1 {
            suffix_parity = !suffix_parity;
        }
        rev.push(if suffix_parity { -1.0 } else { 1.0 });
    }
    rev.reverse();
    features.extend(rev);
    features.push(1.0);
    features
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xA7B)
    }

    #[test]
    fn delay_difference_matches_parity_model() {
        // Δ(c) must equal the inner product of the stage deltas with the
        // parity features — the identity the ML attack rests on.
        let mut r = rng();
        let puf = ArbiterPuf::sample(16, 5.0, 0.0, &mut r);
        for _ in 0..200 {
            let c: u128 = (r.gen::<u16>()) as u128;
            let features = parity_features(c, 16);
            let linear: f64 = puf.delta_ps.iter().zip(&features).map(|(d, f)| d * f).sum();
            assert!((puf.delay_difference_ps(c) - linear).abs() < 1e-9);
        }
    }

    #[test]
    fn all_zero_challenge_sums_deltas() {
        let mut r = rng();
        let puf = ArbiterPuf::sample(8, 3.0, 0.0, &mut r);
        let expect: f64 = puf.delta_ps.iter().sum();
        assert!((puf.delay_difference_ps(0) - expect).abs() < 1e-12);
    }

    #[test]
    fn responses_are_mostly_stable() {
        let mut r = rng();
        let puf = ArbiterPuf::sample(64, 5.0, 1.0, &mut r);
        let mut flips = 0;
        let n = 300;
        for _ in 0..n {
            let c: u128 = r.gen::<u64>() as u128;
            let reference = puf.evaluate_ml(c);
            flips += (puf.evaluate(c, &mut r) != reference) as u32;
        }
        let rate = flips as f64 / n as f64;
        assert!(rate < 0.2, "arbiter PUF intra error {rate}");
    }

    #[test]
    fn different_chips_disagree_substantially() {
        let mut r = rng();
        let a = ArbiterPuf::sample(64, 5.0, 0.0, &mut r);
        let b = ArbiterPuf::sample(64, 5.0, 0.0, &mut r);
        let mut differ = 0;
        let n = 400;
        for _ in 0..n {
            let c: u128 = r.gen::<u64>() as u128;
            differ += (a.evaluate_ml(c) != b.evaluate_ml(c)) as u32;
        }
        let frac = differ as f64 / n as f64;
        assert!((0.3..0.7).contains(&frac), "inter-chip disagreement {frac}");
    }

    #[test]
    fn feed_forward_is_less_reliable_than_plain() {
        // The paper quotes 9.8% intra for the FF arbiter; structurally, the
        // intermediate arbiters add noisy decisions whose flips cascade.
        let mut r = rng();
        let plain = ArbiterPuf::sample(64, 5.0, 1.0, &mut r);
        let ff = FeedForwardArbiterPuf::sample(64, 4, 5.0, 1.0, &mut r);
        let n = 400;
        let rate = |f: &mut dyn FnMut(&mut ChaCha8Rng) -> bool, r: &mut ChaCha8Rng| {
            (0..n).filter(|_| f(r)).count() as f64 / n as f64
        };
        let mut plain_err = |r: &mut ChaCha8Rng| {
            let c = r.gen::<u64>() as u128;
            plain.evaluate(c, r) != plain.evaluate_ml(c)
        };
        let mut ff_err = |r: &mut ChaCha8Rng| {
            let c = r.gen::<u64>() as u128;
            ff.evaluate(c, r) != ff.evaluate_ml(c)
        };
        let p = rate(&mut plain_err, &mut r);
        let q = rate(&mut ff_err, &mut r);
        assert!(q > p, "feed-forward must be noisier: plain {p} vs ff {q}");
    }

    #[test]
    fn feed_forward_changes_the_function() {
        let mut r = rng();
        let ff = FeedForwardArbiterPuf::sample(64, 2, 5.0, 0.0, &mut r);
        let plain = ff.base.clone();
        let mut differ = 0;
        for _ in 0..400 {
            let c = r.gen::<u64>() as u128;
            differ += (ff.evaluate_ml(c) != plain.evaluate_ml(c)) as u32;
        }
        assert!(differ > 20, "loops must matter: {differ}/400");
    }

    #[test]
    fn parity_features_shape() {
        let f = parity_features(0, 8);
        assert_eq!(f.len(), 9);
        assert!(f.iter().all(|&v| v == 1.0), "zero challenge has no sign flips");
        let f = parity_features(0b1000_0000, 8);
        // Only the top bit set: every feature below it is negated.
        assert_eq!(f[8], 1.0, "bias term");
        assert!(f[..8].iter().all(|&v| v == -1.0));
    }
}
