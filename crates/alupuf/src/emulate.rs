//! Verifier-side PUF emulation (`PUF.Emulate()`).
//!
//! During manufacturing, a trusted enrollment interface reads out the
//! chip's gate-level delay table; the verifier later recomputes PUF
//! responses from that table instead of maintaining a challenge/response
//! database (paper §2, "PUF Response Verification", approach 2). For the
//! FPGA prototype the delays are simply known.
//!
//! The emulator evaluates the same netlist with the recorded delays and
//! resolves each arbiter *deterministically* (`Δ < 0 ⇒ 1`): it produces the
//! maximum-likelihood response, which differs from the device's noisy
//! output only on metastable bits — exactly the errors the reverse fuzzy
//! extractor absorbs.

use crate::challenge::Challenge;
use crate::challenge::RawResponse;
use crate::device::{checkout_engine, lock, return_engine, AluPufDesign, PufChip, PufInstance};
use pufatt_silicon::env::Environment;
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::wave::{SlicedWaveSimulator, LANES};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The gate-level delay table of one enrolled chip: everything the verifier
/// needs to emulate its ALU PUF.
///
/// This is secret material — whoever holds it can predict the PUF. The
/// paper protects the extraction interface with fuses; here the trust
/// boundary is the type: only [`DelayTable::extract`] (the trusted
/// enrollment step) creates one.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayTable {
    delays_ps: Vec<f64>,
    arbiter_offset_ps: Vec<f64>,
    env: Environment,
}

impl DelayTable {
    /// Trusted enrollment: reads out the per-gate delays and arbiter
    /// offsets of a chip at the reference operating point.
    pub fn extract(design: &AluPufDesign, chip: &PufChip, env: Environment) -> Self {
        DelayTable {
            delays_ps: design.effective_delays_ps(chip.silicon(), &env),
            arbiter_offset_ps: chip.arbiter_offset_ps().to_vec(),
            env,
        }
    }

    /// The operating point the table was extracted at.
    pub fn env(&self) -> Environment {
        self.env
    }

    /// The recorded per-gate delays in ps.
    pub fn delays_ps(&self) -> &[f64] {
        &self.delays_ps
    }

    /// Number of gate delays recorded.
    pub fn len(&self) -> usize {
        self.delays_ps.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.delays_ps.is_empty()
    }

    /// Serialises the table to the manufacturer-database wire format:
    /// magic `PUFT`, format version, the extraction corner, and the delay /
    /// arbiter-offset vectors as little-endian `f64`s.
    ///
    /// This is the artifact the trusted enrollment interface exports and
    /// the verifier imports — treat the bytes as secret key material.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 8 * (self.delays_ps.len() + self.arbiter_offset_ps.len()));
        out.extend_from_slice(b"PUFT");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&self.env.vdd_factor.to_le_bytes());
        out.extend_from_slice(&self.env.temp_c.to_le_bytes());
        out.extend_from_slice(&(self.delays_ps.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.arbiter_offset_ps.len() as u32).to_le_bytes());
        for v in self.delays_ps.iter().chain(&self.arbiter_offset_ps) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses a table previously written by [`DelayTable::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// unsupported version, truncated payload, non-finite values).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
            if bytes.len() < n {
                return Err(format!("truncated delay table: missing {what}"));
            }
            let (head, rest) = bytes.split_at(n);
            *bytes = rest;
            Ok(head)
        }
        let mut cur = bytes;
        if take(&mut cur, 4, "magic")? != b"PUFT" {
            return Err("bad magic: not a delay table".into());
        }
        let version = u32::from_le_bytes(take(&mut cur, 4, "version")?.try_into().expect("4 bytes"));
        if version != 1 {
            return Err(format!("unsupported delay-table version {version}"));
        }
        let vdd = f64::from_le_bytes(take(&mut cur, 8, "vdd")?.try_into().expect("8 bytes"));
        let temp = f64::from_le_bytes(take(&mut cur, 8, "temp")?.try_into().expect("8 bytes"));
        let n_delays = u32::from_le_bytes(take(&mut cur, 4, "delay count")?.try_into().expect("4 bytes")) as usize;
        let n_offsets = u32::from_le_bytes(take(&mut cur, 4, "offset count")?.try_into().expect("4 bytes")) as usize;
        let read_vec = |n: usize, what: &str, cur: &mut &[u8]| -> Result<Vec<f64>, String> {
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                let x = f64::from_le_bytes(take(cur, 8, what)?.try_into().expect("8 bytes"));
                if !x.is_finite() {
                    return Err(format!("non-finite {what} at index {i}"));
                }
                v.push(x);
            }
            Ok(v)
        };
        let delays_ps = read_vec(n_delays, "gate delay", &mut cur)?;
        let arbiter_offset_ps = read_vec(n_offsets, "arbiter offset", &mut cur)?;
        if !cur.is_empty() {
            return Err(format!("{} trailing bytes after delay table", cur.len()));
        }
        Ok(DelayTable {
            delays_ps,
            arbiter_offset_ps,
            env: Environment::new(vdd, temp),
        })
    }
}

/// Reusable emulation state: one persistent engine plus stimulus buffers.
#[derive(Debug)]
struct EmuScratch<'a> {
    sim: EventSimulator<'a>,
    from: Vec<bool>,
    to: Vec<bool>,
}

/// The verifier's software model of one enrolled ALU PUF.
///
/// Caches one simulation engine over the design's shared fanout CSR, so
/// repeated [`PufEmulator::emulate`] calls allocate nothing at steady
/// state; [`PufEmulator::emulate_batch`] fans challenges across scoped
/// worker threads, each with its own engine.
#[derive(Debug)]
pub struct PufEmulator<'a> {
    design: &'a AluPufDesign,
    table: DelayTable,
    scratch: RefCell<EmuScratch<'a>>,
    /// Pooled bit-sliced engines for [`PufEmulator::emulate_batch`]; reused
    /// across calls so repeated batches pay construction once.
    engines: Mutex<Vec<SlicedWaveSimulator>>,
}

impl<'a> PufEmulator<'a> {
    /// Builds an emulator from a design and an enrolled delay table.
    ///
    /// # Panics
    ///
    /// Panics if the table does not match the design (wrong gate count or
    /// arbiter width).
    pub fn new(design: &'a AluPufDesign, table: DelayTable) -> Self {
        assert_eq!(table.delays_ps.len(), design.netlist().gate_count(), "delay table does not match design");
        assert_eq!(table.arbiter_offset_ps.len(), design.width(), "arbiter offsets do not match design");
        let scratch = RefCell::new(EmuScratch {
            sim: EventSimulator::with_fanouts(design.netlist(), &table.delays_ps, design.fanout_csr()),
            from: Vec::new(),
            to: Vec::new(),
        });
        PufEmulator { design, table, scratch, engines: Mutex::new(Vec::new()) }
    }

    /// Convenience: enroll a chip and build its emulator in one step.
    pub fn enroll(design: &'a AluPufDesign, chip: &PufChip, env: Environment) -> Self {
        PufEmulator::new(design, DelayTable::extract(design, chip, env))
    }

    /// The design being emulated.
    pub fn design(&self) -> &AluPufDesign {
        self.design
    }

    /// Emulates the raw PUF response to a challenge (noise-free,
    /// maximum-likelihood arbiter resolution).
    pub fn emulate(&self, challenge: Challenge) -> RawResponse {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.design.stimulus_into(challenge, &mut s.from, &mut s.to);
        s.sim.run_transition_in_place(&s.from, &s.to);
        resolve_arbiters(self.design, &self.table.arbiter_offset_ps, &s.sim)
    }

    /// Emulates many challenges in parallel, returning one response per
    /// challenge in order. The emulator is noise-free, so the result is
    /// identical to mapping [`PufEmulator::emulate`] over the slice — for
    /// any `threads` value. Challenges are packed into 64-lane blocks
    /// evaluated by pooled bit-sliced engines; workers steal whole blocks.
    pub fn emulate_batch(&self, challenges: &[Challenge], threads: usize) -> Vec<RawResponse> {
        emulate_blocks(self.design, &self.table, &self.engines, challenges, threads)
    }
}

/// The shared bit-sliced batch emulation path behind [`PufEmulator`] and
/// [`SharedPufEmulator`]: fixed 64-lane blocks by global index, engines
/// checked out of `engines` (and returned), whole-block work stealing when
/// `threads > 1`.
fn emulate_blocks(
    design: &AluPufDesign,
    table: &DelayTable,
    engines: &Mutex<Vec<SlicedWaveSimulator>>,
    challenges: &[Challenge],
    threads: usize,
) -> Vec<RawResponse> {
    let w = design.width();
    if challenges.is_empty() {
        return Vec::new();
    }
    let blocks = challenges.len().div_ceil(LANES);
    let threads = threads.clamp(1, blocks);
    let delays = table.delays_ps.as_slice();
    let offsets = table.arbiter_offset_ps.as_slice();
    let mut out = vec![RawResponse::new(0, w); challenges.len()];
    if threads == 1 {
        // The verifier session path: no spawn, one pooled engine, and
        // consecutive blocks benefit from incremental cone reuse.
        let mut engine = checkout_engine(engines, design, delays);
        let (mut from, mut to) = (Vec::new(), Vec::new());
        for (b, slot) in out.chunks_mut(LANES).enumerate() {
            let start = b * LANES;
            let chs = &challenges[start..challenges.len().min(start + LANES)];
            emulate_one_block(design, offsets, &mut engine, chs, &mut from, &mut to, slot);
        }
        return_engine(engines, engine);
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut [RawResponse]>> = out.chunks_mut(LANES).map(Mutex::new).collect();
    std::thread::scope(|scope| {
        let (next, slots) = (&next, &slots);
        for _ in 0..threads {
            scope.spawn(move || {
                let mut engine = checkout_engine(engines, design, delays);
                let (mut from, mut to) = (Vec::new(), Vec::new());
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= blocks {
                        break;
                    }
                    let start = b * LANES;
                    let chs = &challenges[start..challenges.len().min(start + LANES)];
                    let mut slot = lock(&slots[b]);
                    emulate_one_block(design, offsets, &mut engine, chs, &mut from, &mut to, &mut slot[..]);
                }
                return_engine(engines, engine);
            });
        }
    });
    drop(slots);
    out
}

/// Runs one 64-lane block through `engine` and resolves the arbiters of
/// every live lane into `out` (maximum likelihood, `Δ < 0 ⇒ 1`).
fn emulate_one_block(
    design: &AluPufDesign,
    arbiter_offset_ps: &[f64],
    engine: &mut SlicedWaveSimulator,
    challenges: &[Challenge],
    from: &mut Vec<u64>,
    to: &mut Vec<u64>,
    out: &mut [RawResponse],
) {
    let w = design.width();
    design.stimulus_lanes_into(challenges, from, to);
    engine.run_lanes(from, to);
    let (sum0, sum1) = design.sum_buses();
    let mut t0 = [0.0f64; LANES];
    let mut t1 = [0.0f64; LANES];
    let mut bits = [0u64; LANES];
    for i in 0..w {
        engine.settle_lanes_into(sum0[i], &mut t0);
        engine.settle_lanes_into(sum1[i], &mut t1);
        let skew = design.design_skew_ps()[i] + arbiter_offset_ps[i];
        for (k, b) in bits.iter_mut().enumerate().take(out.len()) {
            if t0[k] - t1[k] + skew < 0.0 {
                *b |= 1 << i;
            }
        }
    }
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = RawResponse::new(bits[k], w);
    }
}

/// An owned, thread-safe emulator: the same semantics as [`PufEmulator`],
/// but holding its design by `Arc` so long-lived verifier endpoints can
/// cache one emulator (and its pooled engines) across calls instead of
/// rebuilding an engine per emulation.
///
/// Cloning yields an independent emulator with a dry engine pool — engines
/// are scratch state, never shared between clones.
#[derive(Debug)]
pub struct SharedPufEmulator {
    design: Arc<AluPufDesign>,
    table: DelayTable,
    engines: Mutex<Vec<SlicedWaveSimulator>>,
}

impl Clone for SharedPufEmulator {
    fn clone(&self) -> Self {
        SharedPufEmulator::new(Arc::clone(&self.design), self.table.clone())
    }
}

impl SharedPufEmulator {
    /// Builds an emulator from a shared design handle and an enrolled delay
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if the table does not match the design (wrong gate count or
    /// arbiter width).
    pub fn new(design: Arc<AluPufDesign>, table: DelayTable) -> Self {
        assert_eq!(table.delays_ps.len(), design.netlist().gate_count(), "delay table does not match design");
        assert_eq!(table.arbiter_offset_ps.len(), design.width(), "arbiter offsets do not match design");
        SharedPufEmulator { design, table, engines: Mutex::new(Vec::new()) }
    }

    /// The design being emulated.
    pub fn design(&self) -> &AluPufDesign {
        &self.design
    }

    /// The shared design handle.
    pub fn design_arc(&self) -> &Arc<AluPufDesign> {
        &self.design
    }

    /// The enrolled delay table.
    pub fn table(&self) -> &DelayTable {
        &self.table
    }

    /// Emulates one challenge (noise-free, maximum-likelihood arbiter
    /// resolution), bit-identical to [`PufEmulator::emulate`].
    pub fn emulate(&self, challenge: Challenge) -> RawResponse {
        let mut out = [RawResponse::new(0, self.design.width())];
        let mut engine = checkout_engine(&self.engines, &self.design, &self.table.delays_ps);
        let (mut from, mut to) = (Vec::new(), Vec::new());
        emulate_one_block(
            &self.design,
            &self.table.arbiter_offset_ps,
            &mut engine,
            std::slice::from_ref(&challenge),
            &mut from,
            &mut to,
            &mut out,
        );
        return_engine(&self.engines, engine);
        out[0]
    }

    /// Emulates a small ordered set of challenges in one 64-lane pass per
    /// block on the current thread (the verifier session shape).
    pub fn emulate_many(&self, challenges: &[Challenge]) -> Vec<RawResponse> {
        emulate_blocks(&self.design, &self.table, &self.engines, challenges, 1)
    }

    /// Parallel batched emulation; identical to [`SharedPufEmulator::emulate_many`]
    /// for any `threads` value.
    pub fn emulate_batch(&self, challenges: &[Challenge], threads: usize) -> Vec<RawResponse> {
        emulate_blocks(&self.design, &self.table, &self.engines, challenges, threads)
    }
}

/// Maximum-likelihood arbiter resolution (`Δ < 0 ⇒ 1`) over the settling
/// times of the last run of `sim`.
fn resolve_arbiters(design: &AluPufDesign, arbiter_offset_ps: &[f64], sim: &EventSimulator<'_>) -> RawResponse {
    let w = design.width();
    let mut bits = 0u64;
    for (i, &offset) in arbiter_offset_ps.iter().enumerate().take(w) {
        let t0 = sim.settle_or_zero(design.alu0_sum(i));
        let t1 = sim.settle_or_zero(design.alu1_sum(i));
        let delta = t0 - t1 + design.design_skew_ps()[i] + offset;
        if delta < 0.0 {
            bits |= 1 << i;
        }
    }
    RawResponse::new(bits, w)
}

// Device-internal accessors used by the emulator; kept crate-private on the
// design to avoid exposing netlist internals to downstream users.
impl AluPufDesign {
    pub(crate) fn alu0_sum(&self, i: usize) -> pufatt_silicon::netlist::NetId {
        self.alu0_ports().sum[i]
    }

    pub(crate) fn alu1_sum(&self, i: usize) -> pufatt_silicon::netlist::NetId {
        self.alu1_ports().sum[i]
    }
}

/// Agreement measurement between a device and its emulator: fraction of
/// response bits that match over `challenges`.
pub fn emulation_agreement<R: rand::Rng + ?Sized>(
    instance: &PufInstance<'_>,
    emulator: &PufEmulator<'_>,
    challenges: &[Challenge],
    rng: &mut R,
) -> f64 {
    let w = emulator.design.width() as f64;
    let mut matches = 0.0;
    for &ch in challenges {
        let dev = instance.evaluate(ch, rng);
        let emu = emulator.emulate(ch);
        matches += w - dev.hamming_distance(emu) as f64;
    }
    matches / (w * challenges.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AluPufConfig;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (AluPufDesign, PufChip) {
        let design = AluPufDesign::new(AluPufConfig {
            width: 16,
            adder: crate::device::AdderKind::default(),
            arbiter: crate::device::ArbiterConfig::asic(),
            design_seed: 3,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        (design, chip)
    }

    #[test]
    fn emulator_is_deterministic() {
        let (design, chip) = setup();
        let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let ch = Challenge::new(0xBEEF, 0x1234, 16);
        assert_eq!(emu.emulate(ch), emu.emulate(ch));
    }

    #[test]
    fn emulator_tracks_device_closely() {
        let (design, chip) = setup();
        let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let inst = PufInstance::new(&design, &chip, Environment::nominal());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let challenges: Vec<Challenge> = (0..60).map(|_| Challenge::random(&mut rng, 16)).collect();
        let agreement = emulation_agreement(&inst, &emu, &challenges, &mut rng);
        assert!(agreement > 0.8, "agreement {agreement}");
    }

    #[test]
    fn emulator_of_wrong_chip_disagrees() {
        let (design, chip) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let other = design.fabricate(&ChipSampler::new(), &mut rng);
        let emu_wrong = PufEmulator::enroll(&design, &other, Environment::nominal());
        let emu_right = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let inst = PufInstance::new(&design, &chip, Environment::nominal());
        let challenges: Vec<Challenge> = (0..60).map(|_| Challenge::random(&mut rng, 16)).collect();
        let right = emulation_agreement(&inst, &emu_right, &challenges, &mut rng);
        let wrong = emulation_agreement(&inst, &emu_wrong, &challenges, &mut rng);
        assert!(right > wrong + 0.1, "right {right} wrong {wrong}");
    }

    #[test]
    fn emulate_batch_matches_serial_at_any_thread_count() {
        let (design, chip) = setup();
        let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
        let challenges: Vec<Challenge> = (0..27u64).map(|k| Challenge::new(k * 7919, k * 104729, 16)).collect();
        let serial: Vec<_> = challenges.iter().map(|&ch| emu.emulate(ch)).collect();
        for threads in [1, 4, 8] {
            assert_eq!(emu.emulate_batch(&challenges, threads), serial, "threads {threads}");
        }
        assert!(emu.emulate_batch(&[], 4).is_empty());
    }

    #[test]
    fn emulate_batch_crossing_block_boundaries_matches_serial() {
        let (design, chip) = setup();
        let emu = PufEmulator::enroll(&design, &chip, Environment::nominal());
        // 3 blocks, last one partial: exercises lane padding + work stealing.
        let challenges: Vec<Challenge> = (0..150u64).map(|k| Challenge::new(k * 7919, k * 104729, 16)).collect();
        let serial: Vec<_> = challenges.iter().map(|&ch| emu.emulate(ch)).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(emu.emulate_batch(&challenges, threads), serial, "threads {threads}");
        }
    }

    #[test]
    fn shared_emulator_matches_borrowed_emulator() {
        let (design, chip) = setup();
        let table = DelayTable::extract(&design, &chip, Environment::nominal());
        let design = std::sync::Arc::new(design);
        let borrowed = PufEmulator::new(&design, table.clone());
        let shared = SharedPufEmulator::new(Arc::clone(&design), table);
        let challenges: Vec<Challenge> = (0..100u64).map(|k| Challenge::new(k * 6151, k * 1299721, 16)).collect();
        let reference: Vec<_> = challenges.iter().map(|&ch| borrowed.emulate(ch)).collect();
        let singles: Vec<_> = challenges.iter().map(|&ch| shared.emulate(ch)).collect();
        assert_eq!(singles, reference);
        assert_eq!(shared.emulate_many(&challenges), reference);
        for threads in [1, 4] {
            assert_eq!(shared.emulate_batch(&challenges, threads), reference, "threads {threads}");
        }
        // Clones are independent but equivalent.
        let cloned = shared.clone();
        assert_eq!(cloned.emulate_many(&challenges), reference);
    }

    #[test]
    fn delay_table_round_trips_through_bytes() {
        let (design, chip) = setup();
        let table = DelayTable::extract(&design, &chip, Environment::nominal());
        let bytes = table.to_bytes();
        let parsed = DelayTable::from_bytes(&bytes).expect("round trip");
        assert_eq!(parsed, table);
        // And the parsed table emulates identically.
        let a = PufEmulator::new(&design, table);
        let b = PufEmulator::new(&design, parsed);
        for k in 0..20u64 {
            let ch = Challenge::new(k * 7919, k * 104729, 16);
            assert_eq!(a.emulate(ch), b.emulate(ch));
        }
    }

    #[test]
    fn delay_table_rejects_corruption() {
        let (design, chip) = setup();
        let table = DelayTable::extract(&design, &chip, Environment::nominal());
        let bytes = table.to_bytes();
        assert!(DelayTable::from_bytes(&bytes[..bytes.len() - 3])
            .unwrap_err()
            .contains("truncated"));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(DelayTable::from_bytes(&bad_magic).unwrap_err().contains("magic"));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DelayTable::from_bytes(&trailing).unwrap_err().contains("trailing"));
        let mut bad_version = bytes;
        bad_version[4] = 9;
        assert!(DelayTable::from_bytes(&bad_version).unwrap_err().contains("version"));
    }

    #[test]
    fn delay_table_len_matches_netlist() {
        let (design, chip) = setup();
        let table = DelayTable::extract(&design, &chip, Environment::nominal());
        assert_eq!(table.len(), design.netlist().gate_count());
        assert!(!table.is_empty());
    }
}
