//! Hamming-distance statistics for the paper's Figures 3 and 4.

use crate::challenge::RawResponse;
use std::fmt;

/// A histogram of Hamming distances between `width`-bit responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdHistogram {
    counts: Vec<u64>,
    total: u64,
    width: usize,
}

impl HdHistogram {
    /// Creates an empty histogram for `width`-bit responses.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > 64`.
    pub fn new(width: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        HdHistogram { counts: vec![0; width + 1], total: 0, width }
    }

    /// Records the distance between two responses.
    pub fn record_pair(&mut self, a: RawResponse, b: RawResponse) {
        self.record(a.hamming_distance(b) as usize);
    }

    /// Records a raw distance value.
    ///
    /// # Panics
    ///
    /// Panics if `hd > width`.
    pub fn record(&mut self, hd: usize) {
        assert!(hd <= self.width, "distance {hd} exceeds width {}", self.width);
        self.counts[hd] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Response width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Occurrence count per distance (index = distance in bits).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean distance in bits.
    pub fn mean_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(hd, &c)| hd as u64 * c).sum();
        sum as f64 / self.total as f64
    }

    /// Mean distance as a fraction of the response width.
    pub fn mean_fraction(&self) -> f64 {
        self.mean_bits() / self.width as f64
    }

    /// Standard deviation of the distance in bits.
    pub fn stddev_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean_bits();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(hd, &c)| c as f64 * (hd as f64 - mean) * (hd as f64 - mean))
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &HdHistogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for HdHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "HD histogram ({} samples, width {}):", self.total, self.width)?;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (hd, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(f, "  {hd:>3} bits: {c:>9} {bar}")?;
        }
        write!(f, "  mean = {:.2} bits ({:.1}%)", self.mean_bits(), 100.0 * self.mean_fraction())
    }
}

/// Per-bit bias accumulator: fraction of ones each response bit produces.
/// The FPGA PDL tuning loop drives these toward 0.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiasCounter {
    ones: Vec<u64>,
    total: u64,
    width: usize,
}

impl BiasCounter {
    /// Creates a counter for `width`-bit responses.
    pub fn new(width: usize) -> Self {
        BiasCounter { ones: vec![0; width], total: 0, width }
    }

    /// Records one response.
    ///
    /// # Panics
    ///
    /// Panics if the response width differs.
    pub fn record(&mut self, r: RawResponse) {
        assert_eq!(r.width(), self.width, "response width mismatch");
        for (i, ones) in self.ones.iter_mut().enumerate() {
            if r.bit(i) {
                *ones += 1;
            }
        }
        self.total += 1;
    }

    /// Number of recorded responses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bit one-fraction (0.5 = perfectly balanced).
    pub fn bias(&self) -> Vec<f64> {
        self.ones.iter().map(|&o| o as f64 / self.total.max(1) as f64).collect()
    }

    /// Mean absolute deviation from 0.5 across bits.
    pub fn mean_abs_bias(&self) -> f64 {
        let b = self.bias();
        b.iter().map(|&p| (p - 0.5).abs()).sum::<f64>() / b.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_fraction() {
        let mut h = HdHistogram::new(32);
        h.record(10);
        h.record(14);
        h.record(12);
        assert_eq!(h.total(), 3);
        assert!((h.mean_bits() - 12.0).abs() < 1e-12);
        assert!((h.mean_fraction() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn histogram_stddev() {
        let mut h = HdHistogram::new(8);
        h.record(2);
        h.record(6);
        assert!((h.stddev_bits() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn record_pair_uses_hamming_distance() {
        let mut h = HdHistogram::new(4);
        h.record_pair(RawResponse::new(0b1010, 4), RawResponse::new(0b0101, 4));
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HdHistogram::new(8);
        a.record(1);
        let mut b = HdHistogram::new(8);
        b.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[1], 2);
        assert_eq!(a.counts()[3], 1);
    }

    #[test]
    fn bias_counter_tracks_ones() {
        let mut b = BiasCounter::new(4);
        b.record(RawResponse::new(0b0011, 4));
        b.record(RawResponse::new(0b0001, 4));
        let bias = b.bias();
        assert_eq!(bias, vec![1.0, 0.5, 0.0, 0.0]);
        assert!((b.mean_abs_bias() - (0.5 + 0.0 + 0.5 + 0.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn rejects_out_of_range_distance() {
        HdHistogram::new(4).record(5);
    }
}
