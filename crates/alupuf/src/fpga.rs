//! FPGA prototype model: programmable delay lines and bias tuning.
//!
//! Implementing symmetric delay pairs in an FPGA is hard — the routing
//! tools introduce large skews between the two nominally identical paths
//! (Majzoobi et al., WIFS 2010). The paper therefore passes each output
//! pair through 64 stages of programmable delay line (PDL) switches and
//! calibrates them "so that on average the occurrence of 0 and 1 at each
//! arbiter is about the same".
//!
//! [`FpgaBoard`] wraps a [`PufInstance`] built with the FPGA arbiter
//! parameters (large routing skew) and a [`PdlBank`]; [`FpgaBoard::tune`]
//! runs the calibration loop.

use crate::challenge::{Challenge, RawResponse};
use crate::device::{AluPufDesign, PufChip, PufInstance};
use crate::stats::BiasCounter;
use pufatt_silicon::env::Environment;
use rand::Rng;

/// Number of PDL stages per output line in the paper's prototype.
pub const PDL_STAGES: i32 = 64;

/// A bank of per-bit programmable delay lines.
///
/// Each line holds a signed setting in `[-PDL_STAGES/2, PDL_STAGES/2]`;
/// one step changes the ALU-0-vs-ALU-1 delay difference by `step_ps`.
#[derive(Debug, Clone, PartialEq)]
pub struct PdlBank {
    settings: Vec<i32>,
    step_ps: f64,
}

impl PdlBank {
    /// Creates a neutral (all-zero) PDL bank for `width` bits with the given
    /// per-stage delay step.
    ///
    /// # Panics
    ///
    /// Panics if `step_ps <= 0`.
    pub fn new(width: usize, step_ps: f64) -> Self {
        assert!(step_ps > 0.0, "PDL step must be positive");
        PdlBank { settings: vec![0; width], step_ps }
    }

    /// The per-stage delay step in ps.
    pub fn step_ps(&self) -> f64 {
        self.step_ps
    }

    /// Current per-bit settings.
    pub fn settings(&self) -> &[i32] {
        &self.settings
    }

    /// Adjusts one line by `delta` stages, saturating at the hardware range.
    pub fn adjust(&mut self, bit: usize, delta: i32) {
        let half = PDL_STAGES / 2;
        self.settings[bit] = (self.settings[bit] + delta).clamp(-half, half);
    }

    /// The delay offsets the bank contributes to each arbiter's Δ, in ps.
    pub fn offsets_ps(&self) -> Vec<f64> {
        self.settings.iter().map(|&s| s as f64 * self.step_ps).collect()
    }
}

/// Outcome of a PDL tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Mean absolute per-bit bias (|P(1) − 0.5| averaged over bits) before
    /// tuning.
    pub bias_before: f64,
    /// Mean absolute per-bit bias after tuning.
    pub bias_after: f64,
    /// Calibration rounds executed.
    pub rounds: usize,
}

/// One FPGA board carrying an ALU PUF with PDLs.
#[derive(Debug)]
pub struct FpgaBoard<'a> {
    instance: PufInstance<'a>,
    pdl: PdlBank,
}

impl<'a> FpgaBoard<'a> {
    /// Assembles a board from a design (built with
    /// [`crate::device::AluPufConfig::fpga_16bit`]-style parameters) and a
    /// manufactured chip, operating at `env`.
    pub fn new(design: &'a AluPufDesign, chip: &'a PufChip, env: Environment, pdl_step_ps: f64) -> Self {
        let mut board = FpgaBoard {
            instance: PufInstance::new(design, chip, env),
            pdl: PdlBank::new(design.width(), pdl_step_ps),
        };
        board.apply_pdl();
        board
    }

    fn apply_pdl(&mut self) {
        let offsets = self.pdl.offsets_ps();
        self.instance.set_pdl_offsets_ps(&offsets);
    }

    /// The PDL bank.
    pub fn pdl(&self) -> &PdlBank {
        &self.pdl
    }

    /// Evaluates a challenge on the board.
    pub fn evaluate<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R) -> RawResponse {
        self.instance.evaluate(challenge, rng)
    }

    /// Measures the per-bit one-bias over `samples` random challenges.
    pub fn measure_bias<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> BiasCounter {
        let w = self.instance.design().width();
        let mut counter = BiasCounter::new(w);
        for _ in 0..samples {
            let ch = Challenge::random(rng, w);
            counter.record(self.evaluate(ch, rng));
        }
        counter
    }

    /// The delay-tuning process of Majzoobi et al. \[20\], as adopted by the
    /// paper: iteratively measure each arbiter's bias and step its PDL
    /// until the occurrence of 0 and 1 is about the same.
    ///
    /// `samples_per_round` challenges are spent per measurement; tuning
    /// stops after `max_rounds` or when every bit is within `tolerance`
    /// of 0.5.
    pub fn tune<R: Rng + ?Sized>(
        &mut self,
        samples_per_round: usize,
        max_rounds: usize,
        tolerance: f64,
        rng: &mut R,
    ) -> TuneReport {
        let width = self.instance.design().width();
        let bias_before = self.measure_bias(samples_per_round, rng).mean_abs_bias();
        // Per-bit annealed step size: start coarse, halve whenever the
        // deviation changes sign (the line overshot), so each bit settles
        // to single-stage accuracy instead of oscillating.
        let mut step = vec![8.0f64; width];
        let mut prev_sign = vec![0i8; width];
        let mut rounds = 0;
        for round in 0..max_rounds {
            rounds = round + 1;
            let bias = self.measure_bias(samples_per_round, rng).bias();
            let mut all_ok = true;
            for (bit, &p) in bias.iter().enumerate() {
                let dev = p - 0.5;
                if dev.abs() <= tolerance {
                    continue;
                }
                all_ok = false;
                let sign = if dev > 0.0 { 1i8 } else { -1i8 };
                if prev_sign[bit] != 0 && sign != prev_sign[bit] {
                    step[bit] = (step[bit] * 0.5).max(1.0);
                }
                prev_sign[bit] = sign;
                // P(1) too high ⇒ ALU0 too fast ⇒ delay it (a positive
                // offset grows Δ and favours 0).
                let stages = step[bit].round() as i32;
                self.pdl.adjust(bit, if dev > 0.0 { stages } else { -stages });
            }
            self.apply_pdl();
            if all_ok {
                break;
            }
        }
        let bias_after = self.measure_bias(samples_per_round, rng).mean_abs_bias();
        TuneReport { bias_before, bias_after, rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AluPufConfig;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fpga_design() -> AluPufDesign {
        let mut cfg = AluPufConfig::fpga_16bit();
        cfg.width = 8; // keep unit tests fast
        AluPufDesign::new(cfg)
    }

    #[test]
    fn pdl_bank_saturates() {
        let mut bank = PdlBank::new(4, 1.0);
        bank.adjust(0, 100);
        assert_eq!(bank.settings()[0], PDL_STAGES / 2);
        bank.adjust(0, -1000);
        assert_eq!(bank.settings()[0], -PDL_STAGES / 2);
    }

    #[test]
    fn pdl_offsets_scale_with_step() {
        let mut bank = PdlBank::new(2, 2.5);
        bank.adjust(1, 3);
        assert_eq!(bank.offsets_ps(), vec![0.0, 7.5]);
    }

    #[test]
    fn tuning_reduces_bias() {
        let design = fpga_design();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let mut board = FpgaBoard::new(&design, &chip, Environment::nominal(), 2.0);
        let report = board.tune(150, 12, 0.08, &mut rng);
        assert!(
            report.bias_after < report.bias_before || report.bias_before < 0.08,
            "bias {} -> {}",
            report.bias_before,
            report.bias_after
        );
        // A residual bias remains: the settling-time difference is
        // challenge-dependent and multimodal, so a constant PDL shift
        // cannot balance every mode — consistent with the paper's own
        // boards (18.8 % inter-chip HD implies substantial residual bias).
        assert!(report.bias_after < 0.25, "residual bias {}", report.bias_after);
    }

    #[test]
    fn untuned_fpga_is_heavily_biased() {
        // The FPGA routing skew dominates process variation: without PDL
        // tuning most arbiters are stuck.
        let design = fpga_design();
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        let board = FpgaBoard::new(&design, &chip, Environment::nominal(), 2.0);
        let bias = board.measure_bias(150, &mut rng).mean_abs_bias();
        assert!(bias > 0.2, "expected strong untuned bias, got {bias}");
    }

    #[test]
    fn two_tuned_boards_still_differ() {
        let design = fpga_design();
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        let sampler = ChipSampler::new();
        let chip_a = design.fabricate(&sampler, &mut rng);
        let chip_b = design.fabricate(&sampler, &mut rng);
        let mut a = FpgaBoard::new(&design, &chip_a, Environment::nominal(), 2.0);
        let mut b = FpgaBoard::new(&design, &chip_b, Environment::nominal(), 2.0);
        a.tune(150, 12, 0.08, &mut rng);
        b.tune(150, 12, 0.08, &mut rng);
        let mut hd = 0u32;
        let n = 60;
        for _ in 0..n {
            let ch = Challenge::random(&mut rng, 8);
            hd += a.evaluate(ch, &mut rng).hamming_distance(b.evaluate(ch, &mut rng));
        }
        let frac = hd as f64 / (n as f64 * 8.0);
        assert!(frac > 0.05, "tuned boards must remain distinguishable, HD {frac}");
    }
}
