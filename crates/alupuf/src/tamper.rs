//! Hardware-tampering models.
//!
//! The paper's trust model (§3) rests on a physical claim: "any attempt of
//! A to modify the hardware of P to enhance its computing and/or memory
//! capabilities changes the challenge/response behavior of the PUF". This
//! module makes the claim testable by applying parametrised hardware
//! modifications to a manufactured chip and measuring how far its
//! responses move:
//!
//! * [`Tamper::ProbeLoad`] — an attached probe or added wire loads a set
//!   of nets, slowing their drivers (the minimal, hardest-to-detect
//!   modification: a passive tap for the oracle attack).
//! * [`Tamper::RerouteDetour`] — rerouting a signal through added logic
//!   multiplies selected gate delays (what splicing in a shadow datapath
//!   would do).
//! * [`Tamper::VoltageIsland`] — running part of the die at a different
//!   supply corner (e.g. to speed up an added core) shifts every affected
//!   gate's delay.
//!
//! All three act on the *delay* level — the functional netlist is
//! unchanged, which is the adversary's best case. The `hardware_tamper`
//! bench sweeps the tamper magnitude and reports the response divergence
//! the verifier sees.

use crate::device::{AluPufDesign, PufChip};
use pufatt_silicon::variation::Chip;

/// A hardware modification applied to one chip.
#[derive(Debug, Clone, PartialEq)]
pub enum Tamper {
    /// Capacitive probe load on every `stride`-th gate's output: its delay
    /// grows by `extra_fraction` (e.g. 0.05 = 5 %).
    ProbeLoad {
        /// Apply to every `stride`-th gate (1 = all gates).
        stride: usize,
        /// Relative delay increase per probed gate.
        extra_fraction: f64,
    },
    /// Detour through added logic: gates in `[from, to)` (by index) get
    /// `extra_ps` of wire/logic delay added.
    RerouteDetour {
        /// First affected gate index.
        from: usize,
        /// One past the last affected gate index.
        to: usize,
        /// Added delay in ps.
        extra_ps: f64,
    },
    /// A voltage island covering gate indices `[from, to)`: their V_th is
    /// shifted by `delta_vth_v` (negative = faster).
    VoltageIsland {
        /// First affected gate index.
        from: usize,
        /// One past the last affected gate index.
        to: usize,
        /// Threshold-voltage shift in volts.
        delta_vth_v: f64,
    },
}

impl Tamper {
    /// Applies the modification, returning the tampered chip.
    ///
    /// `ProbeLoad` and `RerouteDetour` act on delays, which this model
    /// folds into equivalent V_th shifts so the tampered chip stays a
    /// `PufChip` (uniform interface for evaluation and enrollment).
    ///
    /// # Panics
    ///
    /// Panics if a gate range is out of bounds or parameters are
    /// non-physical (negative load).
    pub fn apply(&self, design: &AluPufDesign, chip: &PufChip) -> PufChip {
        let technology = chip.silicon().technology().clone();
        let alpha = technology.alpha;
        let gate_count = design.netlist().gate_count();
        let mut vth = chip.silicon().vth().to_vec();

        // A relative delay change `d -> d (1+f)` maps onto a V_th shift via
        // the alpha-power law: (V - vth')^alpha = (V - vth)^alpha / (1+f).
        let vth_for_delay_factor = |vth_old: f64, factor: f64| -> f64 {
            let vdd = technology.vdd_nominal;
            let overdrive = (vdd - vth_old) / factor.powf(1.0 / alpha);
            vdd - overdrive
        };

        match *self {
            Tamper::ProbeLoad { stride, extra_fraction } => {
                assert!(stride >= 1, "stride must be at least 1");
                assert!(extra_fraction >= 0.0, "probe load cannot speed a gate up");
                for (i, v) in vth.iter_mut().enumerate() {
                    if i % stride == 0 {
                        *v = vth_for_delay_factor(*v, 1.0 + extra_fraction);
                    }
                }
            }
            Tamper::RerouteDetour { from, to, extra_ps } => {
                assert!(from < to && to <= gate_count, "gate range {from}..{to} out of bounds");
                assert!(extra_ps >= 0.0, "detours add delay");
                // Convert the absolute extra delay into a per-gate factor
                // using the nominal intrinsic delay of each gate kind.
                for (i, v) in vth.iter_mut().enumerate().take(to).skip(from) {
                    let kind = design.netlist().gates()[i].kind;
                    let base = technology.intrinsic_delay_ps(kind);
                    *v = vth_for_delay_factor(*v, 1.0 + extra_ps / base);
                }
            }
            Tamper::VoltageIsland { from, to, delta_vth_v } => {
                assert!(from < to && to <= gate_count, "gate range {from}..{to} out of bounds");
                for v in vth.iter_mut().take(to).skip(from) {
                    *v += delta_vth_v;
                }
            }
        }
        // Keep devices physical (they must still switch).
        for v in vth.iter_mut() {
            *v = v.clamp(0.05, technology.vdd_nominal * 0.8);
        }
        PufChip::with_parts(Chip::from_vth(vth, technology), chip.arbiter_offset_ps().to_vec(), design.width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::Challenge;
    use crate::device::{AluPufConfig, AluPufDesign, PufInstance};
    use crate::emulate::PufEmulator;
    use pufatt_silicon::env::Environment;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (AluPufDesign, PufChip) {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let chip = design.fabricate(&ChipSampler::new(), &mut rng);
        (design, chip)
    }

    fn divergence(design: &AluPufDesign, original: &PufChip, tampered: &PufChip, n: usize) -> f64 {
        let emulator = PufEmulator::enroll(design, original, Environment::nominal());
        let instance = PufInstance::new(design, tampered, Environment::nominal());
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let mut hd = 0u32;
        for _ in 0..n {
            let ch = Challenge::random(&mut rng, 32);
            hd += instance.evaluate_voted(ch, 5, &mut rng).hamming_distance(emulator.emulate(ch));
        }
        hd as f64 / (n as f64 * 32.0)
    }

    #[test]
    fn probe_load_shifts_responses() {
        let (design, chip) = setup();
        // A 5% load on every third gate — a realistic probing footprint.
        let tampered = Tamper::ProbeLoad { stride: 3, extra_fraction: 0.05 }.apply(&design, &chip);
        let baseline = divergence(&design, &chip, &chip, 40);
        let moved = divergence(&design, &chip, &tampered, 40);
        assert!(moved > baseline + 0.02, "probing must move responses: {baseline} -> {moved}");
    }

    #[test]
    fn detour_shifts_responses_locally() {
        let (design, chip) = setup();
        let tampered = Tamper::RerouteDetour { from: 0, to: 40, extra_ps: 4.0 }.apply(&design, &chip);
        let moved = divergence(&design, &chip, &tampered, 40);
        assert!(moved > 0.05, "a detour through the first ALU must desynchronise the race: {moved}");
    }

    #[test]
    fn voltage_island_shifts_responses() {
        let (design, chip) = setup();
        let half = design.netlist().gate_count() / 2;
        let tampered = Tamper::VoltageIsland { from: 0, to: half, delta_vth_v: -0.02 }.apply(&design, &chip);
        let moved = divergence(&design, &chip, &tampered, 40);
        assert!(moved > 0.05, "speeding up one ALU must skew every race: {moved}");
    }

    #[test]
    fn symmetric_tamper_partially_cancels() {
        // Loading EVERY gate equally is the adversary's stealthiest option:
        // the differential structure cancels most of it. The claim the
        // paper needs is only that *asymmetric* modifications (anything
        // that adds capability) are visible.
        let (design, chip) = setup();
        let uniform = Tamper::ProbeLoad { stride: 1, extra_fraction: 0.05 }.apply(&design, &chip);
        let asymmetric = Tamper::ProbeLoad { stride: 3, extra_fraction: 0.05 }.apply(&design, &chip);
        let d_uniform = divergence(&design, &chip, &uniform, 40);
        let d_asym = divergence(&design, &chip, &asymmetric, 40);
        assert!(d_uniform < d_asym, "uniform load should cancel more: {d_uniform} vs {d_asym}");
    }

    #[test]
    fn tampered_chip_remains_functional() {
        // Delay tampering never changes logic values, only timing.
        let (design, chip) = setup();
        let tampered = Tamper::ProbeLoad { stride: 2, extra_fraction: 0.2 }.apply(&design, &chip);
        let instance = PufInstance::new(&design, &tampered, Environment::nominal());
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        // Evaluations still produce full-width responses without panicking.
        let r = instance.evaluate(Challenge::new(0xFFFF_FFFF, 1, 32), &mut rng);
        assert_eq!(r.width(), 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_checked() {
        let (design, chip) = setup();
        Tamper::RerouteDetour { from: 0, to: 100_000, extra_ps: 1.0 }.apply(&design, &chip);
    }
}
