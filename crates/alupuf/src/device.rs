//! The ALU PUF device model.
//!
//! Two identically designed ripple-carry adders (the redundant ALUs of a
//! commodity processor) are fed the same operands by a synchronisation
//! logic; per-bit arbiters latch which ALU's sum bit settles first. The
//! settling-time difference is dominated by per-chip manufacturing
//! variation — that is the PUF.
//!
//! The model separates three concerns:
//!
//! * [`AluPufDesign`] — the *layout*: netlist of both ALUs with shared
//!   inputs, plus the per-bit design skew (residual layout asymmetry) that
//!   is identical for every manufactured chip.
//! * [`PufChip`] — one *manufactured die*: per-gate threshold voltages from
//!   the quad-tree process model plus per-chip arbiter input offsets.
//! * [`PufInstance`] — a chip *operating* at a given voltage/temperature
//!   corner, ready to evaluate challenges (with metastability and jitter
//!   noise) or to race against a clock deadline (the overclocking model).

use crate::challenge::{Challenge, RawResponse};
use pufatt_silicon::env::Environment;
use pufatt_silicon::gen::{ripple_carry_adder_shared, RcaPorts};
use pufatt_silicon::netlist::{FanoutCsr, NetId, Netlist};
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::sta::ArrivalTimes;
use pufatt_silicon::variation::{Chip, ChipSampler};
use pufatt_silicon::wave::{SlicedWaveSimulator, LANES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Arbiter and noise parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterConfig {
    /// Metastability window τ in ps: a settling-time difference Δ resolves
    /// to 1 with probability σ(−Δ/τ) (logistic).
    pub metastability_tau_ps: f64,
    /// Per-evaluation Gaussian jitter on Δ in ps (supply/thermal noise).
    pub jitter_sigma_ps: f64,
    /// Standard deviation of the fixed per-bit layout asymmetry shared by
    /// all chips of the design, in ps. This is what pulls the raw
    /// inter-chip HD below the ideal 50 % (paper: 35.9 %).
    pub design_skew_sigma_ps: f64,
    /// Standard deviation of the per-chip, per-bit arbiter input offset
    /// in ps (arbiter device mismatch).
    pub chip_offset_sigma_ps: f64,
    /// Register setup time T_set in ps, used by the overclocking condition
    /// `T_ALU + T_set < T_cycle`.
    pub setup_time_ps: f64,
    /// Relative per-gate delay mismatch baked into the *design* (shared by
    /// every chip): residual layout asymmetry in ASICs, routing detours in
    /// FPGAs. Unlike the per-bit arbiter skew this component is
    /// challenge-dependent (it rides on whichever paths the carry takes),
    /// so PDL tuning cannot cancel it — which is why two tuned FPGA boards
    /// still agree on most response bits (paper: 18.8 % inter-chip HD).
    pub routing_mismatch_sigma: f64,
}

impl ArbiterConfig {
    /// Parameters for the ASIC-style simulation of the paper's §4.1
    /// (calibrated to reproduce ≈ 11 % intra-chip and ≈ 36 % raw
    /// inter-chip HD at width 32).
    pub fn asic() -> Self {
        ArbiterConfig {
            metastability_tau_ps: 0.8,
            jitter_sigma_ps: 1.3,
            design_skew_sigma_ps: 4.3,
            chip_offset_sigma_ps: 1.5,
            setup_time_ps: 30.0,
            routing_mismatch_sigma: 0.015,
        }
    }

    /// Parameters for the FPGA prototype model: much larger routing skew
    /// (LUT fabric, automated routing) and stronger environmental jitter,
    /// per the paper's FPGA measurements (18.8 % inter, 18.6 % intra).
    pub fn fpga() -> Self {
        ArbiterConfig {
            metastability_tau_ps: 0.7,
            jitter_sigma_ps: 1.1,
            design_skew_sigma_ps: 14.0,
            chip_offset_sigma_ps: 3.0,
            setup_time_ps: 45.0,
            routing_mismatch_sigma: 0.30,
        }
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig::asic()
    }
}

/// Adder microarchitecture of the racing ALUs.
///
/// The paper uses ripple-carry adders; the alternatives let the
/// reproduction quantify how much PUF quality faster datapaths give up
/// (the `adder_ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderKind {
    /// Ripple-carry (the paper's choice): longest carry chains, most
    /// accumulated variation.
    #[default]
    RippleCarry,
    /// Carry-lookahead with 4-bit groups: short balanced paths.
    CarryLookahead,
    /// Carry-select with 4-bit blocks: speculative ripples + muxes.
    CarrySelect,
}

/// Configuration of an ALU PUF design.
#[derive(Debug, Clone, PartialEq)]
pub struct AluPufConfig {
    /// Adder operand width = response bits (paper: 32 simulated, 16 FPGA).
    pub width: usize,
    /// Adder microarchitecture (paper: ripple-carry).
    pub adder: AdderKind,
    /// Arbiter/noise parameters.
    pub arbiter: ArbiterConfig,
    /// Seed for the design-time skew draw; two designs with the same seed
    /// have identical layout asymmetry.
    pub design_seed: u64,
}

impl AluPufConfig {
    /// The paper's simulated configuration: 32-bit responses, ASIC noise.
    pub fn paper_32bit() -> Self {
        AluPufConfig {
            width: 32,
            adder: AdderKind::RippleCarry,
            arbiter: ArbiterConfig::asic(),
            design_seed: 0x41_4C_55_50,
        }
    }

    /// The paper's FPGA prototype configuration: 16-bit responses.
    pub fn fpga_16bit() -> Self {
        AluPufConfig {
            width: 16,
            adder: AdderKind::RippleCarry,
            arbiter: ArbiterConfig::fpga(),
            design_seed: 0x46_50_47_41,
        }
    }
}

/// The ALU PUF design: netlist (two adders sharing their operand buses) and
/// design-time skew. Shared by every chip manufactured from it.
#[derive(Debug, Clone)]
pub struct AluPufDesign {
    config: AluPufConfig,
    netlist: Netlist,
    a_bus: Vec<NetId>,
    b_bus: Vec<NetId>,
    alu0: RcaPorts,
    alu1: RcaPorts,
    design_skew_ps: Vec<f64>,
    gate_delay_factor: Vec<f64>,
    /// Shared fanout adjacency, built once and reused by every simulator,
    /// delay-model evaluation and STA pass over this netlist.
    fanouts: FanoutCsr,
    /// Position of each operand-bus bit among the primary inputs, so
    /// stimulus vectors can be filled without searching the bus lists.
    a_pi_pos: Vec<u32>,
    b_pi_pos: Vec<u32>,
}

impl AluPufDesign {
    /// Instantiates the design.
    ///
    /// # Panics
    ///
    /// Panics if `config.width` is not in `2..=64`.
    pub fn new(config: AluPufConfig) -> Self {
        assert!((2..=64).contains(&config.width), "width {} out of range", config.width);
        let w = config.width;
        let mut netlist = Netlist::new();
        let a_bus = netlist.input_bus("a", w);
        let b_bus = netlist.input_bus("b", w);
        let cin = netlist.input("cin");
        // The redundant ALUs sit in adjacent rows (paper: "in close
        // proximity", so systematic spatial variation mostly cancels).
        let build = |netlist: &mut Netlist, prefix: &str, row: f64| match config.adder {
            AdderKind::RippleCarry => ripple_carry_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row),
            AdderKind::CarryLookahead => {
                pufatt_silicon::gen_adders::carry_lookahead_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row)
            }
            AdderKind::CarrySelect => {
                pufatt_silicon::gen_adders::carry_select_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row)
            }
        };
        let alu0 = build(&mut netlist, "alu0", 0.0);
        let alu1 = build(&mut netlist, "alu1", 4.0);
        netlist.validate().expect("generated ALU PUF netlist is well formed");

        let mut design_rng = ChaCha8Rng::seed_from_u64(config.design_seed);
        let design_skew_ps = (0..w)
            .map(|_| gaussian(&mut design_rng) * config.arbiter.design_skew_sigma_ps)
            .collect();
        let gate_delay_factor = (0..netlist.gate_count())
            .map(|_| (1.0 + gaussian(&mut design_rng) * config.arbiter.routing_mismatch_sigma).max(0.3))
            .collect();
        let fanouts = netlist.fanout_csr();
        let pi_positions = |bus: &[NetId]| -> Vec<u32> {
            bus.iter()
                .map(|&n| {
                    netlist
                        .primary_inputs()
                        .iter()
                        .position(|&p| p == n)
                        .expect("operand bus nets are primary inputs") as u32
                })
                .collect()
        };
        let a_pi_pos = pi_positions(&a_bus);
        let b_pi_pos = pi_positions(&b_bus);
        AluPufDesign {
            config,
            netlist,
            a_bus,
            b_bus,
            alu0,
            alu1,
            design_skew_ps,
            gate_delay_factor,
            fanouts,
            a_pi_pos,
            b_pi_pos,
        }
    }

    /// The design configuration.
    pub fn config(&self) -> &AluPufConfig {
        &self.config
    }

    /// Response width in bits.
    pub fn width(&self) -> usize {
        self.config.width
    }

    /// The combined netlist of both ALUs.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The shared fanout adjacency of the netlist. Build simulators over it
    /// with [`EventSimulator::with_fanouts`] instead of re-deriving it.
    pub fn fanout_csr(&self) -> &FanoutCsr {
        &self.fanouts
    }

    /// The shared operand input buses `(a, b)` of both ALUs.
    pub fn operand_buses(&self) -> (&[NetId], &[NetId]) {
        (&self.a_bus, &self.b_bus)
    }

    /// Per-bit design skew in ps (positive skew favours a `0` response).
    pub fn design_skew_ps(&self) -> &[f64] {
        &self.design_skew_ps
    }

    /// Per-gate design-level delay factors (layout/routing mismatch shared
    /// by all chips).
    pub fn gate_delay_factor(&self) -> &[f64] {
        &self.gate_delay_factor
    }

    /// Per-gate delays of `chip` at `env`, including the design-level
    /// mismatch factors. Both the operating device and the enrollment
    /// interface use this — the manufacturer knows its own layout.
    pub fn effective_delays_ps(&self, chip: &Chip, env: &Environment) -> Vec<f64> {
        let mut d = chip.gate_delays_with(&self.netlist, env, &self.fanouts);
        for (delay, &factor) in d.iter_mut().zip(&self.gate_delay_factor) {
            *delay *= factor;
        }
        d
    }

    /// Manufactures one chip of this design.
    pub fn fabricate<R: Rng + ?Sized>(&self, sampler: &ChipSampler, rng: &mut R) -> PufChip {
        let chip = sampler.sample(&self.netlist, rng);
        let arbiter_offset_ps = (0..self.config.width)
            .map(|_| gaussian(rng) * self.config.arbiter.chip_offset_sigma_ps)
            .collect();
        PufChip { chip, arbiter_offset_ps }
    }

    /// Manufactures `count` chips.
    pub fn fabricate_many<R: Rng + ?Sized>(&self, sampler: &ChipSampler, count: usize, rng: &mut R) -> Vec<PufChip> {
        (0..count).map(|_| self.fabricate(sampler, rng)).collect()
    }

    pub(crate) fn alu0_ports(&self) -> &RcaPorts {
        &self.alu0
    }

    pub(crate) fn alu1_ports(&self) -> &RcaPorts {
        &self.alu1
    }

    /// The raced sum buses: `(alu0.sum, alu1.sum)`, bit `i` of each feeding
    /// arbiter `i`. Exposed for external timing analyses and benchmarks.
    pub fn sum_buses(&self) -> (&[NetId], &[NetId]) {
        (&self.alu0.sum, &self.alu1.sum)
    }

    /// Builds the stimulus pair for `challenge` as fresh vectors. Hot paths
    /// should use [`AluPufDesign::stimulus_into`] with reused buffers.
    pub fn stimulus_vectors(&self, challenge: Challenge) -> (Vec<bool>, Vec<bool>) {
        let (mut from, mut to) = (Vec::new(), Vec::new());
        self.stimulus_into(challenge, &mut from, &mut to);
        (from, to)
    }

    /// Fills the stimulus pair for `challenge` into reusable buffers
    /// (cleared and resized to the primary-input count; no allocation once
    /// the buffers have capacity).
    ///
    /// The race launches from the bitwise complement of the operands so
    /// every input toggles at t = 0 (the synchronisation logic's job); the
    /// carry-in stays 0 on both sides.
    pub fn stimulus_into(&self, challenge: Challenge, from: &mut Vec<bool>, to: &mut Vec<bool>) {
        let n = self.netlist.primary_inputs().len();
        from.clear();
        from.resize(n, false);
        to.clear();
        to.resize(n, false);
        let mask = crate::challenge::width_mask(self.config.width);
        let (inv_a, inv_b) = (!challenge.a & mask, !challenge.b & mask);
        for (bit, &pos) in self.a_pi_pos.iter().enumerate() {
            from[pos as usize] = (inv_a >> bit) & 1 == 1;
            to[pos as usize] = (challenge.a >> bit) & 1 == 1;
        }
        for (bit, &pos) in self.b_pi_pos.iter().enumerate() {
            from[pos as usize] = (inv_b >> bit) & 1 == 1;
            to[pos as usize] = (challenge.b >> bit) & 1 == 1;
        }
    }

    /// Packs up to [`LANES`] challenges into per-primary-input lane masks
    /// for the bit-sliced engine: bit `L` of mask `p` is challenge `L`'s
    /// value of primary input `p`. Unused lanes stay idle (no transition),
    /// so short blocks cost nothing extra.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] challenges are passed.
    pub fn stimulus_lanes_into(&self, challenges: &[Challenge], from: &mut Vec<u64>, to: &mut Vec<u64>) {
        assert!(challenges.len() <= LANES, "at most {LANES} challenges per block");
        let n = self.netlist.primary_inputs().len();
        from.clear();
        from.resize(n, 0);
        to.clear();
        to.resize(n, 0);
        let mask = crate::challenge::width_mask(self.config.width);
        for (lane, ch) in challenges.iter().enumerate() {
            let (inv_a, inv_b) = (!ch.a & mask, !ch.b & mask);
            for (bit, &pos) in self.a_pi_pos.iter().enumerate() {
                from[pos as usize] |= ((inv_a >> bit) & 1) << lane;
                to[pos as usize] |= ((ch.a >> bit) & 1) << lane;
            }
            for (bit, &pos) in self.b_pi_pos.iter().enumerate() {
                from[pos as usize] |= ((inv_b >> bit) & 1) << lane;
                to[pos as usize] |= ((ch.b >> bit) & 1) << lane;
            }
        }
    }
}

/// Poison-tolerant lock: engine pools hold plain data, so a panicking
/// worker cannot leave them in a broken state.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Checks an engine out of `pool`, building one only when the pool is dry —
/// repeated batch calls (the fleet pattern) pay construction once per
/// concurrently-active worker, not once per call.
pub(crate) fn checkout_engine(
    pool: &Mutex<Vec<SlicedWaveSimulator>>,
    design: &AluPufDesign,
    delays_ps: &[f64],
) -> SlicedWaveSimulator {
    lock(pool)
        .pop()
        .unwrap_or_else(|| SlicedWaveSimulator::new(design.netlist(), delays_ps))
}

/// Returns a checked-out engine to its pool.
pub(crate) fn return_engine(pool: &Mutex<Vec<SlicedWaveSimulator>>, engine: SlicedWaveSimulator) {
    lock(pool).push(engine);
}

/// One manufactured ALU PUF die.
#[derive(Debug, Clone)]
pub struct PufChip {
    chip: Chip,
    arbiter_offset_ps: Vec<f64>,
}

impl PufChip {
    /// Assembles a chip from explicit parts (used by the aging model to
    /// construct drifted copies).
    ///
    /// # Panics
    ///
    /// Panics if the arbiter-offset count disagrees with `width`.
    pub fn with_parts(chip: Chip, arbiter_offset_ps: Vec<f64>, width: usize) -> Self {
        assert_eq!(arbiter_offset_ps.len(), width, "one arbiter offset per response bit");
        PufChip { chip, arbiter_offset_ps }
    }

    /// The underlying silicon sample.
    pub fn silicon(&self) -> &Chip {
        &self.chip
    }

    /// Per-bit arbiter input offsets in ps.
    pub fn arbiter_offset_ps(&self) -> &[f64] {
        &self.arbiter_offset_ps
    }
}

/// Detailed result of one PUF evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The arbiter decisions.
    pub response: RawResponse,
    /// Per-bit effective settling-time difference Δ_i in ps **before**
    /// jitter (Δ < 0 means ALU 0 settled first ⇒ bit tends to 1).
    pub delta_ps: Vec<f64>,
    /// Per-bit settling time of ALU 0's sum outputs in ps.
    pub settle0_ps: Vec<f64>,
    /// Per-bit settling time of ALU 1's sum outputs in ps.
    pub settle1_ps: Vec<f64>,
}

/// Reusable per-evaluation state: one persistent simulation engine plus the
/// stimulus buffers it is fed from. Steady-state evaluations touch only
/// these buffers and allocate nothing.
#[derive(Debug)]
struct EvalScratch<'a> {
    sim: EventSimulator<'a>,
    from: Vec<bool>,
    to: Vec<bool>,
}

/// A chip operating at a fixed voltage/temperature corner.
///
/// Precomputes the per-gate delays for the corner and caches one simulation
/// engine (netlist + shared fanout CSR + scratch buffers), so repeated
/// evaluations only pay for event processing — zero heap allocation at
/// steady state on the response-only paths.
#[derive(Debug)]
pub struct PufInstance<'a> {
    design: &'a AluPufDesign,
    puf_chip: &'a PufChip,
    env: Environment,
    delays_ps: Vec<f64>,
    /// Additional per-bit delay offsets (programmable delay lines in the
    /// FPGA prototype); zero for ASIC instances.
    pdl_offset_ps: Vec<f64>,
    scratch: RefCell<EvalScratch<'a>>,
    /// Long-lived bit-sliced engines for the batch paths: checked out by
    /// batch workers and returned when the batch completes, so repeated
    /// `evaluate_batch` calls reuse engines instead of rebuilding them.
    batch_engines: Mutex<Vec<SlicedWaveSimulator>>,
}

impl<'a> PufInstance<'a> {
    /// Binds a chip to an operating point.
    pub fn new(design: &'a AluPufDesign, puf_chip: &'a PufChip, env: Environment) -> Self {
        let delays_ps = design.effective_delays_ps(&puf_chip.chip, &env);
        PufInstance::from_delays(design, puf_chip, env, delays_ps)
    }

    /// Binds a chip to an operating point with precomputed effective gate
    /// delays, skipping the delay-model evaluation (used by callers that
    /// cache the delay vector across short-lived instances).
    ///
    /// # Panics
    ///
    /// Panics if `delays_ps.len()` differs from the design's gate count.
    pub fn from_delays(design: &'a AluPufDesign, puf_chip: &'a PufChip, env: Environment, delays_ps: Vec<f64>) -> Self {
        assert_eq!(delays_ps.len(), design.netlist().gate_count(), "one delay per gate required");
        let scratch = RefCell::new(EvalScratch {
            sim: EventSimulator::with_fanouts(&design.netlist, &delays_ps, &design.fanouts),
            from: Vec::new(),
            to: Vec::new(),
        });
        PufInstance {
            design,
            puf_chip,
            env,
            delays_ps,
            pdl_offset_ps: vec![0.0; design.width()],
            scratch,
            batch_engines: Mutex::new(Vec::new()),
        }
    }

    /// The effective per-gate delays at this operating point.
    pub fn delays_ps(&self) -> &[f64] {
        &self.delays_ps
    }

    /// The operating point.
    pub fn env(&self) -> Environment {
        self.env
    }

    /// The design this instance belongs to.
    pub fn design(&self) -> &AluPufDesign {
        self.design
    }

    /// Sets per-bit delay-line offsets (used by the FPGA PDL tuning loop).
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len()` differs from the response width.
    pub fn set_pdl_offsets_ps(&mut self, offsets: &[f64]) {
        assert_eq!(offsets.len(), self.design.width(), "one offset per response bit");
        self.pdl_offset_ps.copy_from_slice(offsets);
    }

    /// Worst-case ALU propagation delay `T_ALU` at this corner (static
    /// timing over both ALUs' outputs).
    pub fn alu_critical_path_ps(&self) -> f64 {
        let sta = ArrivalTimes::compute(&self.design.netlist, &self.delays_ps);
        let w0 = sta.worst_of(&self.design.alu0.sum).max(sta.at(self.design.alu0.cout));
        let w1 = sta.worst_of(&self.design.alu1.sum).max(sta.at(self.design.alu1.cout));
        w0.max(w1)
    }

    /// Minimum clock period for reliable PUF operation:
    /// `T_ALU + T_set` (paper §4.2, overclocking resiliency).
    pub fn min_reliable_cycle_ps(&self) -> f64 {
        self.alu_critical_path_ps() + self.design.config.arbiter.setup_time_ps
    }

    /// Calibrates the tightest clock period at which the PUF stays
    /// reliable *for realistic challenges*: the maximum observed settling
    /// time over `samples` random challenges, times `guard`, plus the
    /// register setup time.
    ///
    /// Static timing ([`PufInstance::min_reliable_cycle_ps`]) bounds the
    /// worst case over all inputs, but random `add` operands rarely ripple
    /// the full carry chain, so the empirical limit is much tighter — and
    /// the paper's overclocking defence (§4.2) only bites when the
    /// attestation clock is set near this empirical limit ("it is crucial
    /// to carefully set the clock frequency used for attestation").
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `guard < 1.0`.
    pub fn calibrate_cycle_ps<R: Rng + ?Sized>(&self, samples: usize, guard: f64, rng: &mut R) -> f64 {
        assert!(samples > 0, "need at least one calibration sample");
        assert!(guard >= 1.0, "guard band must not cut into observed settling times");
        let w = self.design.width();
        let mask = crate::challenge::width_mask(w);
        // The full-carry canary (all-ones + 1) exercises the complete carry
        // chain; attestation fires it in every PUF query, so the clock must
        // accommodate it.
        let canary = Challenge::new(mask, 1, w);
        let mut worst = 0.0f64;
        for i in 0..samples {
            let ch = if i == 0 { canary } else { Challenge::random(rng, w) };
            let e = self.evaluate_detailed(ch, rng);
            for t in e.settle0_ps.iter().chain(&e.settle1_ps) {
                worst = worst.max(*t);
            }
        }
        worst * guard + self.design.config.arbiter.setup_time_ps
    }

    /// Evaluates one challenge with full detail.
    pub fn evaluate_detailed<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R) -> Evaluation {
        self.evaluate_inner(challenge, rng, f64::INFINITY)
    }

    /// Evaluates one challenge, returning only the response.
    ///
    /// This is the lean path: it reuses the cached engine and stimulus
    /// buffers and skips the per-bit diagnostic vectors that
    /// [`PufInstance::evaluate_detailed`] collects, so it allocates nothing
    /// at steady state.
    pub fn evaluate<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R) -> RawResponse {
        self.evaluate_bits(challenge, rng, f64::INFINITY)
    }

    /// Evaluates one challenge `votes` times and majority-votes each bit —
    /// the standard temporal-majority noise suppression of PUF
    /// post-processing logic. Suppresses occasionally-flipping bits while
    /// leaving truly metastable arbiters at 50/50, which is what makes the
    /// error-correcting code's 7-error budget sufficient in deployment.
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn evaluate_voted<R: Rng + ?Sized>(&self, challenge: Challenge, votes: u32, rng: &mut R) -> RawResponse {
        self.evaluate_voted_clocked(challenge, f64::INFINITY, votes, rng)
    }

    /// Voted evaluation against a clock deadline (see
    /// [`PufInstance::evaluate_clocked`]).
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn evaluate_voted_clocked<R: Rng + ?Sized>(
        &self,
        challenge: Challenge,
        cycle_ps: f64,
        votes: u32,
        rng: &mut R,
    ) -> RawResponse {
        assert!(votes > 0, "at least one vote required");
        let deadline = cycle_ps - self.design.config.arbiter.setup_time_ps;
        let w = self.design.width();
        // The settling times are noise-free, so one simulation serves every
        // vote; only the arbiter draws are repeated (the RNG consumption is
        // identical to simulating each vote from scratch).
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.design.stimulus_into(challenge, &mut s.from, &mut s.to);
        s.sim.run_transition_in_place(&s.from, &s.to);
        let sim = &s.sim;
        let settle =
            |i: usize| (sim.settle_or_zero(self.design.alu0.sum[i]), sim.settle_or_zero(self.design.alu1.sum[i]));
        let mut ones = [0u32; 64];
        for _ in 0..votes {
            let r =
                race_bits(self.design, &self.puf_chip.arbiter_offset_ps, &self.pdl_offset_ps, &settle, deadline, rng);
            for (b, count) in ones.iter_mut().enumerate().take(w) {
                *count += ((r >> b) & 1) as u32;
            }
        }
        let mut bits = 0u64;
        for (b, &count) in ones.iter().enumerate().take(w) {
            if 2 * count > votes {
                bits |= 1 << b;
            }
        }
        RawResponse::new(bits, w)
    }

    /// Evaluates one challenge with the response register clocked at
    /// `cycle_ps`: sum bits that have not settled `setup_time_ps` before the
    /// capturing clock edge are latched metastably (uniformly random) —
    /// the paper's overclocking-attack failure mode.
    pub fn evaluate_clocked<R: Rng + ?Sized>(&self, challenge: Challenge, cycle_ps: f64, rng: &mut R) -> RawResponse {
        let deadline = cycle_ps - self.design.config.arbiter.setup_time_ps;
        self.evaluate_bits(challenge, rng, deadline)
    }

    /// Evaluates many challenges in parallel, returning one response per
    /// challenge in order.
    ///
    /// Each challenge draws its arbiter noise from an independent RNG
    /// stream seeded by `(noise_seed, challenge index)`, so the result is
    /// **bit-identical for any `threads` value** — the thread count only
    /// changes wall-clock time. Challenges are packed into fixed 64-lane
    /// blocks (by global index) evaluated by the bit-sliced waveform engine;
    /// workers pull whole blocks off a shared atomic cursor (chunked work
    /// stealing), and each worker checks a long-lived engine out of the
    /// instance's pool, so repeated batch calls pay engine construction
    /// once.
    pub fn evaluate_batch(&self, challenges: &[Challenge], noise_seed: u64, threads: usize) -> Vec<RawResponse> {
        self.evaluate_batch_inner(challenges, noise_seed, 1, f64::INFINITY, threads)
    }

    /// Parallel batched evaluation with per-challenge temporal majority
    /// voting (see [`PufInstance::evaluate_voted`]). Deterministic in
    /// `(noise_seed, challenge index, votes)`; independent of `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn evaluate_batch_voted(
        &self,
        challenges: &[Challenge],
        votes: u32,
        noise_seed: u64,
        threads: usize,
    ) -> Vec<RawResponse> {
        assert!(votes > 0, "at least one vote required");
        self.evaluate_batch_inner(challenges, noise_seed, votes, f64::INFINITY, threads)
    }

    fn evaluate_batch_inner(
        &self,
        challenges: &[Challenge],
        noise_seed: u64,
        votes: u32,
        deadline_ps: f64,
        threads: usize,
    ) -> Vec<RawResponse> {
        let w = self.design.width();
        if challenges.is_empty() {
            return Vec::new();
        }
        // Work is stolen in whole 64-lane blocks addressed by *global*
        // block index, so chunking never shifts a challenge's noise stream.
        let blocks = challenges.len().div_ceil(LANES);
        let threads = threads.clamp(1, blocks);
        // `self` is !Sync (the scratch RefCell); capture only the Sync
        // parts for the workers.
        let design = self.design;
        let delays = self.delays_ps.as_slice();
        let offsets = self.puf_chip.arbiter_offset_ps.as_slice();
        let pdl = self.pdl_offset_ps.as_slice();
        let engines = &self.batch_engines;
        let mut out = vec![RawResponse::new(0, w); challenges.len()];
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut [RawResponse]>> = out.chunks_mut(LANES).map(Mutex::new).collect();
        std::thread::scope(|scope| {
            let (next, slots) = (&next, &slots);
            for _ in 0..threads {
                scope.spawn(move || {
                    let mut engine = checkout_engine(engines, design, delays);
                    let (mut from, mut to) = (Vec::new(), Vec::new());
                    let (sum0, sum1) = design.sum_buses();
                    let mut t0 = vec![[0.0f64; LANES]; w];
                    let mut t1 = vec![[0.0f64; LANES]; w];
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks {
                            break;
                        }
                        let start = b * LANES;
                        let chs = &challenges[start..challenges.len().min(start + LANES)];
                        design.stimulus_lanes_into(chs, &mut from, &mut to);
                        engine.run_lanes(&from, &to);
                        for i in 0..w {
                            engine.settle_lanes_into(sum0[i], &mut t0[i]);
                            engine.settle_lanes_into(sum1[i], &mut t1[i]);
                        }
                        let mut slot = lock(&slots[b]);
                        for (k, resp) in slot.iter_mut().enumerate() {
                            let mut rng =
                                ChaCha8Rng::seed_from_u64(challenge_stream_seed(noise_seed, (start + k) as u64));
                            let settle = |i: usize| (t0[i][k], t1[i][k]);
                            let mut ones = [0u32; 64];
                            for _ in 0..votes {
                                let r = race_bits(design, offsets, pdl, &settle, deadline_ps, &mut rng);
                                for (bit, count) in ones.iter_mut().enumerate().take(w) {
                                    *count += ((r >> bit) & 1) as u32;
                                }
                            }
                            let mut bits = 0u64;
                            for (bit, &count) in ones.iter().enumerate().take(w) {
                                if 2 * count > votes {
                                    bits |= 1 << bit;
                                }
                            }
                            *resp = RawResponse::new(bits, w);
                        }
                    }
                    return_engine(engines, engine);
                });
            }
        });
        drop(slots);
        out
    }

    /// Shared engine path for the response-only evaluations.
    fn evaluate_bits<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R, deadline_ps: f64) -> RawResponse {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.design.stimulus_into(challenge, &mut s.from, &mut s.to);
        s.sim.run_transition_in_place(&s.from, &s.to);
        let sim = &s.sim;
        let settle =
            |i: usize| (sim.settle_or_zero(self.design.alu0.sum[i]), sim.settle_or_zero(self.design.alu1.sum[i]));
        let bits =
            race_bits(self.design, &self.puf_chip.arbiter_offset_ps, &self.pdl_offset_ps, &settle, deadline_ps, rng);
        RawResponse::new(bits, self.design.width())
    }

    fn evaluate_inner<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R, deadline_ps: f64) -> Evaluation {
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.design.stimulus_into(challenge, &mut s.from, &mut s.to);
        s.sim.run_transition_in_place(&s.from, &s.to);

        let w = self.design.width();
        let mut delta_ps = Vec::with_capacity(w);
        let mut settle0 = Vec::with_capacity(w);
        let mut settle1 = Vec::with_capacity(w);
        for i in 0..w {
            let t0 = s.sim.settle_or_zero(self.design.alu0.sum[i]);
            let t1 = s.sim.settle_or_zero(self.design.alu1.sum[i]);
            let delta =
                t0 - t1 + self.design.design_skew_ps[i] + self.puf_chip.arbiter_offset_ps[i] + self.pdl_offset_ps[i];
            settle0.push(t0);
            settle1.push(t1);
            delta_ps.push(delta);
        }
        let settle = |i: usize| (settle0[i], settle1[i]);
        let bits =
            race_bits(self.design, &self.puf_chip.arbiter_offset_ps, &self.pdl_offset_ps, &settle, deadline_ps, rng);
        Evaluation {
            response: RawResponse::new(bits, w),
            delta_ps,
            settle0_ps: settle0,
            settle1_ps: settle1,
        }
    }
}

/// Resolves all `width` arbiters against per-bit settling times, drawing
/// metastability and jitter noise from `rng` in bit order (the draw
/// sequence is shared by the serial and batched paths). `settle(i)` returns
/// the `(alu0, alu1)` settling times of sum bit `i` — a simulator lookup on
/// the scalar path, a lane extraction on the bit-sliced path.
fn race_bits<R: Rng + ?Sized>(
    design: &AluPufDesign,
    arbiter_offset_ps: &[f64],
    pdl_offset_ps: &[f64],
    settle: &impl Fn(usize) -> (f64, f64),
    deadline_ps: f64,
    rng: &mut R,
) -> u64 {
    let cfg = &design.config.arbiter;
    let mut bits = 0u64;
    for i in 0..design.config.width {
        let (t0, t1) = settle(i);
        let delta = t0 - t1 + design.design_skew_ps[i] + arbiter_offset_ps[i] + pdl_offset_ps[i];
        let bit = if t0.max(t1) > deadline_ps {
            // Setup-time violation: the response register samples an
            // unresolved race.
            rng.gen::<bool>()
        } else {
            let noisy = delta + gaussian(rng) * cfg.jitter_sigma_ps;
            let p_one = 1.0 / (1.0 + (noisy / cfg.metastability_tau_ps).exp());
            rng.gen::<f64>() < p_one
        };
        if bit {
            bits |= 1 << i;
        }
    }
    bits
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of the independent noise stream of one batched challenge: a
/// function of the batch seed and the challenge's *global* index only, so
/// batched results do not depend on how the batch is chunked over threads.
pub fn challenge_stream_seed(noise_seed: u64, index: u64) -> u64 {
    splitmix64(noise_seed ^ splitmix64(index))
}

pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_design() -> AluPufDesign {
        AluPufDesign::new(AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 7,
        })
    }

    #[test]
    fn netlist_has_two_adders() {
        let d = small_design();
        // 5 gates per full adder, 2 ALUs.
        assert_eq!(d.netlist().gate_count(), 2 * 5 * 8);
        assert_eq!(d.design_skew_ps().len(), 8);
    }

    #[test]
    fn same_seed_same_design_skew() {
        let a = small_design();
        let b = small_design();
        assert_eq!(a.design_skew_ps(), b.design_skew_ps());
        let c = AluPufDesign::new(AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 8,
        });
        assert_ne!(a.design_skew_ps(), c.design_skew_ps());
    }

    #[test]
    fn response_is_mostly_stable_across_repeats() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let ch = Challenge::new(0xA5, 0x3C, 8);
        let mut flips = 0u32;
        let reference = inst.evaluate(ch, &mut rng);
        for _ in 0..50 {
            flips += inst.evaluate(ch, &mut rng).hamming_distance(reference);
        }
        // Average intra-HD must be well below half the width.
        assert!((flips as f64) / 50.0 < 0.3 * 8.0, "flips {flips}");
    }

    #[test]
    fn different_chips_give_different_responses() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let chips = d.fabricate_many(&sampler, 2, &mut rng);
        let i0 = PufInstance::new(&d, &chips[0], Environment::nominal());
        let i1 = PufInstance::new(&d, &chips[1], Environment::nominal());
        let mut total = 0u32;
        for k in 0..40 {
            let ch = Challenge::new(k * 37 + 5, k * 91 + 11, 8);
            total += i0.evaluate(ch, &mut rng).hamming_distance(i1.evaluate(ch, &mut rng));
        }
        // Inter-chip HD must be substantial (tens of percent).
        assert!(total > 25, "inter-chip distance too small: {total}");
    }

    #[test]
    fn delta_is_deterministic_given_chip_and_env() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let ch = Challenge::new(0x5A, 0xC3, 8);
        let e1 = inst.evaluate_detailed(ch, &mut rng);
        let e2 = inst.evaluate_detailed(ch, &mut rng);
        assert_eq!(e1.delta_ps, e2.delta_ps, "Δ must not depend on the evaluation RNG");
    }

    #[test]
    fn critical_path_positive_and_wider_is_slower() {
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d8 = small_design();
        let c8 = d8.fabricate(&sampler, &mut rng);
        let t8 = PufInstance::new(&d8, &c8, Environment::nominal()).alu_critical_path_ps();
        let d32 = AluPufDesign::new(AluPufConfig::paper_32bit());
        let c32 = d32.fabricate(&sampler, &mut rng);
        let t32 = PufInstance::new(&d32, &c32, Environment::nominal()).alu_critical_path_ps();
        assert!(t8 > 0.0 && t32 > t8);
    }

    #[test]
    fn overclocking_corrupts_responses() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let safe_cycle = inst.min_reliable_cycle_ps() * 1.05;
        let violated_cycle = inst.min_reliable_cycle_ps() * 0.5;
        let ch = Challenge::new(0xFF, 0x01, 8); // full carry ripple
        let reference = inst.evaluate_clocked(ch, safe_cycle, &mut rng);
        let mut violated_hd = 0u32;
        let mut safe_hd = 0u32;
        for _ in 0..30 {
            violated_hd += inst.evaluate_clocked(ch, violated_cycle, &mut rng).hamming_distance(reference);
            safe_hd += inst.evaluate_clocked(ch, safe_cycle, &mut rng).hamming_distance(reference);
        }
        assert!(violated_hd > safe_hd + 20, "violated {violated_hd} vs safe {safe_hd}");
    }

    #[test]
    fn pdl_offsets_bias_the_arbiters() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let chip = d.fabricate(&sampler, &mut rng);
        let mut inst = PufInstance::new(&d, &chip, Environment::nominal());
        // A huge positive offset forces Δ > 0 everywhere ⇒ all-zero response.
        inst.set_pdl_offsets_ps(&[1e6; 8]);
        let r = inst.evaluate(Challenge::new(0x12, 0x34, 8), &mut rng);
        assert_eq!(r.bits(), 0);
        // A huge negative offset forces all ones.
        inst.set_pdl_offsets_ps(&[-1e6; 8]);
        let r = inst.evaluate(Challenge::new(0x12, 0x34, 8), &mut rng);
        assert_eq!(r.bits(), 0xFF);
    }

    #[test]
    fn stimulus_into_matches_input_vector_construction() {
        let d = small_design();
        let ch = Challenge::new(0x5A, 0xC3, 8);
        let (from, to) = d.stimulus_vectors(ch);
        let mask = crate::challenge::width_mask(8);
        let from_ref = d.netlist.input_vector(&[(&d.a_bus, !ch.a & mask), (&d.b_bus, !ch.b & mask)]);
        let to_ref = d.netlist.input_vector(&[(&d.a_bus, ch.a), (&d.b_bus, ch.b)]);
        assert_eq!(from, from_ref);
        assert_eq!(to, to_ref);
        // The buffers are reused without reallocation on the second fill.
        let (mut f, mut t) = (from, to);
        let (cf, ct) = (f.capacity(), t.capacity());
        d.stimulus_into(Challenge::new(0x12, 0x34, 8), &mut f, &mut t);
        assert_eq!((f.capacity(), t.capacity()), (cf, ct));
    }

    #[test]
    fn batch_is_identical_at_any_thread_count() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let challenges: Vec<Challenge> = (0..33).map(|k| Challenge::new(k * 37 + 5, k * 91 + 11, 8)).collect();
        let r1 = inst.evaluate_batch(&challenges, 42, 1);
        assert_eq!(r1.len(), challenges.len());
        assert_eq!(r1, inst.evaluate_batch(&challenges, 42, 4));
        assert_eq!(r1, inst.evaluate_batch(&challenges, 42, 8));
        // Voted batches are thread-invariant too.
        let v1 = inst.evaluate_batch_voted(&challenges, 5, 42, 1);
        assert_eq!(v1, inst.evaluate_batch_voted(&challenges, 5, 42, 8));
        // Deterministic: same seed reproduces the batch exactly.
        assert_eq!(r1, inst.evaluate_batch(&challenges, 42, 3));
    }

    #[test]
    fn batch_agrees_with_serial_modulo_noise() {
        // The batch path uses per-challenge RNG streams (not the caller's
        // shared RNG), so individual metastable bits may differ — but the
        // underlying Δ is the same, so responses stay close.
        let d = AluPufDesign::new(AluPufConfig::paper_32bit());
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let challenges: Vec<Challenge> = (0..20).map(|_| Challenge::random(&mut rng, 32)).collect();
        let batch = inst.evaluate_batch(&challenges, 7, 4);
        let mut total = 0u32;
        for (i, &ch) in challenges.iter().enumerate() {
            total += inst.evaluate(ch, &mut rng).hamming_distance(batch[i]);
        }
        // Average disagreement must stay in noise range (≪ half the width).
        assert!((total as f64) / 20.0 < 0.25 * 32.0, "total {total}");
    }

    #[test]
    fn environment_changes_have_moderate_effect() {
        // The symmetric layout largely cancels V/T shifts: responses at a
        // corner stay closer to nominal than to another chip.
        let d = AluPufDesign::new(AluPufConfig::paper_32bit());
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let chips = d.fabricate_many(&sampler, 2, &mut rng);
        let nominal = PufInstance::new(&d, &chips[0], Environment::nominal());
        let hot = PufInstance::new(&d, &chips[0], Environment::with_temp(120.0));
        let other = PufInstance::new(&d, &chips[1], Environment::nominal());
        let mut intra = 0u32;
        let mut inter = 0u32;
        for k in 0..30u64 {
            let ch = Challenge::new(k.wrapping_mul(0x9E37_79B9), k.wrapping_mul(0x85EB_CA6B), 32);
            let r_nom = nominal.evaluate(ch, &mut rng);
            intra += hot.evaluate(ch, &mut rng).hamming_distance(r_nom);
            inter += other.evaluate(ch, &mut rng).hamming_distance(r_nom);
        }
        assert!(intra < inter, "intra {intra} must stay below inter {inter}");
    }
}
