//! The ALU PUF device model.
//!
//! Two identically designed ripple-carry adders (the redundant ALUs of a
//! commodity processor) are fed the same operands by a synchronisation
//! logic; per-bit arbiters latch which ALU's sum bit settles first. The
//! settling-time difference is dominated by per-chip manufacturing
//! variation — that is the PUF.
//!
//! The model separates three concerns:
//!
//! * [`AluPufDesign`] — the *layout*: netlist of both ALUs with shared
//!   inputs, plus the per-bit design skew (residual layout asymmetry) that
//!   is identical for every manufactured chip.
//! * [`PufChip`] — one *manufactured die*: per-gate threshold voltages from
//!   the quad-tree process model plus per-chip arbiter input offsets.
//! * [`PufInstance`] — a chip *operating* at a given voltage/temperature
//!   corner, ready to evaluate challenges (with metastability and jitter
//!   noise) or to race against a clock deadline (the overclocking model).

use crate::challenge::{Challenge, RawResponse};
use pufatt_silicon::env::Environment;
use pufatt_silicon::gen::{ripple_carry_adder_shared, RcaPorts};
use pufatt_silicon::netlist::{NetId, Netlist};
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::sta::ArrivalTimes;
use pufatt_silicon::variation::{Chip, ChipSampler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Arbiter and noise parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterConfig {
    /// Metastability window τ in ps: a settling-time difference Δ resolves
    /// to 1 with probability σ(−Δ/τ) (logistic).
    pub metastability_tau_ps: f64,
    /// Per-evaluation Gaussian jitter on Δ in ps (supply/thermal noise).
    pub jitter_sigma_ps: f64,
    /// Standard deviation of the fixed per-bit layout asymmetry shared by
    /// all chips of the design, in ps. This is what pulls the raw
    /// inter-chip HD below the ideal 50 % (paper: 35.9 %).
    pub design_skew_sigma_ps: f64,
    /// Standard deviation of the per-chip, per-bit arbiter input offset
    /// in ps (arbiter device mismatch).
    pub chip_offset_sigma_ps: f64,
    /// Register setup time T_set in ps, used by the overclocking condition
    /// `T_ALU + T_set < T_cycle`.
    pub setup_time_ps: f64,
    /// Relative per-gate delay mismatch baked into the *design* (shared by
    /// every chip): residual layout asymmetry in ASICs, routing detours in
    /// FPGAs. Unlike the per-bit arbiter skew this component is
    /// challenge-dependent (it rides on whichever paths the carry takes),
    /// so PDL tuning cannot cancel it — which is why two tuned FPGA boards
    /// still agree on most response bits (paper: 18.8 % inter-chip HD).
    pub routing_mismatch_sigma: f64,
}

impl ArbiterConfig {
    /// Parameters for the ASIC-style simulation of the paper's §4.1
    /// (calibrated to reproduce ≈ 11 % intra-chip and ≈ 36 % raw
    /// inter-chip HD at width 32).
    pub fn asic() -> Self {
        ArbiterConfig {
            metastability_tau_ps: 0.8,
            jitter_sigma_ps: 1.3,
            design_skew_sigma_ps: 4.3,
            chip_offset_sigma_ps: 1.5,
            setup_time_ps: 30.0,
            routing_mismatch_sigma: 0.015,
        }
    }

    /// Parameters for the FPGA prototype model: much larger routing skew
    /// (LUT fabric, automated routing) and stronger environmental jitter,
    /// per the paper's FPGA measurements (18.8 % inter, 18.6 % intra).
    pub fn fpga() -> Self {
        ArbiterConfig {
            metastability_tau_ps: 0.7,
            jitter_sigma_ps: 1.1,
            design_skew_sigma_ps: 14.0,
            chip_offset_sigma_ps: 3.0,
            setup_time_ps: 45.0,
            routing_mismatch_sigma: 0.30,
        }
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig::asic()
    }
}

/// Adder microarchitecture of the racing ALUs.
///
/// The paper uses ripple-carry adders; the alternatives let the
/// reproduction quantify how much PUF quality faster datapaths give up
/// (the `adder_ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderKind {
    /// Ripple-carry (the paper's choice): longest carry chains, most
    /// accumulated variation.
    #[default]
    RippleCarry,
    /// Carry-lookahead with 4-bit groups: short balanced paths.
    CarryLookahead,
    /// Carry-select with 4-bit blocks: speculative ripples + muxes.
    CarrySelect,
}

/// Configuration of an ALU PUF design.
#[derive(Debug, Clone, PartialEq)]
pub struct AluPufConfig {
    /// Adder operand width = response bits (paper: 32 simulated, 16 FPGA).
    pub width: usize,
    /// Adder microarchitecture (paper: ripple-carry).
    pub adder: AdderKind,
    /// Arbiter/noise parameters.
    pub arbiter: ArbiterConfig,
    /// Seed for the design-time skew draw; two designs with the same seed
    /// have identical layout asymmetry.
    pub design_seed: u64,
}

impl AluPufConfig {
    /// The paper's simulated configuration: 32-bit responses, ASIC noise.
    pub fn paper_32bit() -> Self {
        AluPufConfig {
            width: 32,
            adder: AdderKind::RippleCarry,
            arbiter: ArbiterConfig::asic(),
            design_seed: 0x41_4C_55_50,
        }
    }

    /// The paper's FPGA prototype configuration: 16-bit responses.
    pub fn fpga_16bit() -> Self {
        AluPufConfig {
            width: 16,
            adder: AdderKind::RippleCarry,
            arbiter: ArbiterConfig::fpga(),
            design_seed: 0x46_50_47_41,
        }
    }
}

/// The ALU PUF design: netlist (two adders sharing their operand buses) and
/// design-time skew. Shared by every chip manufactured from it.
#[derive(Debug, Clone)]
pub struct AluPufDesign {
    config: AluPufConfig,
    netlist: Netlist,
    a_bus: Vec<NetId>,
    b_bus: Vec<NetId>,
    alu0: RcaPorts,
    alu1: RcaPorts,
    design_skew_ps: Vec<f64>,
    gate_delay_factor: Vec<f64>,
}

impl AluPufDesign {
    /// Instantiates the design.
    ///
    /// # Panics
    ///
    /// Panics if `config.width` is not in `2..=64`.
    pub fn new(config: AluPufConfig) -> Self {
        assert!((2..=64).contains(&config.width), "width {} out of range", config.width);
        let w = config.width;
        let mut netlist = Netlist::new();
        let a_bus = netlist.input_bus("a", w);
        let b_bus = netlist.input_bus("b", w);
        let cin = netlist.input("cin");
        // The redundant ALUs sit in adjacent rows (paper: "in close
        // proximity", so systematic spatial variation mostly cancels).
        let build = |netlist: &mut Netlist, prefix: &str, row: f64| match config.adder {
            AdderKind::RippleCarry => ripple_carry_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row),
            AdderKind::CarryLookahead => {
                pufatt_silicon::gen_adders::carry_lookahead_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row)
            }
            AdderKind::CarrySelect => {
                pufatt_silicon::gen_adders::carry_select_adder_shared(netlist, &a_bus, &b_bus, cin, prefix, row)
            }
        };
        let alu0 = build(&mut netlist, "alu0", 0.0);
        let alu1 = build(&mut netlist, "alu1", 4.0);
        netlist.validate().expect("generated ALU PUF netlist is well formed");

        let mut design_rng = ChaCha8Rng::seed_from_u64(config.design_seed);
        let design_skew_ps = (0..w)
            .map(|_| gaussian(&mut design_rng) * config.arbiter.design_skew_sigma_ps)
            .collect();
        let gate_delay_factor = (0..netlist.gate_count())
            .map(|_| (1.0 + gaussian(&mut design_rng) * config.arbiter.routing_mismatch_sigma).max(0.3))
            .collect();
        AluPufDesign {
            config,
            netlist,
            a_bus,
            b_bus,
            alu0,
            alu1,
            design_skew_ps,
            gate_delay_factor,
        }
    }

    /// The design configuration.
    pub fn config(&self) -> &AluPufConfig {
        &self.config
    }

    /// Response width in bits.
    pub fn width(&self) -> usize {
        self.config.width
    }

    /// The combined netlist of both ALUs.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Per-bit design skew in ps (positive skew favours a `0` response).
    pub fn design_skew_ps(&self) -> &[f64] {
        &self.design_skew_ps
    }

    /// Per-gate design-level delay factors (layout/routing mismatch shared
    /// by all chips).
    pub fn gate_delay_factor(&self) -> &[f64] {
        &self.gate_delay_factor
    }

    /// Per-gate delays of `chip` at `env`, including the design-level
    /// mismatch factors. Both the operating device and the enrollment
    /// interface use this — the manufacturer knows its own layout.
    pub fn effective_delays_ps(&self, chip: &Chip, env: &Environment) -> Vec<f64> {
        let mut d = chip.gate_delays(&self.netlist, env);
        for (delay, &factor) in d.iter_mut().zip(&self.gate_delay_factor) {
            *delay *= factor;
        }
        d
    }

    /// Manufactures one chip of this design.
    pub fn fabricate<R: Rng + ?Sized>(&self, sampler: &ChipSampler, rng: &mut R) -> PufChip {
        let chip = sampler.sample(&self.netlist, rng);
        let arbiter_offset_ps = (0..self.config.width)
            .map(|_| gaussian(rng) * self.config.arbiter.chip_offset_sigma_ps)
            .collect();
        PufChip { chip, arbiter_offset_ps }
    }

    /// Manufactures `count` chips.
    pub fn fabricate_many<R: Rng + ?Sized>(&self, sampler: &ChipSampler, count: usize, rng: &mut R) -> Vec<PufChip> {
        (0..count).map(|_| self.fabricate(sampler, rng)).collect()
    }

    pub(crate) fn alu0_ports(&self) -> &RcaPorts {
        &self.alu0
    }

    pub(crate) fn alu1_ports(&self) -> &RcaPorts {
        &self.alu1
    }

    pub(crate) fn stimulus_vectors(&self, challenge: Challenge) -> (Vec<bool>, Vec<bool>) {
        self.stimulus(challenge)
    }

    fn stimulus(&self, challenge: Challenge) -> (Vec<bool>, Vec<bool>) {
        // Launch the race from the bitwise complement of the operands so
        // every input toggles at t = 0 (the synchronisation logic's job).
        let w = self.config.width;
        let mask = crate::challenge::width_mask(w);
        let from = self
            .netlist
            .input_vector(&[(&self.a_bus, !challenge.a & mask), (&self.b_bus, !challenge.b & mask)]);
        let to = self
            .netlist
            .input_vector(&[(&self.a_bus, challenge.a), (&self.b_bus, challenge.b)]);
        (from, to)
    }
}

/// One manufactured ALU PUF die.
#[derive(Debug, Clone)]
pub struct PufChip {
    chip: Chip,
    arbiter_offset_ps: Vec<f64>,
}

impl PufChip {
    /// Assembles a chip from explicit parts (used by the aging model to
    /// construct drifted copies).
    ///
    /// # Panics
    ///
    /// Panics if the arbiter-offset count disagrees with `width`.
    pub fn with_parts(chip: Chip, arbiter_offset_ps: Vec<f64>, width: usize) -> Self {
        assert_eq!(arbiter_offset_ps.len(), width, "one arbiter offset per response bit");
        PufChip { chip, arbiter_offset_ps }
    }

    /// The underlying silicon sample.
    pub fn silicon(&self) -> &Chip {
        &self.chip
    }

    /// Per-bit arbiter input offsets in ps.
    pub fn arbiter_offset_ps(&self) -> &[f64] {
        &self.arbiter_offset_ps
    }
}

/// Detailed result of one PUF evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The arbiter decisions.
    pub response: RawResponse,
    /// Per-bit effective settling-time difference Δ_i in ps **before**
    /// jitter (Δ < 0 means ALU 0 settled first ⇒ bit tends to 1).
    pub delta_ps: Vec<f64>,
    /// Per-bit settling time of ALU 0's sum outputs in ps.
    pub settle0_ps: Vec<f64>,
    /// Per-bit settling time of ALU 1's sum outputs in ps.
    pub settle1_ps: Vec<f64>,
}

/// A chip operating at a fixed voltage/temperature corner.
///
/// Precomputes the per-gate delays for the corner so repeated evaluations
/// only pay for event simulation.
#[derive(Debug)]
pub struct PufInstance<'a> {
    design: &'a AluPufDesign,
    puf_chip: &'a PufChip,
    env: Environment,
    delays_ps: Vec<f64>,
    /// Additional per-bit delay offsets (programmable delay lines in the
    /// FPGA prototype); zero for ASIC instances.
    pdl_offset_ps: Vec<f64>,
}

impl<'a> PufInstance<'a> {
    /// Binds a chip to an operating point.
    pub fn new(design: &'a AluPufDesign, puf_chip: &'a PufChip, env: Environment) -> Self {
        let delays_ps = design.effective_delays_ps(&puf_chip.chip, &env);
        PufInstance {
            design,
            puf_chip,
            env,
            delays_ps,
            pdl_offset_ps: vec![0.0; design.width()],
        }
    }

    /// The operating point.
    pub fn env(&self) -> Environment {
        self.env
    }

    /// The design this instance belongs to.
    pub fn design(&self) -> &AluPufDesign {
        self.design
    }

    /// Sets per-bit delay-line offsets (used by the FPGA PDL tuning loop).
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len()` differs from the response width.
    pub fn set_pdl_offsets_ps(&mut self, offsets: &[f64]) {
        assert_eq!(offsets.len(), self.design.width(), "one offset per response bit");
        self.pdl_offset_ps.copy_from_slice(offsets);
    }

    /// Worst-case ALU propagation delay `T_ALU` at this corner (static
    /// timing over both ALUs' outputs).
    pub fn alu_critical_path_ps(&self) -> f64 {
        let sta = ArrivalTimes::compute(&self.design.netlist, &self.delays_ps);
        let w0 = sta.worst_of(&self.design.alu0.sum).max(sta.at(self.design.alu0.cout));
        let w1 = sta.worst_of(&self.design.alu1.sum).max(sta.at(self.design.alu1.cout));
        w0.max(w1)
    }

    /// Minimum clock period for reliable PUF operation:
    /// `T_ALU + T_set` (paper §4.2, overclocking resiliency).
    pub fn min_reliable_cycle_ps(&self) -> f64 {
        self.alu_critical_path_ps() + self.design.config.arbiter.setup_time_ps
    }

    /// Calibrates the tightest clock period at which the PUF stays
    /// reliable *for realistic challenges*: the maximum observed settling
    /// time over `samples` random challenges, times `guard`, plus the
    /// register setup time.
    ///
    /// Static timing ([`PufInstance::min_reliable_cycle_ps`]) bounds the
    /// worst case over all inputs, but random `add` operands rarely ripple
    /// the full carry chain, so the empirical limit is much tighter — and
    /// the paper's overclocking defence (§4.2) only bites when the
    /// attestation clock is set near this empirical limit ("it is crucial
    /// to carefully set the clock frequency used for attestation").
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `guard < 1.0`.
    pub fn calibrate_cycle_ps<R: Rng + ?Sized>(&self, samples: usize, guard: f64, rng: &mut R) -> f64 {
        assert!(samples > 0, "need at least one calibration sample");
        assert!(guard >= 1.0, "guard band must not cut into observed settling times");
        let w = self.design.width();
        let mask = crate::challenge::width_mask(w);
        // The full-carry canary (all-ones + 1) exercises the complete carry
        // chain; attestation fires it in every PUF query, so the clock must
        // accommodate it.
        let canary = Challenge::new(mask, 1, w);
        let mut worst = 0.0f64;
        for i in 0..samples {
            let ch = if i == 0 { canary } else { Challenge::random(rng, w) };
            let e = self.evaluate_detailed(ch, rng);
            for t in e.settle0_ps.iter().chain(&e.settle1_ps) {
                worst = worst.max(*t);
            }
        }
        worst * guard + self.design.config.arbiter.setup_time_ps
    }

    /// Evaluates one challenge with full detail.
    pub fn evaluate_detailed<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R) -> Evaluation {
        self.evaluate_inner(challenge, rng, f64::INFINITY)
    }

    /// Evaluates one challenge, returning only the response.
    pub fn evaluate<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R) -> RawResponse {
        self.evaluate_detailed(challenge, rng).response
    }

    /// Evaluates one challenge `votes` times and majority-votes each bit —
    /// the standard temporal-majority noise suppression of PUF
    /// post-processing logic. Suppresses occasionally-flipping bits while
    /// leaving truly metastable arbiters at 50/50, which is what makes the
    /// error-correcting code's 7-error budget sufficient in deployment.
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn evaluate_voted<R: Rng + ?Sized>(&self, challenge: Challenge, votes: u32, rng: &mut R) -> RawResponse {
        self.evaluate_voted_clocked(challenge, f64::INFINITY, votes, rng)
    }

    /// Voted evaluation against a clock deadline (see
    /// [`PufInstance::evaluate_clocked`]).
    ///
    /// # Panics
    ///
    /// Panics if `votes == 0`.
    pub fn evaluate_voted_clocked<R: Rng + ?Sized>(
        &self,
        challenge: Challenge,
        cycle_ps: f64,
        votes: u32,
        rng: &mut R,
    ) -> RawResponse {
        assert!(votes > 0, "at least one vote required");
        let deadline = cycle_ps - self.design.config.arbiter.setup_time_ps;
        let w = self.design.width();
        let mut ones = [0u32; 64];
        for _ in 0..votes {
            let r = self.evaluate_inner(challenge, rng, deadline).response;
            for (b, count) in ones.iter_mut().enumerate().take(w) {
                *count += r.bit(b) as u32;
            }
        }
        let mut bits = 0u64;
        for (b, &count) in ones.iter().enumerate().take(w) {
            if 2 * count > votes {
                bits |= 1 << b;
            }
        }
        RawResponse::new(bits, w)
    }

    /// Evaluates one challenge with the response register clocked at
    /// `cycle_ps`: sum bits that have not settled `setup_time_ps` before the
    /// capturing clock edge are latched metastably (uniformly random) —
    /// the paper's overclocking-attack failure mode.
    pub fn evaluate_clocked<R: Rng + ?Sized>(&self, challenge: Challenge, cycle_ps: f64, rng: &mut R) -> RawResponse {
        let deadline = cycle_ps - self.design.config.arbiter.setup_time_ps;
        self.evaluate_inner(challenge, rng, deadline).response
    }

    fn evaluate_inner<R: Rng + ?Sized>(&self, challenge: Challenge, rng: &mut R, deadline_ps: f64) -> Evaluation {
        let (from, to) = self.design.stimulus(challenge);
        let mut sim = EventSimulator::new(&self.design.netlist, &self.delays_ps);
        let result = sim.run_transition(&from, &to);

        let w = self.design.width();
        let cfg = &self.design.config.arbiter;
        let mut bits = 0u64;
        let mut delta_ps = Vec::with_capacity(w);
        let mut settle0 = Vec::with_capacity(w);
        let mut settle1 = Vec::with_capacity(w);
        for i in 0..w {
            let t0 = result.settle_or_zero(self.design.alu0.sum[i]);
            let t1 = result.settle_or_zero(self.design.alu1.sum[i]);
            let delta =
                t0 - t1 + self.design.design_skew_ps[i] + self.puf_chip.arbiter_offset_ps[i] + self.pdl_offset_ps[i];
            settle0.push(t0);
            settle1.push(t1);
            delta_ps.push(delta);

            let bit = if t0.max(t1) > deadline_ps {
                // Setup-time violation: the response register samples an
                // unresolved race.
                rng.gen::<bool>()
            } else {
                let noisy = delta + gaussian(rng) * cfg.jitter_sigma_ps;
                let p_one = 1.0 / (1.0 + (noisy / cfg.metastability_tau_ps).exp());
                rng.gen::<f64>() < p_one
            };
            if bit {
                bits |= 1 << i;
            }
        }
        Evaluation {
            response: RawResponse::new(bits, w),
            delta_ps,
            settle0_ps: settle0,
            settle1_ps: settle1,
        }
    }
}

pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_design() -> AluPufDesign {
        AluPufDesign::new(AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 7,
        })
    }

    #[test]
    fn netlist_has_two_adders() {
        let d = small_design();
        // 5 gates per full adder, 2 ALUs.
        assert_eq!(d.netlist().gate_count(), 2 * 5 * 8);
        assert_eq!(d.design_skew_ps().len(), 8);
    }

    #[test]
    fn same_seed_same_design_skew() {
        let a = small_design();
        let b = small_design();
        assert_eq!(a.design_skew_ps(), b.design_skew_ps());
        let c = AluPufDesign::new(AluPufConfig {
            width: 8,
            adder: AdderKind::default(),
            arbiter: ArbiterConfig::asic(),
            design_seed: 8,
        });
        assert_ne!(a.design_skew_ps(), c.design_skew_ps());
    }

    #[test]
    fn response_is_mostly_stable_across_repeats() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let ch = Challenge::new(0xA5, 0x3C, 8);
        let mut flips = 0u32;
        let reference = inst.evaluate(ch, &mut rng);
        for _ in 0..50 {
            flips += inst.evaluate(ch, &mut rng).hamming_distance(reference);
        }
        // Average intra-HD must be well below half the width.
        assert!((flips as f64) / 50.0 < 0.3 * 8.0, "flips {flips}");
    }

    #[test]
    fn different_chips_give_different_responses() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let chips = d.fabricate_many(&sampler, 2, &mut rng);
        let i0 = PufInstance::new(&d, &chips[0], Environment::nominal());
        let i1 = PufInstance::new(&d, &chips[1], Environment::nominal());
        let mut total = 0u32;
        for k in 0..40 {
            let ch = Challenge::new(k * 37 + 5, k * 91 + 11, 8);
            total += i0.evaluate(ch, &mut rng).hamming_distance(i1.evaluate(ch, &mut rng));
        }
        // Inter-chip HD must be substantial (tens of percent).
        assert!(total > 25, "inter-chip distance too small: {total}");
    }

    #[test]
    fn delta_is_deterministic_given_chip_and_env() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let ch = Challenge::new(0x5A, 0xC3, 8);
        let e1 = inst.evaluate_detailed(ch, &mut rng);
        let e2 = inst.evaluate_detailed(ch, &mut rng);
        assert_eq!(e1.delta_ps, e2.delta_ps, "Δ must not depend on the evaluation RNG");
    }

    #[test]
    fn critical_path_positive_and_wider_is_slower() {
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d8 = small_design();
        let c8 = d8.fabricate(&sampler, &mut rng);
        let t8 = PufInstance::new(&d8, &c8, Environment::nominal()).alu_critical_path_ps();
        let d32 = AluPufDesign::new(AluPufConfig::paper_32bit());
        let c32 = d32.fabricate(&sampler, &mut rng);
        let t32 = PufInstance::new(&d32, &c32, Environment::nominal()).alu_critical_path_ps();
        assert!(t8 > 0.0 && t32 > t8);
    }

    #[test]
    fn overclocking_corrupts_responses() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let chip = d.fabricate(&sampler, &mut rng);
        let inst = PufInstance::new(&d, &chip, Environment::nominal());
        let safe_cycle = inst.min_reliable_cycle_ps() * 1.05;
        let violated_cycle = inst.min_reliable_cycle_ps() * 0.5;
        let ch = Challenge::new(0xFF, 0x01, 8); // full carry ripple
        let reference = inst.evaluate_clocked(ch, safe_cycle, &mut rng);
        let mut violated_hd = 0u32;
        let mut safe_hd = 0u32;
        for _ in 0..30 {
            violated_hd += inst.evaluate_clocked(ch, violated_cycle, &mut rng).hamming_distance(reference);
            safe_hd += inst.evaluate_clocked(ch, safe_cycle, &mut rng).hamming_distance(reference);
        }
        assert!(violated_hd > safe_hd + 20, "violated {violated_hd} vs safe {safe_hd}");
    }

    #[test]
    fn pdl_offsets_bias_the_arbiters() {
        let d = small_design();
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let chip = d.fabricate(&sampler, &mut rng);
        let mut inst = PufInstance::new(&d, &chip, Environment::nominal());
        // A huge positive offset forces Δ > 0 everywhere ⇒ all-zero response.
        inst.set_pdl_offsets_ps(&[1e6; 8]);
        let r = inst.evaluate(Challenge::new(0x12, 0x34, 8), &mut rng);
        assert_eq!(r.bits(), 0);
        // A huge negative offset forces all ones.
        inst.set_pdl_offsets_ps(&[-1e6; 8]);
        let r = inst.evaluate(Challenge::new(0x12, 0x34, 8), &mut rng);
        assert_eq!(r.bits(), 0xFF);
    }

    #[test]
    fn environment_changes_have_moderate_effect() {
        // The symmetric layout largely cancels V/T shifts: responses at a
        // corner stay closer to nominal than to another chip.
        let d = AluPufDesign::new(AluPufConfig::paper_32bit());
        let sampler = ChipSampler::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let chips = d.fabricate_many(&sampler, 2, &mut rng);
        let nominal = PufInstance::new(&d, &chips[0], Environment::nominal());
        let hot = PufInstance::new(&d, &chips[0], Environment::with_temp(120.0));
        let other = PufInstance::new(&d, &chips[1], Environment::nominal());
        let mut intra = 0u32;
        let mut inter = 0u32;
        for k in 0..30u64 {
            let ch = Challenge::new(k.wrapping_mul(0x9E37_79B9), k.wrapping_mul(0x85EB_CA6B), 32);
            let r_nom = nominal.evaluate(ch, &mut rng);
            intra += hot.evaluate(ch, &mut rng).hamming_distance(r_nom);
            inter += other.evaluate(ch, &mut rng).hamming_distance(r_nom);
        }
        assert!(intra < inter, "intra {intra} must stay below inter {inter}");
    }
}
