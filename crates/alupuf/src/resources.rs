//! FPGA resource estimation (paper Table 1).
//!
//! The paper reports post-synthesis Virtex-5 utilisation for each component
//! of the 16-bit prototype. Absolute LUT counts depend on the synthesis
//! tool, so this module provides a *structural estimator*: per-component
//! area rules driven by the design's structural counts (response width,
//! helper-data bits, PDL stages), with packing constants calibrated once
//! against the paper's Table 1. The experiment harness prints estimated
//! vs. published numbers side by side.

use std::fmt;

/// Resource usage of one component (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUse {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flop registers.
    pub registers: u32,
    /// Dedicated XOR carry-chain resources.
    pub xors: u32,
    /// Block RAMs.
    pub bram: u32,
    /// Hardware FIFOs.
    pub fifo: u32,
}

impl fmt::Display for ResourceUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} XORs, {} BRAM, {} FIFO",
            self.luts, self.registers, self.xors, self.bram, self.fifo
        )
    }
}

/// A named Table-1 row: component, our estimate, and the paper's numbers
/// (when the component appears in the paper's table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRow {
    /// Component name as in the paper.
    pub component: &'static str,
    /// Structural estimate for the configured design.
    pub estimated: ResourceUse,
    /// The paper's published Virtex-5 numbers for the 16-bit prototype.
    pub paper: Option<ResourceUse>,
}

/// Structural resource estimator for an ALU PUF deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimator {
    /// Response width in bits (paper prototype: 16).
    pub width: u32,
    /// Helper-data bits of the error-correcting code (paper: 26).
    pub helper_bits: u32,
    /// PDL stages per output line (paper: 64).
    pub pdl_stages: u32,
}

impl ResourceEstimator {
    /// The paper's prototype configuration.
    pub fn paper_prototype() -> Self {
        ResourceEstimator { width: 16, helper_bits: 26, pdl_stages: 64 }
    }

    /// ALU PUF core: two `width`-bit ripple-carry adders + arbiters.
    ///
    /// Packing rule: a full adder maps to ~3 LUT6s (2·w adders ⇒ 6·w LUTs
    /// less shared-carry savings); registers = challenge (2·w) + response
    /// (w) + arbiter flip-flop pairs (2·w) = 5·w; the slice XOR resources
    /// carry 2 per response bit.
    pub fn alu_puf(&self) -> ResourceUse {
        let w = self.width;
        ResourceUse {
            luts: 6 * w - 2,
            registers: 5 * w,
            xors: 2 * w,
            bram: 0,
            fifo: 0,
        }
    }

    /// Synchronisation logic launching both ALUs simultaneously.
    pub fn sync_logic(&self) -> ResourceUse {
        let w = self.width;
        ResourceUse {
            luts: w / 2 + 1,
            registers: w / 2 - 1,
            xors: 0,
            bram: 0,
            fifo: 0,
        }
    }

    /// Syndrome generator: the `(n−k) × n` parity-check multiplication
    /// datapath plus control; matrix constants live in block RAM.
    pub fn syndrome_generator(&self) -> ResourceUse {
        let h = self.helper_bits;
        ResourceUse {
            luts: 76 * h,
            registers: 34 * h - 4,
            xors: 0,
            bram: 3,
            fifo: 0,
        }
    }

    /// XOR obfuscation network (two phases over 8 raw responses).
    pub fn obfuscation(&self) -> ResourceUse {
        ResourceUse {
            luts: 14 * self.width,
            registers: 0,
            xors: 0,
            bram: 0,
            fifo: 0,
        }
    }

    /// Programmable delay lines: `pdl_stages` stages × 2 LUTs per stage ×
    /// 2·width racing output lines, with 4 configuration registers per line.
    pub fn pdl(&self) -> ResourceUse {
        let lines = 2 * self.width;
        ResourceUse {
            luts: self.pdl_stages * 2 * lines,
            registers: 4 * lines,
            xors: 0,
            bram: 0,
            fifo: 0,
        }
    }

    /// SIRC (Simple Interface for Reconfigurable Computing) data-collection
    /// harness — fixed third-party IP, constant footprint.
    pub fn sirc(&self) -> ResourceUse {
        ResourceUse { luts: 2808, registers: 1826, xors: 0, bram: 38, fifo: 2 }
    }

    /// All rows of Table 1 with the paper's published values attached (the
    /// published values correspond to the 16-bit prototype; for other
    /// configurations `paper` is `None`).
    pub fn table1(&self) -> Vec<ResourceRow> {
        let is_prototype = *self == Self::paper_prototype();
        let paper = |r: ResourceUse| if is_prototype { Some(r) } else { None };
        vec![
            ResourceRow {
                component: "ALU PUF",
                estimated: self.alu_puf(),
                paper: paper(ResourceUse { luts: 94, registers: 80, xors: 32, bram: 0, fifo: 0 }),
            },
            ResourceRow {
                component: "Synchronization logic",
                estimated: self.sync_logic(),
                paper: paper(ResourceUse { luts: 9, registers: 7, xors: 0, bram: 0, fifo: 0 }),
            },
            ResourceRow {
                component: "Syndrome generator",
                estimated: self.syndrome_generator(),
                paper: paper(ResourceUse { luts: 1976, registers: 880, xors: 0, bram: 3, fifo: 0 }),
            },
            ResourceRow {
                component: "Obfuscation logic",
                estimated: self.obfuscation(),
                paper: paper(ResourceUse { luts: 224, registers: 0, xors: 0, bram: 0, fifo: 0 }),
            },
            ResourceRow {
                component: "PDL logic",
                estimated: self.pdl(),
                paper: paper(ResourceUse { luts: 4096, registers: 128, xors: 0, bram: 0, fifo: 0 }),
            },
            ResourceRow {
                component: "SIRC logic",
                estimated: self.sirc(),
                paper: paper(ResourceUse { luts: 2808, registers: 1826, xors: 0, bram: 38, fifo: 2 }),
            },
        ]
    }

    /// Total estimate over the PUF-specific components (everything except
    /// the SIRC data-collection harness, which an ASIC would not carry).
    pub fn puf_total(&self) -> ResourceUse {
        let rows = [
            self.alu_puf(),
            self.sync_logic(),
            self.syndrome_generator(),
            self.obfuscation(),
            self.pdl(),
        ];
        rows.iter().fold(ResourceUse::default(), |acc, r| ResourceUse {
            luts: acc.luts + r.luts,
            registers: acc.registers + r.registers,
            xors: acc.xors + r.xors,
            bram: acc.bram + r.bram,
            fifo: acc.fifo + r.fifo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_paper_within_tolerance() {
        // The structural rules must land within 5 % of every nonzero paper
        // entry for the prototype configuration.
        for row in ResourceEstimator::paper_prototype().table1() {
            let paper = row.paper.expect("prototype rows carry paper values");
            for (est, pub_) in [
                (row.estimated.luts, paper.luts),
                (row.estimated.registers, paper.registers),
                (row.estimated.xors, paper.xors),
                (row.estimated.bram, paper.bram),
                (row.estimated.fifo, paper.fifo),
            ] {
                if pub_ == 0 {
                    assert_eq!(est, 0, "{}: estimated {est} where paper has 0", row.component);
                } else {
                    let err = (est as f64 - pub_ as f64).abs() / pub_ as f64;
                    assert!(err <= 0.05, "{}: {est} vs paper {pub_} ({:.1}% off)", row.component, err * 100.0);
                }
            }
        }
    }

    #[test]
    fn alu_puf_is_small_next_to_support_logic() {
        // The paper's headline: the PUF itself is tiny; PDL + SIRC dominate.
        let e = ResourceEstimator::paper_prototype();
        assert!(e.alu_puf().luts * 10 < e.pdl().luts);
        assert!(e.alu_puf().luts * 10 < e.sirc().luts);
    }

    #[test]
    fn scaling_with_width() {
        let w16 = ResourceEstimator::paper_prototype();
        let w32 = ResourceEstimator { width: 32, ..w16 };
        assert!(w32.alu_puf().luts > w16.alu_puf().luts);
        assert!(w32.pdl().luts == 2 * w16.pdl().luts);
        assert!(w32.table1().iter().all(|r| r.paper.is_none()), "paper values only apply to the prototype");
    }

    #[test]
    fn totals_add_up() {
        let e = ResourceEstimator::paper_prototype();
        let t = e.puf_total();
        assert_eq!(
            t.luts,
            e.alu_puf().luts + e.sync_logic().luts + e.syndrome_generator().luts + e.obfuscation().luts + e.pdl().luts
        );
        assert_eq!(t.fifo, 0);
    }
}
