//! Standard PUF quality metrics, assembled into one datasheet-style report.
//!
//! Wraps the raw statistics of [`crate::stats`] into the metrics PUF
//! papers quote — uniqueness, reliability, uniformity, bit-aliasing and
//! per-bit Shannon entropy — measured over a chip batch.

use crate::challenge::Challenge;
use crate::device::{challenge_stream_seed, AluPufDesign, PufChip, PufInstance};
use crate::stats::{BiasCounter, HdHistogram};
use pufatt_silicon::env::Environment;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Datasheet metrics for one design, measured over a chip batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Response width in bits.
    pub width: usize,
    /// Chips measured.
    pub chips: usize,
    /// Challenges per metric.
    pub challenges: usize,
    /// Uniqueness: mean inter-chip HD fraction (ideal 0.5).
    pub uniqueness: f64,
    /// Reliability: 1 − worst-corner intra-chip HD fraction (ideal 1.0).
    pub reliability: f64,
    /// Uniformity: mean per-bit one-probability (ideal 0.5).
    pub uniformity: f64,
    /// Bit aliasing: worst per-bit one-probability across chips at a fixed
    /// bit position (ideal 0.5; 0/1 = the bit is identical on every chip).
    pub worst_bit_aliasing: f64,
    /// Mean per-bit Shannon entropy in bits (ideal 1.0).
    pub mean_bit_entropy: f64,
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PUF quality ({}-bit, {} chips, {} challenges):", self.width, self.chips, self.challenges)?;
        writeln!(f, "  uniqueness   {:.1}%   (ideal 50)", 100.0 * self.uniqueness)?;
        writeln!(f, "  reliability  {:.1}%   (ideal 100)", 100.0 * self.reliability)?;
        writeln!(f, "  uniformity   {:.3}   (ideal 0.5)", self.uniformity)?;
        writeln!(f, "  worst bit aliasing {:.3}   (ideal 0.5)", self.worst_bit_aliasing)?;
        write!(f, "  mean bit entropy   {:.3} b (ideal 1.0)", self.mean_bit_entropy)
    }
}

fn shannon(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
    }
}

/// Measures a [`QualityReport`] for `design` over freshly given chips.
///
/// Reliability is taken against the paper's worst corner (+120 °C).
///
/// # Panics
///
/// Panics if fewer than two chips are supplied.
pub fn measure_quality<R: Rng + ?Sized>(
    design: &AluPufDesign,
    chips: &[PufChip],
    challenges: usize,
    rng: &mut R,
) -> QualityReport {
    assert!(chips.len() >= 2, "need at least two chips for uniqueness");
    let width = design.width();
    let nominal: Vec<PufInstance<'_>> = chips
        .iter()
        .map(|c| PufInstance::new(design, c, Environment::nominal()))
        .collect();
    let hot = PufInstance::new(design, &chips[0], Environment::with_temp(120.0));

    let mut inter = HdHistogram::new(width);
    let mut intra = HdHistogram::new(width);
    let mut bias_per_chip: Vec<BiasCounter> = chips.iter().map(|_| BiasCounter::new(width)).collect();
    for _ in 0..challenges {
        let ch = Challenge::random(rng, width);
        let responses: Vec<_> = nominal.iter().map(|i| i.evaluate(ch, rng)).collect();
        for (counter, &r) in bias_per_chip.iter_mut().zip(&responses) {
            counter.record(r);
        }
        for a in 0..responses.len() {
            for b in a + 1..responses.len() {
                inter.record_pair(responses[a], responses[b]);
            }
        }
        intra.record_pair(responses[0], hot.evaluate(ch, rng));
    }

    // Per-bit statistics pooled across chips.
    let biases: Vec<Vec<f64>> = bias_per_chip.iter().map(|c| c.bias()).collect();
    let mut uniformity_acc = 0.0;
    let mut entropy_acc = 0.0;
    let mut worst_alias: f64 = 0.5;
    for bit in 0..width {
        for chip_bias in &biases {
            uniformity_acc += chip_bias[bit];
            entropy_acc += shannon(chip_bias[bit]);
        }
        // Aliasing: this bit's one-probability averaged over chips.
        let alias: f64 = biases.iter().map(|b| b[bit]).sum::<f64>() / biases.len() as f64;
        if (alias - 0.5).abs() > (worst_alias - 0.5).abs() {
            worst_alias = alias;
        }
    }
    let denom = (width * chips.len()) as f64;

    QualityReport {
        width,
        chips: chips.len(),
        challenges,
        uniqueness: inter.mean_fraction(),
        reliability: 1.0 - intra.mean_fraction(),
        uniformity: uniformity_acc / denom,
        worst_bit_aliasing: worst_alias,
        mean_bit_entropy: entropy_acc / denom,
    }
}

/// Batched [`measure_quality`]: the same metrics, but every chip's response
/// set is evaluated through [`PufInstance::evaluate_batch`] across
/// `threads` workers. Deterministic in `seed` (which drives both the
/// challenge draw and the per-challenge noise streams) and independent of
/// the thread count — this is the path the CLI's `characterize --threads`
/// and the quality sweeps use.
///
/// # Panics
///
/// Panics if fewer than two chips are supplied.
pub fn measure_quality_batched(
    design: &AluPufDesign,
    chips: &[PufChip],
    challenges: usize,
    seed: u64,
    threads: usize,
) -> QualityReport {
    assert!(chips.len() >= 2, "need at least two chips for uniqueness");
    let width = design.width();
    let mut chrng = ChaCha8Rng::seed_from_u64(seed);
    let chs: Vec<Challenge> = (0..challenges).map(|_| Challenge::random(&mut chrng, width)).collect();

    // One batch per chip at nominal, plus chip 0 at the hot corner; each
    // chip gets its own noise-stream family so chips stay independent.
    let nominal: Vec<Vec<crate::challenge::RawResponse>> = chips
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let inst = PufInstance::new(design, c, Environment::nominal());
            inst.evaluate_batch(&chs, challenge_stream_seed(seed, 1 + i as u64), threads)
        })
        .collect();
    let hot_inst = PufInstance::new(design, &chips[0], Environment::with_temp(120.0));
    let hot = hot_inst.evaluate_batch(&chs, challenge_stream_seed(seed, 0x8000_0000), threads);

    let mut inter = HdHistogram::new(width);
    let mut intra = HdHistogram::new(width);
    let mut bias_per_chip: Vec<BiasCounter> = chips.iter().map(|_| BiasCounter::new(width)).collect();
    for k in 0..challenges {
        for (counter, chip_responses) in bias_per_chip.iter_mut().zip(&nominal) {
            counter.record(chip_responses[k]);
        }
        for a in 0..chips.len() {
            for b in a + 1..chips.len() {
                inter.record_pair(nominal[a][k], nominal[b][k]);
            }
        }
        intra.record_pair(nominal[0][k], hot[k]);
    }

    let biases: Vec<Vec<f64>> = bias_per_chip.iter().map(|c| c.bias()).collect();
    let mut uniformity_acc = 0.0;
    let mut entropy_acc = 0.0;
    let mut worst_alias: f64 = 0.5;
    for bit in 0..width {
        for chip_bias in &biases {
            uniformity_acc += chip_bias[bit];
            entropy_acc += shannon(chip_bias[bit]);
        }
        let alias: f64 = biases.iter().map(|b| b[bit]).sum::<f64>() / biases.len() as f64;
        if (alias - 0.5).abs() > (worst_alias - 0.5).abs() {
            worst_alias = alias;
        }
    }
    let denom = (width * chips.len()) as f64;

    QualityReport {
        width,
        chips: chips.len(),
        challenges,
        uniqueness: inter.mean_fraction(),
        reliability: 1.0 - intra.mean_fraction(),
        uniformity: uniformity_acc / denom,
        worst_bit_aliasing: worst_alias,
        mean_bit_entropy: entropy_acc / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AluPufConfig;
    use pufatt_silicon::variation::ChipSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shannon_entropy_basics() {
        assert_eq!(shannon(0.0), 0.0);
        assert_eq!(shannon(1.0), 0.0);
        assert!((shannon(0.5) - 1.0).abs() < 1e-12);
        assert!(shannon(0.1) < shannon(0.3));
    }

    #[test]
    fn report_is_in_sane_ranges() {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(0x0AA);
        let chips = design.fabricate_many(&ChipSampler::new(), 3, &mut rng);
        let report = measure_quality(&design, &chips, 60, &mut rng);
        assert_eq!(report.width, 32);
        assert_eq!(report.chips, 3);
        assert!((0.2..0.5).contains(&report.uniqueness), "{report}");
        assert!((0.75..1.0).contains(&report.reliability), "{report}");
        assert!((0.3..0.7).contains(&report.uniformity), "{report}");
        assert!((0.0..=1.0).contains(&report.mean_bit_entropy), "{report}");
        // Biased arbiters exist: some bit aliases strongly.
        assert!((report.worst_bit_aliasing - 0.5).abs() > 0.2, "{report}");
    }

    #[test]
    fn batched_report_is_thread_invariant_and_tracks_serial() {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(0x0AB);
        let chips = design.fabricate_many(&ChipSampler::new(), 3, &mut rng);
        let r1 = measure_quality_batched(&design, &chips, 40, 9, 1);
        let r4 = measure_quality_batched(&design, &chips, 40, 9, 4);
        assert_eq!(r1, r4, "thread count changed the batched report");
        // The batched metrics must agree with the serial path to within
        // sampling noise (different RNG streams, same underlying Δ).
        let serial = measure_quality(&design, &chips, 40, &mut rng);
        assert!((r1.uniqueness - serial.uniqueness).abs() < 0.1, "batched {r1} vs serial {serial}");
        assert!((r1.reliability - serial.reliability).abs() < 0.1, "batched {r1} vs serial {serial}");
    }

    #[test]
    fn display_covers_all_metrics() {
        let report = QualityReport {
            width: 32,
            chips: 2,
            challenges: 10,
            uniqueness: 0.35,
            reliability: 0.89,
            uniformity: 0.48,
            worst_bit_aliasing: 0.95,
            mean_bit_entropy: 0.62,
        };
        let text = report.to_string();
        for needle in ["uniqueness", "reliability", "uniformity", "aliasing", "entropy"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two chips")]
    fn needs_two_chips() {
        let design = AluPufDesign::new(AluPufConfig::paper_32bit());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chips = design.fabricate_many(&ChipSampler::new(), 1, &mut rng);
        measure_quality(&design, &chips, 10, &mut rng);
    }
}
