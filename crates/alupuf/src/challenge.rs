//! Challenge and response value types.
//!
//! An ALU PUF challenge is the operand pair of the `add` instruction issued
//! in PUF mode; the response is the word of arbiter decisions, one bit per
//! sum output.

use rand::Rng;
use std::fmt;

/// Mask covering the low `width` bits of a word.
pub(crate) fn width_mask(width: usize) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// An ALU PUF challenge: the two `add` operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Challenge {
    /// Operand A (low `width` bits are significant).
    pub a: u64,
    /// Operand B (low `width` bits are significant).
    pub b: u64,
}

impl Challenge {
    /// Creates a challenge, masking the operands to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64`.
    pub fn new(a: u64, b: u64, width: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        let m = width_mask(width);
        Challenge { a: a & m, b: b & m }
    }

    /// Draws a uniformly random challenge of the given width.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: usize) -> Self {
        Challenge::new(rng.gen(), rng.gen(), width)
    }

    /// Packs the challenge into a single `2·width`-bit word (`a` in the low
    /// half), the layout used by attestation-side challenge derivation.
    pub fn to_packed(self, width: usize) -> u128 {
        (self.a as u128) | ((self.b as u128) << width)
    }

    /// Unpacks a challenge from the packed layout of [`Challenge::to_packed`].
    pub fn from_packed(packed: u128, width: usize) -> Self {
        let m = width_mask(width) as u128;
        Challenge { a: (packed & m) as u64, b: ((packed >> width) & m) as u64 }
    }
}

impl fmt::Display for Challenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:#x}, {:#x})", self.a, self.b)
    }
}

/// A raw (pre-error-correction, pre-obfuscation) ALU PUF response: one
/// arbiter bit per sum output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawResponse {
    bits: u64,
    width: usize,
}

impl RawResponse {
    /// Creates a response from the low `width` bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64`.
    pub fn new(bits: u64, width: usize) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        RawResponse { bits: bits & width_mask(width), width }
    }

    /// The response bits, packed LSB-first.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Response width in bits.
    pub fn width(self) -> usize {
        self.width
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(self, i: usize) -> bool {
        assert!(i < self.width, "bit {i} out of range {}", self.width);
        (self.bits >> i) & 1 == 1
    }

    /// Hamming distance to another response.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn hamming_distance(self, other: RawResponse) -> u32 {
        assert_eq!(self.width, other.width, "response width mismatch");
        (self.bits ^ other.bits).count_ones()
    }

    /// Hamming weight of the response.
    pub fn weight(self) -> u32 {
        self.bits.count_ones()
    }
}

impl fmt::Display for RawResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn challenge_masks_operands() {
        let c = Challenge::new(0xFFFF_FFFF, 0x1_0001, 16);
        assert_eq!(c.a, 0xFFFF);
        assert_eq!(c.b, 0x0001);
    }

    #[test]
    fn packed_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for width in [4usize, 16, 32, 64] {
            for _ in 0..50 {
                let c = Challenge::random(&mut rng, width);
                assert_eq!(Challenge::from_packed(c.to_packed(width), width), c);
            }
        }
    }

    #[test]
    fn random_challenges_stay_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let c = Challenge::random(&mut rng, 16);
            assert!(c.a <= 0xFFFF && c.b <= 0xFFFF);
        }
    }

    #[test]
    fn response_bit_access_and_distance() {
        let r1 = RawResponse::new(0b1010, 4);
        let r2 = RawResponse::new(0b0110, 4);
        assert!(r1.bit(1) && r1.bit(3) && !r1.bit(0));
        assert_eq!(r1.hamming_distance(r2), 2);
        assert_eq!(r1.weight(), 2);
    }

    #[test]
    fn display_is_fixed_width_binary() {
        assert_eq!(RawResponse::new(0b101, 6).to_string(), "000101");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn distance_requires_same_width() {
        let _ = RawResponse::new(1, 4).hamming_distance(RawResponse::new(1, 5));
    }
}
