//! The ALU PUF of PUFatt (DAC 2014).
//!
//! A processor's redundant ALUs double as a delay PUF: a synchronisation
//! logic launches the same `add` operands into two identically laid-out
//! ripple-carry adders, and per-bit arbiters latch which adder's sum bit
//! settles first. Manufacturing variation makes the outcome chip-unique;
//! layout symmetry makes it robust across voltage and temperature.
//!
//! * [`aging`] — NBTI threshold-voltage drift over the device lifetime
//!   (response drift vs. the enrolled delay table, re-enrollment).
//! * [`arbiter`] — the classic arbiter and feed-forward arbiter PUFs in
//!   the additive delay model (the paper's comparison baselines).
//! * [`device`] — design / chip / operating-instance model with
//!   metastability, jitter, and the overclocking (setup-violation) failure
//!   mode.
//! * [`challenge`] — challenge/response value types.
//! * [`emulate`] — the verifier-side `PUF.Emulate()` built from an enrolled
//!   gate-level delay table.
//! * [`fpga`] — the Virtex-5 prototype model: programmable delay lines and
//!   the bias-tuning calibration loop.
//! * [`quality`] — datasheet-style quality reports (uniqueness,
//!   reliability, uniformity, aliasing, entropy).
//! * [`resources`] — the structural resource estimator behind Table 1.
//! * [`stats`] — Hamming-distance histograms and bias counters for the
//!   Figure 3/4 experiments.
//! * [`tamper`] — hardware-modification models (probe loads, detours,
//!   voltage islands) testing the trust model's "hardware attacks change
//!   the PUF" claim.
//!
//! # Example
//!
//! ```
//! use pufatt_alupuf::challenge::Challenge;
//! use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
//! use pufatt_alupuf::emulate::PufEmulator;
//! use pufatt_silicon::env::Environment;
//! use pufatt_silicon::variation::ChipSampler;
//! use rand::SeedableRng;
//!
//! let design = AluPufDesign::new(AluPufConfig::paper_32bit());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let chip = design.fabricate(&ChipSampler::new(), &mut rng);
//!
//! // The device in the field…
//! let instance = PufInstance::new(&design, &chip, Environment::nominal());
//! let challenge = Challenge::random(&mut rng, 32);
//! let noisy = instance.evaluate(challenge, &mut rng);
//!
//! // …and the verifier's emulator from the enrolled delay table.
//! let emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());
//! let reference = emulator.emulate(challenge);
//! assert!(noisy.hamming_distance(reference) <= 32 / 2);
//! ```

pub mod aging;
pub mod arbiter;
pub mod challenge;
pub mod device;
pub mod emulate;
pub mod fpga;
pub mod quality;
pub mod resources;
pub mod stats;
pub mod tamper;

pub use aging::{age_chip, AgingModel};
pub use arbiter::{parity_features, ArbiterPuf, FeedForwardArbiterPuf};
pub use challenge::{Challenge, RawResponse};
pub use device::{AdderKind, AluPufConfig, AluPufDesign, ArbiterConfig, Evaluation, PufChip, PufInstance};
pub use emulate::{DelayTable, PufEmulator, SharedPufEmulator};
pub use fpga::{FpgaBoard, PdlBank};
pub use quality::{measure_quality, QualityReport};
pub use resources::{ResourceEstimator, ResourceRow, ResourceUse};
pub use stats::{BiasCounter, HdHistogram};
pub use tamper::Tamper;
