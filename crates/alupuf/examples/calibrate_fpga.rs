//! Calibration harness for the FPGA prototype model.
//!
//! Tunes two boards' PDLs and prints their post-tuning bias, inter-chip HD
//! and intra-chip HD for the current `ArbiterConfig::fpga()` parameters.
//! The crate defaults were fixed against the paper's two-board
//! measurements (18.8 % inter, 18.6 % intra); re-run after touching the
//! FPGA noise/skew parameters.
//!
//! `cargo run --release -p pufatt-alupuf --example calibrate_fpga`

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::*;
use pufatt_alupuf::fpga::FpgaBoard;
use pufatt_alupuf::stats::HdHistogram;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let design = AluPufDesign::new(AluPufConfig::fpga_16bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF96A);
    let sampler = ChipSampler::new();
    let ca = design.fabricate(&sampler, &mut rng);
    let cb = design.fabricate(&sampler, &mut rng);
    let mut a = FpgaBoard::new(&design, &ca, Environment::nominal(), 2.0);
    let mut b = FpgaBoard::new(&design, &cb, Environment::nominal(), 2.0);
    let ta = a.tune(400, 16, 0.06, &mut rng);
    let tb = b.tune(400, 16, 0.06, &mut rng);
    println!("tune A {:.3}->{:.3}  B {:.3}->{:.3}", ta.bias_before, ta.bias_after, tb.bias_before, tb.bias_after);
    let mut inter = HdHistogram::new(16);
    let mut intra = HdHistogram::new(16);
    for _ in 0..1500 {
        let ch = Challenge::random(&mut rng, 16);
        let ra = a.evaluate(ch, &mut rng);
        inter.record_pair(ra, b.evaluate(ch, &mut rng));
        intra.record_pair(ra, a.evaluate(ch, &mut rng));
    }
    println!(
        "inter raw {:.1}% ({:.1}b)  intra {:.1}% ({:.1}b)",
        100.0 * inter.mean_fraction(),
        inter.mean_bits(),
        100.0 * intra.mean_fraction(),
        intra.mean_bits()
    );
}
