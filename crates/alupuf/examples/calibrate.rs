//! Calibration harness for the ASIC (simulated silicon) noise parameters.
//!
//! Prints the raw inter-chip HD and the intra-chip HD at the paper's
//! voltage/temperature corners for the current `ArbiterConfig::asic()`
//! parameters. The defaults in the crate were fixed by iterating this
//! harness against the paper's §4.1 targets (35.9 % inter, 11.3 % intra);
//! re-run it after touching any noise parameter.
//!
//! `cargo run --release -p pufatt-alupuf --example calibrate`

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::*;
use pufatt_alupuf::stats::HdHistogram;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let sampler = ChipSampler::new();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let chips = design.fabricate_many(&sampler, 6, &mut rng);
    let insts: Vec<_> = chips
        .iter()
        .map(|c| PufInstance::new(&design, c, Environment::nominal()))
        .collect();
    let challenges: Vec<Challenge> = (0..250).map(|_| Challenge::random(&mut rng, 32)).collect();

    // inter-chip HD
    let mut inter = HdHistogram::new(32);
    for &ch in &challenges {
        let rs: Vec<_> = insts.iter().map(|i| i.evaluate(ch, &mut rng)).collect();
        for a in 0..rs.len() {
            for b in a + 1..rs.len() {
                inter.record_pair(rs[a], rs[b]);
            }
        }
    }
    println!("inter raw: mean {:.2} bits ({:.1}%)", inter.mean_bits(), 100.0 * inter.mean_fraction());

    // intra-chip HD (metastability only, nominal)
    let mut intra = HdHistogram::new(32);
    for &ch in &challenges {
        let r0 = insts[0].evaluate(ch, &mut rng);
        for _ in 0..3 {
            intra.record_pair(r0, insts[0].evaluate(ch, &mut rng));
        }
    }
    println!("intra nominal: mean {:.2} bits ({:.1}%)", intra.mean_bits(), 100.0 * intra.mean_fraction());

    // intra under corners
    for env in [
        Environment::with_vdd(0.9),
        Environment::with_vdd(1.1),
        Environment::with_temp(-20.0),
        Environment::with_temp(120.0),
    ] {
        let corner = PufInstance::new(&design, &chips[0], env);
        let mut h = HdHistogram::new(32);
        for &ch in &challenges {
            let r0 = insts[0].evaluate(ch, &mut rng);
            h.record_pair(r0, corner.evaluate(ch, &mut rng));
        }
        println!("intra {env}: mean {:.2} bits ({:.1}%)", h.mean_bits(), 100.0 * h.mean_fraction());
    }
}
