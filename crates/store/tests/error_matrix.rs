//! Recoverable-I/O-error enumeration for the sharded store.
//!
//! The crash matrices (`crash_matrix.rs`, `sharded_matrix.rs`) prove
//! recovery when the *process* dies. This matrix proves the robustness
//! contract when the process survives and the *disk* fails: an EIO,
//! ENOSPC, or fsync failure injected at **every** backend operation and
//! every read, one-shot and sticky, must leave the store in a state
//! where
//!
//! 1. every failure surfaces as a typed [`StoreError`] — never a panic;
//! 2. every record the store *acknowledged as durable* (a synced append,
//!    or an append covered by a successful flush) survives a subsequent
//!    power cut and reopen — no accepted-but-undurable record exists at
//!    any injection point;
//! 3. each shard's recovered state is a committed prefix of the records
//!    the store acknowledged for that shard — a sick shard never
//!    contaminates a healthy one;
//! 4. the health machine is one-way until the operator acts: a storage
//!    failure degrades exactly the failing shard, healthy shards keep
//!    accepting traffic, and [`ShardedStore::reopen_shard`] rejoins the
//!    sick shard with its committed prefix intact.
//!
//! A proptest section pins the fault model itself: [`error_plan`] is a
//! pure function of its seed, and a seeded plan replayed against the
//! same workload produces an *identical* failure schedule — the property
//! that makes any failing matrix point reproducible from its seed.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::state::StoreState;
use pufatt_store::{
    error_plan, ErrorInjection, InjectedErrorKind, ShardHealth, ShardedOptions, ShardedStore, SimVfs, StoreError,
    TornMode, INJECTED_ERROR_KINDS,
};
use std::sync::Arc;

const HISTORY_CAPACITY: usize = 2;
const SHARDS: u32 = 4;
const RANGE_WIDTH: u32 = 2;

fn opts() -> ShardedOptions {
    ShardedOptions {
        history_capacity: HISTORY_CAPACITY,
        shards: SHARDS,
        range_width: RANGE_WIDTH,
        commit_queue_limit: 0,
        compact_wal_bytes: 0,
    }
}

fn outcome(accepted: bool) -> OutcomeRec {
    OutcomeRec {
        accepted,
        response_ok: accepted,
        time_ok: true,
        timed_out: false,
        attempts: 1,
        elapsed_bits: 0.25f64.to_bits(),
        retried: 0,
        dropped: 0,
        lost: false,
        latency_slot: 5,
        crp_hits: 4,
        crp_misses: 2,
    }
}

/// One step of the workload: a group-commit append, a synced append, or
/// an explicit flush (the committer's tick).
enum Op {
    Append(Record),
    AppendSynced(Record),
    Flush,
}

/// Every record class across all four shards, with synced admissions and
/// group-commit batches between flushes — the journal shape a durable
/// campaign writes.
fn workload() -> Vec<Op> {
    use Record::*;
    let closed = |id, ok, status, fails, succs| SessionClosed { id, outcome: outcome(ok), status, fails, succs };
    vec![
        Op::AppendSynced(Meta {
            config_hash: 0x51C6,
            devices: 8,
            sessions_per_device: 2,
            seed: 9,
        }),
        Op::AppendSynced(DeviceEnrolled { id: 0 }),
        Op::AppendSynced(DeviceEnrolled { id: 2 }),
        Op::AppendSynced(DeviceEnrolled { id: 4 }),
        Op::AppendSynced(DeviceEnrolled { id: 6 }),
        Op::Append(closed(0, true, StoredStatus::Active, 0, 1)),
        Op::Append(CrpConsumed { a: 7, b: 9 }),
        Op::Flush,
        Op::Append(closed(2, false, StoredStatus::Active, 1, 0)),
        Op::Append(SessionFault { id: 4, retried: 1, dropped: 2, crp_hits: 0, crp_misses: 8 }),
        Op::Append(StatusChanged { id: 2, status: StoredStatus::Revoked }),
        Op::Flush,
        Op::Append(closed(6, true, StoredStatus::Active, 0, 1)),
        Op::AppendSynced(CrpConsumed { a: 8, b: 10 }),
        Op::Append(closed(0, true, StoredStatus::Active, 0, 2)),
        Op::Flush,
    ]
}

/// What one error-ridden run acknowledged, per shard.
#[derive(Debug, Clone, PartialEq)]
struct RunLog {
    /// Records the store accepted (Ok from append/append_synced), in
    /// order, per shard — the only candidates for recovered state.
    acked: Vec<Vec<Record>>,
    /// Per-shard count of acked records covered by a successful sync:
    /// the durability floor nothing may sink below.
    durable: Vec<usize>,
    /// Typed errors observed (every one must match the allowed set).
    errors: usize,
}

/// Runs the workload, tolerating injected failures: a failed operation
/// is simply not acknowledged. Panics on any error outside the typed
/// storage set — the matrix's "no panic, typed errors only" oracle.
fn run_with_errors(vfs: &SimVfs) -> RunLog {
    let mut log = RunLog {
        acked: vec![Vec::new(); SHARDS as usize],
        durable: vec![0; SHARDS as usize],
        errors: 0,
    };
    let assert_typed = |e: &StoreError| {
        assert!(
            matches!(
                e,
                StoreError::Io(_)
                    | StoreError::NoSpace(_)
                    | StoreError::Broken
                    | StoreError::ShardUnavailable { .. }
                    | StoreError::Backpressure
            ),
            "storage failure must surface typed, got {e}"
        );
    };
    let store = match ShardedStore::open(Arc::new(vfs.clone()), opts()) {
        Ok(store) => store,
        Err(e) => {
            // An injection during open (manifest commit, shard recovery)
            // fails the open as a whole, before any handle is usable.
            assert!(
                matches!(e, StoreError::Io(_) | StoreError::NoSpace(_)),
                "open failure must surface typed, got {e}"
            );
            log.errors += 1;
            return log;
        }
    };
    for op in workload() {
        match op {
            Op::Append(record) => {
                let s = store.shard_of_record(&record);
                match store.append(&record) {
                    Ok(()) => log.acked[s].push(record),
                    Err(e) => {
                        assert_typed(&e);
                        log.errors += 1;
                    }
                }
            }
            Op::AppendSynced(record) => {
                let s = store.shard_of_record(&record);
                match store.append_synced(&record) {
                    Ok(()) => {
                        log.acked[s].push(record);
                        // The sync committed everything queued on this shard.
                        log.durable[s] = log.acked[s].len();
                    }
                    Err(e) => {
                        assert_typed(&e);
                        log.errors += 1;
                    }
                }
            }
            Op::Flush => match store.flush() {
                Ok(()) => {
                    // Ok means every *healthy* shard committed; a sick
                    // shard is skipped (read-only until reopen), so its
                    // acked-but-unsynced tail is not durable — the fleet
                    // layer re-derives those sessions after reopen.
                    for s in 0..SHARDS as usize {
                        if store.shard_health(s) == ShardHealth::Healthy {
                            log.durable[s] = log.acked[s].len();
                        }
                    }
                }
                Err(e) => {
                    // A partial flush may have committed some shards; the
                    // floor stays conservative — durability never claims
                    // more than an acknowledged sync.
                    assert_typed(&e);
                    log.errors += 1;
                }
            },
        }
    }
    log
}

/// The state reached by applying the first `n` acked records of a shard.
fn replayed(acked: &[Record], n: usize) -> StoreState {
    let mut state = StoreState::new(HISTORY_CAPACITY);
    for (i, record) in acked.iter().take(n).enumerate() {
        state.apply(i as u64 + 1, record).expect("acked workload must be legal");
    }
    state
}

/// Invariants 1–3 at one injection point.
fn check_error_point(plan: ErrorInjection, label: &str) {
    let vfs = SimVfs::new();
    vfs.inject(plan);
    let log = run_with_errors(&vfs);

    // The process survived; now the power fails too. Only synced bytes
    // survive — exactly the durability the store acknowledged.
    let disk = vfs.power_cut(TornMode::Drop);
    let store = ShardedStore::open(Arc::new(disk), opts())
        .unwrap_or_else(|e| panic!("{label}: reopen on a healthy disk must succeed: {e}"));
    let recovered = store.shard_states();
    for (s, state) in recovered.iter().enumerate() {
        let n = state.last_seq as usize;
        assert!(
            n >= log.durable[s],
            "{label}: shard {s} acknowledged {} durable records but recovered {n}",
            log.durable[s]
        );
        assert!(
            n <= log.acked[s].len(),
            "{label}: shard {s} recovered {n} records but only {} were acknowledged",
            log.acked[s].len()
        );
        assert_eq!(
            *state,
            replayed(&log.acked[s], n),
            "{label}: shard {s} state is not a committed prefix of its acknowledged records"
        );
    }
}

#[test]
fn an_error_at_every_op_leaves_acknowledged_durability_intact() {
    // Probe: how many mutating ops does a clean run issue (open included)?
    let probe = SimVfs::new();
    let clean = run_with_errors(&probe);
    assert_eq!(clean.errors, 0, "clean run must see no errors");
    assert!(clean.acked.iter().all(|a| !a.is_empty()), "workload must touch every shard");
    let total_ops = probe.ops();
    assert!(total_ops > 30, "workload should exercise many error points, got {total_ops}");

    for k in 0..total_ops {
        for kind in INJECTED_ERROR_KINDS {
            check_error_point(ErrorInjection::at_op(k, kind), &format!("one-shot {kind:?} at op {k}"));
            check_error_point(ErrorInjection::at_op(k, kind).sticky(), &format!("sticky {kind:?} at op {k}"));
        }
    }
}

#[test]
fn an_error_at_every_read_is_typed_and_loses_nothing() {
    // Commit the workload cleanly, then fail each *read* of the reopen
    // path (manifest, snapshots, WAL replay) in both arities: the open
    // either succeeds on the full state or fails typed, and a clean
    // retry always lands on the full state.
    let base = SimVfs::new();
    run_with_errors(&base);
    let committed = base.power_cut(TornMode::Drop);
    let reads_before = committed.reads();
    let final_states = ShardedStore::open(Arc::new(committed.clone()), opts()).unwrap().shard_states();
    let total_reads = committed.reads() - reads_before;
    assert!(total_reads > 0, "reopen must read the disk");

    for r in 0..total_reads {
        for kind in INJECTED_ERROR_KINDS {
            for sticky in [false, true] {
                let disk = committed.power_cut(TornMode::Keep);
                let mut plan = ErrorInjection::at_read(r, kind);
                if sticky {
                    plan = plan.sticky();
                }
                let label = format!("read {r} {kind:?} sticky={sticky}");
                match ShardedStore::open(Arc::new(disk.clone()), opts()) {
                    Ok(store) => assert_eq!(store.shard_states(), final_states, "{label}: partial state"),
                    Err(e) => assert!(
                        matches!(e, StoreError::Io(_) | StoreError::NoSpace(_)),
                        "{label}: open failure must be typed, got {e}"
                    ),
                }
                disk.clear_injections("");
                let store = ShardedStore::open(Arc::new(disk), opts())
                    .unwrap_or_else(|e| panic!("{label}: clean retry must succeed: {e}"));
                assert_eq!(store.shard_states(), final_states, "{label}: retry lost records");
            }
        }
    }
}

#[test]
fn a_dying_shard_degrades_alone_and_rejoins_via_reopen() {
    let vfs = SimVfs::new();
    let store = ShardedStore::open(Arc::new(vfs.clone()), opts()).unwrap();
    // Shard 1 (ids 2, 3, 10, 11, … under range width 2) loses its disk.
    vfs.inject(ErrorInjection::on_prefix("shard-001/", InjectedErrorKind::Eio).sticky());

    let sick_ids: Vec<u32> = (0..16).filter(|id| store.shard_of_id(*id) == 1).collect();
    let mut refused = 0;
    for id in 0..16u32 {
        match store.append_synced(&Record::DeviceEnrolled { id }) {
            Ok(()) => assert_ne!(store.shard_of_id(id), 1, "device {id} landed on the dead shard"),
            Err(e) => {
                refused += 1;
                assert_eq!(store.shard_of_id(id), 1, "healthy shard refused device {id}: {e}");
                assert!(
                    matches!(e, StoreError::Io(_) | StoreError::ShardUnavailable { .. }),
                    "dead-shard refusal must be typed, got {e}"
                );
            }
        }
    }
    assert_eq!(refused, sick_ids.len(), "exactly the dead shard's devices are refused");
    assert_eq!(store.shard_health(1), ShardHealth::Degraded, "first failure degrades the shard");
    for s in [0usize, 2, 3] {
        assert_eq!(store.shard_health(s), ShardHealth::Healthy, "shard {s} caught the neighbour's disease");
    }
    let stats = store.stats();
    assert_eq!((stats.shards_total, stats.shards_degraded, stats.shards_failed), (SHARDS, 1, 0));

    // Reopening against the still-dead disk fails typed and marks Failed.
    assert!(store.reopen_shard(1).is_err(), "reopen against a dead disk must fail");
    assert_eq!(store.shard_health(1), ShardHealth::Failed);
    assert_eq!(store.stats().shards_failed, 1);

    // The operator replaces the disk; reopen rejoins the shard Healthy
    // and it accepts traffic again.
    vfs.clear_injections("shard-001/");
    store.reopen_shard(1).expect("reopen after the disk is back");
    assert_eq!(store.shard_health(1), ShardHealth::Healthy);
    for id in &sick_ids {
        store
            .append_synced(&Record::DeviceEnrolled { id: *id })
            .unwrap_or_else(|e| panic!("rejoined shard must accept device {id}: {e}"));
    }
    // Every healthy-shard admission survived the whole episode.
    let reopened = ShardedStore::open(Arc::new(vfs.power_cut(TornMode::Drop)), opts()).unwrap();
    let mut seen = 0;
    reopened.for_each_device(|_, _| seen += 1);
    assert_eq!(seen, 16, "all 16 admissions durable after degrade + reopen");
}

#[test]
fn a_failed_fsync_poisons_the_handle_until_reopen() {
    // fsyncgate: after a failed sync the dirty pages may be gone, so the
    // store must never report durability off a retried fsync on the same
    // handle — the shard goes read-only and only reopen_shard (a fresh
    // handle + recovery) brings it back.
    let vfs = SimVfs::new();
    let store = ShardedStore::open(Arc::new(vfs.clone()), opts()).unwrap();
    store.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
    vfs.inject(ErrorInjection::on_prefix("shard-001/", InjectedErrorKind::SyncFail));
    assert!(store.flush().is_err(), "the injected fsync failure must surface");
    assert_eq!(store.shard_health(1), ShardHealth::Degraded);
    // The injection was one-shot — the disk would accept a retried fsync —
    // but the handle is poisoned: the store refuses instead of retrying.
    assert!(
        matches!(
            store.append_synced(&Record::DeviceEnrolled { id: 3 }),
            Err(StoreError::ShardUnavailable { shard: 1 })
        ),
        "poisoned shard must refuse, not retry the fsync"
    );
    assert!(store.flush().is_ok(), "sick shards are skipped, not retried");
    store.reopen_shard(1).expect("reopen recovers on a fresh handle");
    store
        .append_synced(&Record::DeviceEnrolled { id: 3 })
        .expect("rejoined shard accepts traffic");
}

// --------------------------------------------------------------- proptest

proptest! {
    /// The fault model is a pure function of its seed: the same
    /// `(seed, count, bound)` always derives the same plan, and every
    /// trigger respects the bound.
    #[test]
    fn error_plans_are_pure_functions_of_their_seed(
        seed in any::<u64>(),
        count in 0usize..32,
        bound in 1u64..400,
    ) {
        let a = error_plan(seed, count, bound);
        let b = error_plan(seed, count, bound);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), count);
        for inj in &a {
            let at = inj.at_op.or(inj.at_read).expect("derived plans always have a trigger");
            prop_assert!(at < bound, "trigger {at} outside bound {bound}");
        }
    }

    /// A seeded plan driven against the same workload twice produces an
    /// identical failure schedule: same acknowledged records, same
    /// durability floors, same error count, same op/read/failure
    /// counters. This is what makes a failing matrix seed reproducible.
    #[test]
    fn seeded_failure_schedules_replay_identically(seed in any::<u64>(), count in 1usize..5) {
        let drive = |vfs: &SimVfs| {
            for inj in error_plan(seed, count, 60) {
                vfs.inject(inj);
            }
            run_with_errors(vfs)
        };
        let first_vfs = SimVfs::new();
        let first = drive(&first_vfs);
        let second_vfs = SimVfs::new();
        let second = drive(&second_vfs);
        prop_assert_eq!(first, second);
        prop_assert_eq!(first_vfs.ops(), second_vfs.ops());
        prop_assert_eq!(first_vfs.reads(), second_vfs.reads());
        prop_assert_eq!(first_vfs.injected_failures(), second_vfs.injected_failures());
    }

    /// Sticky-vs-one-shot semantics, pinned: a one-shot injection fails
    /// exactly one matching operation; the same injection made sticky
    /// fails every matching operation until cleared.
    #[test]
    fn sticky_latches_where_one_shot_retires(kind_idx in 0usize..3) {
        let kind = INJECTED_ERROR_KINDS[kind_idx];
        let one_shot = SimVfs::new();
        let store = ShardedStore::open(Arc::new(one_shot.clone()), opts()).unwrap();
        one_shot.inject(ErrorInjection::on_prefix("shard-000/", kind));
        prop_assert!(store.append_synced(&Record::DeviceEnrolled { id: 0 }).is_err());
        prop_assert_eq!(one_shot.injected_failures(), 1);
        // The fault was transient, but the health machine still demands
        // an explicit reopen — silent self-healing would hide the error.
        prop_assert_eq!(store.shard_health(0), ShardHealth::Degraded);
        store.reopen_shard(0).expect("reopen after a transient fault");
        prop_assert!(store.append_synced(&Record::DeviceEnrolled { id: 0 }).is_ok());
        prop_assert_eq!(one_shot.injected_failures(), 1, "one-shot fired exactly once");

        let sticky = SimVfs::new();
        let store = ShardedStore::open(Arc::new(sticky.clone()), opts()).unwrap();
        sticky.inject(ErrorInjection::on_prefix("shard-000/", kind).sticky());
        prop_assert!(store.append_synced(&Record::DeviceEnrolled { id: 0 }).is_err());
        prop_assert!(store.reopen_shard(0).is_err(), "sticky fault keeps killing the reopen");
        prop_assert_eq!(store.shard_health(0), ShardHealth::Failed);
        prop_assert!(sticky.injected_failures() >= 2, "sticky keeps firing");
        sticky.clear_injections("");
        store.reopen_shard(0).expect("reopen once the fault is cleared");
        prop_assert!(store.append_synced(&Record::DeviceEnrolled { id: 0 }).is_ok());
    }
}
