//! The durability proof: exhaustive crash-point enumeration and
//! randomized WAL corruption.
//!
//! The matrix test runs one synthetic campaign workload crash-free to
//! count the backend operations it performs, then re-runs it crashing at
//! *every* operation index under *every* torn-tail mode. After each crash
//! the store is reopened and three invariants are checked against the
//! shadow history of the crash-free run:
//!
//! 1. **Committed prefix** — the recovered state equals the state after
//!    some prefix of the workload's records, and that prefix covers every
//!    append the workload saw acknowledged before the crash.
//! 2. **No CRP re-issue** — every challenge whose consumption was
//!    acknowledged is still spent after recovery.
//! 3. **Monotone lifecycle** — implied by (1): prefix states only ever
//!    contain transitions the state machine admitted.
//!
//! A second enumeration crashes *recovery itself* at every operation and
//! proves a subsequent clean open still lands on the same state.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use pufatt_store::record::{OutcomeRec, Record, StoredStatus, LATENCY_SLOTS};
use pufatt_store::state::StoreState;
use pufatt_store::wal;
use pufatt_store::{DurableStore, SimVfs, StoreError, StoreOptions, TORN_MODES};
use std::sync::Arc;

const HISTORY_CAPACITY: usize = 2;

fn opts() -> StoreOptions {
    StoreOptions {
        history_capacity: HISTORY_CAPACITY,
        ..StoreOptions::default()
    }
}

fn outcome(accepted: bool) -> OutcomeRec {
    OutcomeRec {
        accepted,
        response_ok: accepted,
        time_ok: true,
        timed_out: false,
        attempts: if accepted { 1 } else { 2 },
        elapsed_bits: 0.25f64.to_bits(),
        retried: u32::from(!accepted),
        dropped: 0,
        lost: false,
        latency_slot: 5,
        crp_hits: 56,
        crp_misses: 8,
    }
}

/// A small campaign exercising every record type, in an order the state
/// machine admits: enrollment, a lifecycle walk to revocation, a refusal,
/// CRP consumption, re-enrollment, a fault, and an abandonment.
fn workload() -> Vec<Record> {
    use Record::*;
    vec![
        Meta {
            config_hash: 0xC0FFEE,
            devices: 4,
            sessions_per_device: 4,
            seed: 9,
        },
        DeviceEnrolled { id: 0 },
        DeviceEnrolled { id: 1 },
        DeviceEnrolled { id: 2 },
        DeviceEnrolled { id: 3 },
        SessionClosed {
            id: 0,
            outcome: outcome(true),
            status: StoredStatus::Active,
            fails: 0,
            succs: 1,
        },
        CrpConsumed { a: 7, b: 9 },
        SessionClosed {
            id: 1,
            outcome: outcome(false),
            status: StoredStatus::Active,
            fails: 1,
            succs: 0,
        },
        SessionClosed {
            id: 1,
            outcome: outcome(false),
            status: StoredStatus::Quarantined,
            fails: 0,
            succs: 0,
        },
        SessionClosed {
            id: 1,
            outcome: outcome(false),
            status: StoredStatus::Quarantined,
            fails: 1,
            succs: 0,
        },
        SessionClosed {
            id: 1,
            outcome: outcome(false),
            status: StoredStatus::Revoked,
            fails: 2,
            succs: 0,
        },
        SessionRefused { id: 1 },
        CrpConsumed { a: 8, b: 10 },
        DeviceReEnrolled { id: 1 },
        SessionClosed {
            id: 1,
            outcome: outcome(true),
            status: StoredStatus::Active,
            fails: 0,
            succs: 1,
        },
        SessionFault { id: 2, retried: 1, dropped: 2, crp_hits: 8, crp_misses: 16 },
        StatusChanged { id: 2, status: StoredStatus::Quarantined },
        DeviceAbandoned { id: 3 },
        CrpConsumed { a: 11, b: 12 },
        SessionClosed {
            id: 0,
            outcome: outcome(true),
            status: StoredStatus::Active,
            fails: 0,
            succs: 2,
        },
    ]
}

/// The states reached after applying each prefix of the workload:
/// `prefixes()[n]` is the state once records `0..n` are committed.
fn prefix_states(records: &[Record]) -> Vec<StoreState> {
    let mut states = Vec::with_capacity(records.len() + 1);
    let mut state = StoreState::new(HISTORY_CAPACITY);
    states.push(state.clone());
    for (i, record) in records.iter().enumerate() {
        state.apply(i as u64 + 1, record).expect("workload must be legal");
        states.push(state.clone());
    }
    states
}

/// Runs the workload against `vfs`, returning how many appends were
/// acknowledged (committed from the caller's point of view) before the
/// first failure.
fn run_workload(vfs: &SimVfs) -> usize {
    let store = match DurableStore::open(Arc::new(vfs.clone()), opts()) {
        Ok(store) => store,
        Err(_) => return 0,
    };
    let mut acked = 0usize;
    for record in workload() {
        match store.append_synced(&record) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

#[test]
fn workload_is_legal_and_replayable() {
    let vfs = SimVfs::new();
    let total = workload().len();
    assert_eq!(run_workload(&vfs), total, "crash-free workload commits fully");
    let store = DurableStore::open(Arc::new(vfs), opts()).unwrap();
    assert_eq!(store.state(), prefix_states(&workload())[total], "replay lands on the final prefix state");
}

/// Invariants 1–3 at one crash point, one torn mode.
fn check_crash_point(k: u64, mode: pufatt_store::TornMode) {
    let records = workload();
    let prefixes = prefix_states(&records);

    let vfs = SimVfs::crashing_at(k);
    let acked = run_workload(&vfs);
    let disk = vfs.power_cut(mode);
    let store = DurableStore::open(Arc::new(disk.clone()), opts())
        .unwrap_or_else(|e| panic!("recovery must succeed at crash op {k} ({mode:?}): {e}"));

    // Invariant 1: committed prefix. The recovered sequence number names
    // the prefix; the full state must equal that prefix's state, and the
    // prefix must cover every acknowledged append (an ack means the sync
    // completed, so the record is on stable storage whatever the torn
    // mode did to the unsynced tail).
    let state = store.state();
    let n = state.last_seq as usize;
    assert!(n <= records.len(), "recovered seq {n} beyond the workload at crash op {k} ({mode:?})");
    assert!(n >= acked, "crash op {k} ({mode:?}): {acked} appends acknowledged but only {n} recovered");
    assert_eq!(state, prefixes[n], "crash op {k} ({mode:?}): recovered state is not a committed prefix");

    // Invariant 2: no CRP re-issue — every acknowledged consumption is
    // still spent after recovery.
    for record in records.iter().take(acked) {
        if let Record::CrpConsumed { a, b } = record {
            assert!(store.is_spent(*a, *b), "crash op {k} ({mode:?}): consumed CRP ({a},{b}) forgotten");
        }
    }

    // Invariant 3 (monotone lifecycle) is implied by invariant 1, but
    // cross-check the tally the fleet layer reads.
    assert_eq!(store.status_tally(), prefixes[n].status_tally());

    // Recovery must also have left a self-contained snapshot: a second
    // clean open replays nothing new and lands on the same state.
    drop(store);
    let reopened = DurableStore::open(Arc::new(disk), opts()).unwrap();
    assert_eq!(reopened.state(), prefixes[n], "second open after recovery diverged at op {k} ({mode:?})");
}

#[test]
fn every_crash_point_recovers_a_committed_prefix() {
    // Count the backend operations of a crash-free run, then crash at
    // every single one of them, under every torn-tail mode. Exhaustive by
    // construction: a crash index past the total is the crash-free case.
    let probe = SimVfs::new();
    let total_ops = {
        run_workload(&probe);
        probe.ops()
    };
    assert!(total_ops > 40, "workload should exercise many crash points, got {total_ops}");
    for k in 0..=total_ops {
        for mode in TORN_MODES {
            check_crash_point(k, mode);
        }
    }
}

#[test]
fn crashes_during_recovery_lose_nothing() {
    // Build a fully committed image, then crash the *recovery* (open
    // replays the WAL, writes a fresh snapshot, compacts) at every
    // operation. Whatever recovery was doing when it died, a clean open
    // afterwards must land on the full workload state.
    let records = workload();
    let final_state = prefix_states(&records)[records.len()].clone();
    let base = SimVfs::new();
    run_workload(&base);

    let recovery_ops = {
        let probe = base.power_cut(pufatt_store::TornMode::Keep);
        let before = probe.ops();
        DurableStore::open(Arc::new(probe.clone()), opts()).unwrap();
        probe.ops() - before
    };
    assert!(recovery_ops > 0);
    for k in 0..recovery_ops {
        for mode in TORN_MODES {
            let disk = base.power_cut(pufatt_store::TornMode::Keep);
            disk.set_crash_at(Some(disk.ops() + k));
            match DurableStore::open(Arc::new(disk.clone()), opts()) {
                Ok(store) => assert_eq!(store.state(), final_state),
                Err(StoreError::Crashed) => {}
                Err(e) => panic!("recovery crash at op {k} must be Crashed, got {e}"),
            }
            let after = disk.power_cut(mode);
            let store = DurableStore::open(Arc::new(after), opts())
                .unwrap_or_else(|e| panic!("clean open after recovery crash {k} ({mode:?}): {e}"));
            assert_eq!(store.state(), final_state, "recovery crash at op {k} ({mode:?}) lost records");
        }
    }
}

// --------------------------------------------------------------- proptest

proptest! {
    /// Randomized counterpart of the exhaustive frame tests: any single
    /// truncation of a valid log yields a clean committed prefix, never
    /// garbage and never an error.
    #[test]
    fn truncation_recovers_a_frame_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut image = wal::WAL_MAGIC.to_vec();
        let mut offsets = vec![image.len()];
        for p in &payloads {
            wal::encode_frame(p, &mut image);
            offsets.push(image.len());
        }
        let cut = 8 + ((image.len() - 8) as f64 * cut_fraction) as usize;
        let recovered = wal::recover(Some(&image[..cut])).unwrap();
        // The recovered frames are exactly the ones wholly inside the cut.
        let expect = offsets.iter().filter(|&&end| end <= cut).count() - 1;
        prop_assert_eq!(recovered.payloads.len(), expect);
        for (got, want) in recovered.payloads.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(recovered.torn_tail, cut > offsets[expect]);
    }

    /// Flipping any single bit anywhere in the frame area still recovers
    /// a prefix of the original payloads (possibly shorter — the damaged
    /// frame and everything after it are discarded; a flip inside a
    /// payload must kill that frame, never corrupt it silently).
    #[test]
    fn bit_flips_never_yield_corrupt_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..6),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut image = wal::WAL_MAGIC.to_vec();
        for p in &payloads {
            wal::encode_frame(p, &mut image);
        }
        let pos = 8 + flip_pos % (image.len() - 8);
        image[pos] ^= 1 << flip_bit;
        let recovered = wal::recover(Some(&image)).unwrap();
        prop_assert!(recovered.payloads.len() <= payloads.len());
        for (got, want) in recovered.payloads.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want, "recovered payloads must be an exact prefix");
        }
    }

    /// Encode/decode round-trip for every record type under arbitrary
    /// field values the codec admits.
    #[test]
    fn record_roundtrip(seq in any::<u64>(), tag in 0usize..10, a in any::<u64>(), b in any::<u64>(),
                        id in any::<u32>(), small in any::<u32>(), flag in any::<bool>(),
                        slot in 0u8..(LATENCY_SLOTS as u8)) {
        let out = OutcomeRec {
            accepted: flag,
            response_ok: !flag,
            time_ok: flag,
            timed_out: !flag,
            attempts: small,
            elapsed_bits: a,
            retried: small,
            dropped: small ^ 1,
            lost: flag,
            latency_slot: slot,
            crp_hits: small ^ 2,
            crp_misses: small ^ 3,
        };
        let record = match tag {
            0 => Record::Meta { config_hash: a, devices: id, sessions_per_device: small, seed: b },
            1 => Record::DeviceEnrolled { id },
            2 => Record::DeviceReEnrolled { id },
            3 => Record::StatusChanged { id, status: StoredStatus::Quarantined },
            4 => Record::SessionClosed { id, outcome: out, status: StoredStatus::Active, fails: small, succs: small },
            5 => Record::SessionRefused { id },
            6 => Record::SessionFault { id, retried: small, dropped: small, crp_hits: small ^ 2, crp_misses: small ^ 3 },
            7 => Record::DeviceAbandoned { id },
            8 => Record::CrpConsumed { a, b },
            _ => Record::DeviceCursor {
                id,
                events_done: small,
                session_pos: a,
                noise_pos: b,
                noise_evals: a ^ b,
                tamper_parity: flag,
            },
        };
        let mut buf = Vec::new();
        record.encode(seq, &mut buf);
        let (got_seq, got) = Record::decode(&buf).unwrap();
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got, record);
    }
}
