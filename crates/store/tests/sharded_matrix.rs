//! Crash-point enumeration for the sharded, group-committed store.
//!
//! The single-store crash matrix (`crash_matrix.rs`) proves recovery
//! under fsync-per-record. This matrix proves the two properties the
//! sharded layer adds:
//!
//! 1. **Per-shard committed prefix under group commit** — a workload of
//!    unsynced appends punctuated by flushes is crashed at *every*
//!    backend operation under every torn-tail mode; after recovery each
//!    shard's state equals the state after some prefix of the records
//!    routed to it, and that prefix covers every record a successful
//!    flush (or synced append) made durable.
//! 2. **Enrollment atomicity** — a synced enrollment crashed at any
//!    operation leaves the device either fully admitted or absent, and
//!    an acknowledged enrollment is never lost.
//!
//! A third enumeration crashes the sharded *open* itself (manifest
//! commit + per-shard recovery) at every operation and proves a clean
//! open afterwards still lands on the full state.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::state::StoreState;
use pufatt_store::{ShardedOptions, ShardedStore, SimVfs, StoreError, TORN_MODES};
use std::sync::Arc;

const HISTORY_CAPACITY: usize = 2;
const SHARDS: u32 = 4;
const RANGE_WIDTH: u32 = 2;

fn opts() -> ShardedOptions {
    ShardedOptions {
        history_capacity: HISTORY_CAPACITY,
        shards: SHARDS,
        range_width: RANGE_WIDTH,
        commit_queue_limit: 0,
        compact_wal_bytes: 0,
    }
}

fn outcome(accepted: bool) -> OutcomeRec {
    OutcomeRec {
        accepted,
        response_ok: accepted,
        time_ok: true,
        timed_out: false,
        attempts: 1,
        elapsed_bits: 0.25f64.to_bits(),
        retried: 0,
        dropped: 0,
        lost: false,
        latency_slot: 5,
        crp_hits: 4,
        crp_misses: 2,
    }
}

/// One step of the workload: a group-commit append, a synced append, or
/// an explicit flush (standing in for the committer's tick).
enum Op {
    Append(Record),
    AppendSynced(Record),
    Flush,
}

/// Exercises every record type across all four shards with group-commit
/// batches of varying sizes between flushes.
fn workload() -> Vec<Op> {
    use Record::*;
    let closed = |id, ok, status, fails, succs| SessionClosed { id, outcome: outcome(ok), status, fails, succs };
    vec![
        Op::AppendSynced(Meta {
            config_hash: 0xABCD,
            devices: 8,
            sessions_per_device: 2,
            seed: 3,
        }),
        Op::Append(DeviceEnrolled { id: 0 }),
        Op::Append(DeviceEnrolled { id: 2 }),
        Op::Append(DeviceEnrolled { id: 4 }),
        Op::Flush,
        Op::Append(DeviceEnrolled { id: 6 }),
        Op::AppendSynced(DeviceEnrolled { id: 1 }),
        Op::Append(closed(0, true, StoredStatus::Active, 0, 1)),
        Op::Append(DeviceCursor {
            id: 0,
            events_done: 1,
            session_pos: 40,
            noise_pos: 640,
            noise_evals: 32,
            tamper_parity: false,
        }),
        Op::Append(CrpConsumed { a: 7, b: 9 }),
        Op::Flush,
        Op::Append(closed(2, false, StoredStatus::Active, 1, 0)),
        Op::Append(SessionFault { id: 4, retried: 1, dropped: 2, crp_hits: 0, crp_misses: 8 }),
        Op::Append(StatusChanged { id: 2, status: StoredStatus::Revoked }),
        Op::Append(SessionRefused { id: 2 }),
        Op::Append(DeviceCursor {
            id: 2,
            events_done: 2,
            session_pos: 80,
            noise_pos: 1280,
            noise_evals: 64,
            tamper_parity: true,
        }),
        Op::Append(DeviceReEnrolled { id: 2 }),
        Op::Append(DeviceAbandoned { id: 6 }),
        Op::Flush,
        Op::Append(closed(1, true, StoredStatus::Active, 0, 1)),
        Op::AppendSynced(CrpConsumed { a: 8, b: 10 }),
        Op::Append(closed(0, true, StoredStatus::Active, 0, 2)),
    ]
}

/// Shadow routing: mirror of the store's record routing, checked against
/// `shard_of_record` on a live store before use.
fn shadow_states(store: &ShardedStore, durable_counts: &[usize]) -> Vec<StoreState> {
    let mut states: Vec<StoreState> = (0..SHARDS).map(|_| StoreState::new(HISTORY_CAPACITY)).collect();
    let mut applied = vec![0usize; SHARDS as usize];
    for op in workload() {
        let record = match op {
            Op::Append(r) | Op::AppendSynced(r) => r,
            Op::Flush => continue,
        };
        let s = store.shard_of_record(&record);
        if applied[s] < durable_counts[s] {
            let seq = states[s].last_seq + 1;
            states[s].apply(seq, &record).expect("workload must be legal");
            applied[s] += 1;
        }
    }
    states
}

/// Runs the workload; returns per-shard counts of records known durable
/// (covered by a successful flush or synced append) when the run ended.
fn run_workload(vfs: &SimVfs) -> Vec<usize> {
    let mut appended = vec![0usize; SHARDS as usize];
    let mut durable = vec![0usize; SHARDS as usize];
    let store = match ShardedStore::open(Arc::new(vfs.clone()), opts()) {
        Ok(store) => store,
        Err(_) => return durable,
    };
    for op in workload() {
        match op {
            Op::Append(record) => {
                let s = store.shard_of_record(&record);
                if store.append(&record).is_err() {
                    break;
                }
                appended[s] += 1;
            }
            Op::AppendSynced(record) => {
                let s = store.shard_of_record(&record);
                if store.append_synced(&record).is_err() {
                    break;
                }
                appended[s] += 1;
                // The sync committed everything queued on this shard.
                durable[s] = appended[s];
            }
            Op::Flush => {
                if store.flush().is_err() {
                    break;
                }
                durable.copy_from_slice(&appended);
            }
        }
    }
    durable
}

#[test]
fn workload_is_legal_and_replayable() {
    let vfs = SimVfs::new();
    let durable = run_workload(&vfs);
    let records = workload().iter().filter(|op| !matches!(op, Op::Flush)).count();
    assert!(durable.iter().sum::<usize>() <= records);
    // No power cut intervened, so a reopen sees even the unflushed tail.
    let store = ShardedStore::open(Arc::new(vfs), opts()).unwrap();
    assert_eq!(store.meta().unwrap().devices, 8);
    assert_eq!(store.status_tally().active, 5, "devices 0,1,2,4,6 all end Active");
    assert!(store.is_spent(7, 9));
    assert!(store.is_spent(8, 10));
    let d0 = store.device(0).unwrap();
    assert_eq!(d0.events_seen, 2);
    assert_eq!(d0.events.len(), 1, "the cursor dropped the covered event");
    assert_eq!(d0.cursor.unwrap().events_done, 1);
    assert!(store.device(6).unwrap().abandoned);
}

/// Invariants 1–2 at one crash point, one torn mode.
fn check_crash_point(k: u64, mode: pufatt_store::TornMode) {
    let vfs = SimVfs::crashing_at(k);
    let durable = run_workload(&vfs);
    let disk = vfs.power_cut(mode);
    let store = ShardedStore::open(Arc::new(disk.clone()), opts())
        .unwrap_or_else(|e| panic!("recovery must succeed at crash op {k} ({mode:?}): {e}"));

    // Invariant 1: each shard recovered a committed prefix of its own
    // record stream covering everything a flush made durable.
    let recovered = store.shard_states();
    let counts: Vec<usize> = recovered.iter().map(|s| s.last_seq as usize).collect();
    for (s, (&n, &floor)) in counts.iter().zip(durable.iter()).enumerate() {
        assert!(n >= floor, "crash op {k} ({mode:?}): shard {s} flushed {floor} records but recovered {n}");
    }
    let shadow = shadow_states(&store, &counts);
    for (s, (got, want)) in recovered.iter().zip(shadow.iter()).enumerate() {
        assert_eq!(got, want, "crash op {k} ({mode:?}): shard {s} state is not a committed prefix");
    }

    // Invariant 2: a second clean open lands on the same state (recovery
    // left self-contained snapshots on every shard).
    drop(store);
    let reopened = ShardedStore::open(Arc::new(disk), opts()).unwrap();
    assert_eq!(reopened.shard_states(), recovered, "second open after recovery diverged at op {k} ({mode:?})");
}

#[test]
fn every_crash_point_recovers_per_shard_committed_prefixes() {
    let probe = SimVfs::new();
    let total_ops = {
        run_workload(&probe);
        probe.ops()
    };
    assert!(total_ops > 40, "workload should exercise many crash points, got {total_ops}");
    for k in 0..=total_ops {
        for mode in TORN_MODES {
            check_crash_point(k, mode);
        }
    }
}

#[test]
fn online_enrollment_is_admitted_or_absent_at_every_crash_point() {
    // A base campaign is fully committed; then a batch of *online*
    // enrollments (synced appends, as the enrollment pipeline issues)
    // lands while session records flow. Crash everywhere: after
    // recovery every new device is fully admitted or absent — never a
    // device that exists with inconsistent state — and an enrollment
    // whose sync was acknowledged is always admitted.
    let base_ops = {
        let probe = SimVfs::new();
        let store = ShardedStore::open(Arc::new(probe.clone()), opts()).unwrap();
        for id in 0..4 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        probe.ops()
    };
    let enroll_run = |vfs: &SimVfs| -> Vec<u32> {
        let store = match ShardedStore::open(Arc::new(vfs.clone()), opts()) {
            Ok(store) => store,
            Err(_) => return Vec::new(),
        };
        let mut acked = Vec::new();
        for new_id in [9u32, 64, 65, 200] {
            if store.append_synced(&Record::DeviceEnrolled { id: new_id }).is_err() {
                break;
            }
            acked.push(new_id);
            // Interleave campaign traffic on the group-commit path.
            if store
                .append(&Record::SessionClosed {
                    id: 0,
                    outcome: outcome(true),
                    status: StoredStatus::Active,
                    fails: 0,
                    succs: 1,
                })
                .is_err()
            {
                break;
            }
        }
        let _ = store.flush();
        acked
    };
    let probe = SimVfs::new();
    {
        let setup = ShardedStore::open(Arc::new(probe.clone()), opts()).unwrap();
        for id in 0..4 {
            setup.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        setup.flush().unwrap();
    }
    let total_ops = {
        enroll_run(&probe);
        probe.ops()
    };
    assert!(total_ops > base_ops);
    for k in base_ops..=total_ops {
        for mode in TORN_MODES {
            let vfs = SimVfs::new();
            {
                let setup = ShardedStore::open(Arc::new(vfs.clone()), opts()).unwrap();
                for id in 0..4 {
                    setup.append(&Record::DeviceEnrolled { id }).unwrap();
                }
                setup.flush().unwrap();
            }
            vfs.set_crash_at(Some(k));
            let acked = enroll_run(&vfs);
            let disk = vfs.power_cut(mode);
            let store = ShardedStore::open(Arc::new(disk), opts())
                .unwrap_or_else(|e| panic!("recovery after enrollment crash {k} ({mode:?}): {e}"));
            for id in &acked {
                let device = store
                    .device(*id)
                    .unwrap_or_else(|| panic!("acked enrollment {id} lost at op {k} ({mode:?})"));
                assert_eq!(device.status, StoredStatus::Active);
            }
            for id in [9u32, 64, 65, 200] {
                if let Some(device) = store.device(id) {
                    // Fully admitted: a fresh Active device with no
                    // history — the single-record admit is atomic.
                    assert_eq!(device.status, StoredStatus::Active, "half-enrolled {id} at op {k}");
                    assert_eq!(device.events_seen, 0);
                    assert_eq!(device.outcomes_total, 0);
                }
            }
        }
    }
}

#[test]
fn crashes_during_sharded_open_lose_nothing() {
    // Fully commit the workload, then crash the sharded open (manifest
    // read + per-shard recovery, each writing fresh snapshots) at every
    // operation; a clean open afterwards must land on the full state.
    let base = SimVfs::new();
    run_workload(&base);
    let committed = base.power_cut(pufatt_store::TornMode::Drop);
    let final_states = ShardedStore::open(Arc::new(committed.clone()), opts()).unwrap().shard_states();

    let recovery_ops = {
        let probe = committed.power_cut(pufatt_store::TornMode::Keep);
        let before = probe.ops();
        ShardedStore::open(Arc::new(probe.clone()), opts()).unwrap();
        probe.ops() - before
    };
    assert!(recovery_ops > 0);
    for k in 0..recovery_ops {
        for mode in TORN_MODES {
            let disk = committed.power_cut(pufatt_store::TornMode::Keep);
            disk.set_crash_at(Some(disk.ops() + k));
            match ShardedStore::open(Arc::new(disk.clone()), opts()) {
                Ok(store) => assert_eq!(store.shard_states(), final_states),
                Err(StoreError::Crashed) => {}
                Err(e) => panic!("open crash at op {k} must be Crashed, got {e}"),
            }
            let after = disk.power_cut(mode);
            let store = ShardedStore::open(Arc::new(after), opts())
                .unwrap_or_else(|e| panic!("clean open after open-crash {k} ({mode:?}): {e}"));
            assert_eq!(store.shard_states(), final_states, "open crash at op {k} ({mode:?}) lost records");
        }
    }
}
