//! Typed WAL records and their binary codec.
//!
//! Every record starts with its monotonically increasing sequence number
//! (the snapshot/compaction coordination point: replay skips records a
//! snapshot already covers) followed by a tag byte and fixed-width
//! little-endian fields.
//!
//! **Secrecy rule:** records hold *public* protocol facts only — device
//! ids, lifecycle states, verdict booleans, challenge values (sent in the
//! clear during attestation anyway). PUF responses and helper data never
//! enter the log; [`Record::CrpConsumed`] stores the challenge alone, so
//! even a stolen state directory hands a modelling adversary nothing the
//! wire did not already expose.

use crate::StoreError;

/// Number of latency histogram slots mirrored from the fleet metrics
/// (log₂-bucketed microseconds).
pub const LATENCY_SLOTS: usize = 32;

/// Lifecycle state as persisted (mirrors the fleet registry's states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoredStatus {
    /// Eligible for attestation.
    Active,
    /// On probation after repeated failures.
    Quarantined,
    /// Out of service until re-enrollment.
    Revoked,
}

impl StoredStatus {
    fn to_byte(self) -> u8 {
        match self {
            StoredStatus::Active => 0,
            StoredStatus::Quarantined => 1,
            StoredStatus::Revoked => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, StoreError> {
        match b {
            0 => Ok(StoredStatus::Active),
            1 => Ok(StoredStatus::Quarantined),
            2 => Ok(StoredStatus::Revoked),
            other => Err(StoreError::Corrupt(format!("unknown status byte {other}"))),
        }
    }
}

/// One session's persisted outcome: the registry-visible verdict plus the
/// metric deltas the session contributed, so a recovered campaign rebuilds
/// its counters exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeRec {
    /// Whether the verifier accepted the final attempt.
    pub accepted: bool,
    /// Whether the final attempt's response matched.
    pub response_ok: bool,
    /// Whether the final attempt met the time bound.
    pub time_ok: bool,
    /// Whether the session exceeded the scheduler timeout.
    pub timed_out: bool,
    /// Attempts spent (1 = no retry).
    pub attempts: u32,
    /// Simulated end-to-end seconds, as IEEE-754 bits (exact roundtrip).
    pub elapsed_bits: u64,
    /// Retry increments the session contributed to the campaign counters.
    pub retried: u32,
    /// Protocol messages the channel ate during the session.
    pub dropped: u32,
    /// Whether the session died without a verdict (deadline/channel).
    pub lost: bool,
    /// Latency histogram slot the session landed in.
    pub latency_slot: u8,
    /// Verifier CRP-cache hits this session contributed.
    pub crp_hits: u32,
    /// Verifier CRP-cache misses (emulations) this session contributed.
    pub crp_misses: u32,
}

impl OutcomeRec {
    /// The simulated elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        f64::from_bits(self.elapsed_bits)
    }
}

/// Everything the store journals.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Identifies the campaign a state directory belongs to; resuming
    /// under a different configuration is refused instead of silently
    /// blending two campaigns.
    Meta {
        /// Fingerprint of the verdict-affecting configuration fields.
        config_hash: u64,
        /// Devices in the campaign.
        devices: u32,
        /// Sessions scheduled per device.
        sessions_per_device: u32,
        /// The campaign master seed.
        seed: u64,
    },
    /// A device entered the fleet as Active.
    DeviceEnrolled {
        /// The device id.
        id: u32,
    },
    /// A revoked device was explicitly trusted again.
    DeviceReEnrolled {
        /// The device id.
        id: u32,
    },
    /// A lifecycle transition (session-driven or manual). `status` is the
    /// post-transition state; legality is checked on replay.
    StatusChanged {
        /// The device id.
        id: u32,
        /// The state after the transition.
        status: StoredStatus,
    },
    /// A session ran to a verdict. Carries the post-transition lifecycle
    /// state and streak counters so replay restores the registry without
    /// re-deriving policy decisions.
    SessionClosed {
        /// The device id.
        id: u32,
        /// The session's verdict and metric deltas.
        outcome: OutcomeRec,
        /// Lifecycle state after the outcome was applied.
        status: StoredStatus,
        /// Consecutive-failure streak after the outcome.
        fails: u32,
        /// Consecutive-success streak after the outcome.
        succs: u32,
    },
    /// A session was refused up front (device revoked).
    SessionRefused {
        /// The device id.
        id: u32,
    },
    /// A session died in a device fault (no verdict, no outcome).
    SessionFault {
        /// The device id.
        id: u32,
        /// Retry increments counted before the fault.
        retried: u32,
        /// Messages dropped before the fault.
        dropped: u32,
        /// Verifier CRP-cache hits counted before the fault.
        crp_hits: u32,
        /// Verifier CRP-cache misses counted before the fault.
        crp_misses: u32,
    },
    /// Provisioning failed; the device runs no sessions this campaign.
    DeviceAbandoned {
        /// The device id.
        id: u32,
    },
    /// A challenge/response pair was consumed from a CRP database. Only
    /// the challenge (public) is stored — never the response.
    CrpConsumed {
        /// Challenge word A.
        a: u64,
        /// Challenge word B.
        b: u64,
    },
    /// A resume cursor: the deterministic generator positions a device's
    /// schedule had reached after its most recent journaled event. Resume
    /// fast-forwards the RNGs straight to these positions instead of
    /// replaying every prior session, making recovery time independent of
    /// campaign length. Positions are keystream offsets and evaluation
    /// counts — public scheduling facts, no response material.
    DeviceCursor {
        /// The device id.
        id: u32,
        /// Session events covered by this cursor (the index the live loop
        /// resumes from).
        events_done: u32,
        /// The session RNG's keystream word position.
        session_pos: u64,
        /// The device PUF noise RNG's keystream word position.
        noise_pos: u64,
        /// The device PUF's evaluation count (burst-fault scheduling).
        noise_evals: u64,
        /// Whether the mid-traversal tamper mark is present in the
        /// prover's memory (it persists across sessions once planted).
        tamper_parity: bool,
    },
}

// ------------------------------------------------------------------ codec

struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn flag(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
}

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StoreError::Corrupt("record truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn flag(&mut self) -> Result<bool, StoreError> {
        Ok(self.u8()? != 0)
    }

    pub(crate) fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt("trailing bytes after record".into()))
        }
    }
}

fn write_outcome(w: &mut Writer<'_>, o: &OutcomeRec) {
    w.flag(o.accepted);
    w.flag(o.response_ok);
    w.flag(o.time_ok);
    w.flag(o.timed_out);
    w.u32(o.attempts);
    w.u64(o.elapsed_bits);
    w.u32(o.retried);
    w.u32(o.dropped);
    w.flag(o.lost);
    w.u8(o.latency_slot);
    w.u32(o.crp_hits);
    w.u32(o.crp_misses);
}

pub(crate) fn read_outcome(r: &mut Reader<'_>) -> Result<OutcomeRec, StoreError> {
    Ok(OutcomeRec {
        accepted: r.flag()?,
        response_ok: r.flag()?,
        time_ok: r.flag()?,
        timed_out: r.flag()?,
        attempts: r.u32()?,
        elapsed_bits: r.u64()?,
        retried: r.u32()?,
        dropped: r.u32()?,
        lost: r.flag()?,
        latency_slot: r.u8()?,
        crp_hits: r.u32()?,
        crp_misses: r.u32()?,
    })
}

pub(crate) fn write_outcome_into(out: &mut Vec<u8>, o: &OutcomeRec) {
    write_outcome(&mut Writer(out), o);
}

impl Record {
    /// Encodes `seq` followed by the record body into a frame payload.
    pub fn encode(&self, seq: u64, out: &mut Vec<u8>) {
        let mut w = Writer(out);
        w.u64(seq);
        match self {
            Record::Meta { config_hash, devices, sessions_per_device, seed } => {
                w.u8(0);
                w.u64(*config_hash);
                w.u32(*devices);
                w.u32(*sessions_per_device);
                w.u64(*seed);
            }
            Record::DeviceEnrolled { id } => {
                w.u8(1);
                w.u32(*id);
            }
            Record::DeviceReEnrolled { id } => {
                w.u8(2);
                w.u32(*id);
            }
            Record::StatusChanged { id, status } => {
                w.u8(3);
                w.u32(*id);
                w.u8(status.to_byte());
            }
            Record::SessionClosed { id, outcome, status, fails, succs } => {
                w.u8(4);
                w.u32(*id);
                write_outcome(&mut w, outcome);
                w.u8(status.to_byte());
                w.u32(*fails);
                w.u32(*succs);
            }
            Record::SessionRefused { id } => {
                w.u8(5);
                w.u32(*id);
            }
            Record::SessionFault { id, retried, dropped, crp_hits, crp_misses } => {
                w.u8(6);
                w.u32(*id);
                w.u32(*retried);
                w.u32(*dropped);
                w.u32(*crp_hits);
                w.u32(*crp_misses);
            }
            Record::DeviceAbandoned { id } => {
                w.u8(7);
                w.u32(*id);
            }
            Record::CrpConsumed { a, b } => {
                w.u8(8);
                w.u64(*a);
                w.u64(*b);
            }
            Record::DeviceCursor {
                id,
                events_done,
                session_pos,
                noise_pos,
                noise_evals,
                tamper_parity,
            } => {
                w.u8(9);
                w.u32(*id);
                w.u32(*events_done);
                w.u64(*session_pos);
                w.u64(*noise_pos);
                w.u64(*noise_evals);
                w.flag(*tamper_parity);
            }
        }
    }

    /// Decodes a frame payload into `(seq, record)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on an unknown tag, truncated fields, or
    /// trailing bytes — a CRC-valid frame that does not decode is a format
    /// break, not a torn tail, and recovery refuses it.
    pub fn decode(payload: &[u8]) -> Result<(u64, Record), StoreError> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let record = match r.u8()? {
            0 => Record::Meta {
                config_hash: r.u64()?,
                devices: r.u32()?,
                sessions_per_device: r.u32()?,
                seed: r.u64()?,
            },
            1 => Record::DeviceEnrolled { id: r.u32()? },
            2 => Record::DeviceReEnrolled { id: r.u32()? },
            3 => Record::StatusChanged { id: r.u32()?, status: StoredStatus::from_byte(r.u8()?)? },
            4 => Record::SessionClosed {
                id: r.u32()?,
                outcome: read_outcome(&mut r)?,
                status: StoredStatus::from_byte(r.u8()?)?,
                fails: r.u32()?,
                succs: r.u32()?,
            },
            5 => Record::SessionRefused { id: r.u32()? },
            6 => Record::SessionFault {
                id: r.u32()?,
                retried: r.u32()?,
                dropped: r.u32()?,
                crp_hits: r.u32()?,
                crp_misses: r.u32()?,
            },
            7 => Record::DeviceAbandoned { id: r.u32()? },
            8 => Record::CrpConsumed { a: r.u64()?, b: r.u64()? },
            9 => Record::DeviceCursor {
                id: r.u32()?,
                events_done: r.u32()?,
                session_pos: r.u64()?,
                noise_pos: r.u64()?,
                noise_evals: r.u64()?,
                tamper_parity: r.flag()?,
            },
            tag => return Err(StoreError::Corrupt(format!("unknown record tag {tag}"))),
        };
        r.done()?;
        Ok((seq, record))
    }

    /// Persists the status byte for [`StoredStatus`] values embedded in
    /// snapshots.
    pub(crate) fn status_byte(status: StoredStatus) -> u8 {
        status.to_byte()
    }

    /// Parses a persisted status byte.
    pub(crate) fn status_from_byte(b: u8) -> Result<StoredStatus, StoreError> {
        StoredStatus::from_byte(b)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_outcome() -> OutcomeRec {
        OutcomeRec {
            accepted: true,
            response_ok: true,
            time_ok: false,
            timed_out: false,
            attempts: 2,
            elapsed_bits: 0.125f64.to_bits(),
            retried: 1,
            dropped: 3,
            lost: false,
            latency_slot: 17,
            crp_hits: 56,
            crp_misses: 8,
        }
    }

    fn samples() -> Vec<Record> {
        vec![
            Record::Meta {
                config_hash: 0xDEAD_BEEF,
                devices: 12,
                sessions_per_device: 4,
                seed: 77,
            },
            Record::DeviceEnrolled { id: 3 },
            Record::DeviceReEnrolled { id: 3 },
            Record::StatusChanged { id: 9, status: StoredStatus::Quarantined },
            Record::SessionClosed {
                id: 9,
                outcome: sample_outcome(),
                status: StoredStatus::Active,
                fails: 0,
                succs: 2,
            },
            Record::SessionRefused { id: 1 },
            Record::SessionFault { id: 2, retried: 1, dropped: 4, crp_hits: 16, crp_misses: 48 },
            Record::DeviceAbandoned { id: 5 },
            Record::CrpConsumed { a: u64::MAX, b: 0x0123_4567_89AB_CDEF },
            Record::DeviceCursor {
                id: 11,
                events_done: 3,
                session_pos: 1_024,
                noise_pos: u64::MAX / 3,
                noise_evals: 4_096,
                tamper_parity: true,
            },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for (i, rec) in samples().into_iter().enumerate() {
            let mut payload = Vec::new();
            rec.encode(i as u64 + 1, &mut payload);
            let (seq, decoded) = Record::decode(&payload).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_refused() {
        let mut payload = Vec::new();
        Record::DeviceEnrolled { id: 7 }.encode(1, &mut payload);
        for cut in 0..payload.len() {
            assert!(Record::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
        payload.push(0);
        assert!(matches!(Record::decode(&payload), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn unknown_tag_is_refused() {
        let mut payload = 1u64.to_le_bytes().to_vec();
        payload.push(200);
        assert!(matches!(Record::decode(&payload), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn records_never_carry_response_material() {
        // The codec's whole vocabulary: ids, statuses, verdict booleans,
        // counters, and challenge words. A CRP record is 25 bytes — seq,
        // tag, and the two public challenge words; no field exists that
        // could hold a response or helper bits.
        let mut payload = Vec::new();
        Record::CrpConsumed { a: 1, b: 2 }.encode(9, &mut payload);
        assert_eq!(payload.len(), 8 + 1 + 16);
    }
}
