//! The append-only write-ahead log: CRC32-framed, length-prefixed records.
//!
//! # On-disk format
//!
//! ```text
//! wal.log := MAGIC frames*
//! MAGIC   := "PUFATTW1"                      (8 bytes)
//! frame   := len:u32le  crc:u32le  payload   (len = payload length,
//!                                             crc  = CRC-32/IEEE of payload)
//! ```
//!
//! # Recovery
//!
//! [`recover`] walks frames from the front and stops at the first one
//! that fails *any* check — header short, length prefix torn, length
//! implausible, payload truncated, or CRC mismatch. Everything before the
//! stop point is the valid prefix; everything after is an
//! unsynced tail that a crash tore, truncated, or bit-rotted, and is
//! reported (not replayed) so the store can count it and rebuild the log
//! from the valid prefix. A frame is therefore *committed* exactly when
//! its bytes are fully on stable storage — the property the crash-matrix
//! tests enumerate.

use crate::vfs::Vfs;
use crate::StoreError;
use std::sync::Arc;

/// Identifies a WAL file (and its format revision).
pub const WAL_MAGIC: [u8; 8] = *b"PUFATTW1";

/// Upper bound on one frame's payload; anything larger in a length prefix
/// is corruption, not a record.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

const FRAME_HEADER: usize = 8; // len + crc

// ------------------------------------------------------------------ CRC32

/// CRC-32/IEEE (the zlib polynomial), table-driven, std-only.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------------ codec

/// Encodes one frame (length, CRC, payload) into `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Attempts to decode one frame at the front of `bytes`. Returns the
/// payload and the total frame length, or `None` if the bytes do not hold
/// a complete, checksum-valid frame (torn tail — stop here).
pub fn decode_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME_LEN {
        return None;
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let end = FRAME_HEADER.checked_add(len as usize)?;
    if bytes.len() < end {
        return None;
    }
    let payload = &bytes[FRAME_HEADER..end];
    (crc32(payload) == crc).then_some((payload, end))
}

// --------------------------------------------------------------- recovery

/// Streaming frame cursor over a WAL image: yields checksum-valid
/// payloads in append order without materialising them.
///
/// Recovery over a sharded store opens many logs at once; iterating
/// borrowed payloads keeps peak memory at one image per shard instead of
/// one image plus every decoded record. After the iterator is exhausted,
/// [`FrameIter::is_torn`] and [`FrameIter::valid_bytes`] report what the
/// scan concluded about the tail.
pub struct FrameIter<'a> {
    bytes: &'a [u8],
    offset: usize,
    stub_torn: bool,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let (payload, frame_len) = decode_frame(&self.bytes[self.offset..])?;
        self.offset += frame_len;
        Some(payload)
    }
}

impl FrameIter<'_> {
    /// Whether bytes remain past the last valid frame (or the file was a
    /// torn stub). Meaningful once iteration has stopped.
    pub fn is_torn(&self) -> bool {
        self.stub_torn || self.offset < self.bytes.len()
    }

    /// Bytes of the valid prefix scanned so far (magic + whole frames).
    pub fn valid_bytes(&self) -> u64 {
        self.offset as u64
    }
}

/// Opens a streaming scan over a WAL image. Header semantics match
/// [`recover`]: a missing or too-short file scans as empty (torn if any
/// bytes existed), a bare corrupted header scans as empty-and-torn, and a
/// wrong magic on a log that plainly held frames is refused as corruption.
pub fn frames(image: Option<&[u8]>) -> Result<FrameIter<'_>, StoreError> {
    let Some(bytes) = image else {
        return Ok(FrameIter { bytes: b"", offset: 0, stub_torn: false });
    };
    if bytes.len() < WAL_MAGIC.len() {
        // Creation itself was torn; nothing was ever committed.
        return Ok(FrameIter { bytes: b"", offset: 0, stub_torn: !bytes.is_empty() });
    }
    if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        if bytes.len() == WAL_MAGIC.len() {
            // A bare, corrupted header: the log died before its creation
            // sync, so no frame can have committed.
            return Ok(FrameIter { bytes: b"", offset: 0, stub_torn: true });
        }
        return Err(StoreError::Corrupt("wal header magic mismatch on a non-empty log".into()));
    }
    Ok(FrameIter { bytes, offset: WAL_MAGIC.len(), stub_torn: false })
}

/// What a WAL scan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredWal {
    /// Checksum-valid payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of the valid prefix (magic + whole frames).
    pub valid_bytes: u64,
    /// Whether bytes remained past the last valid frame — a tail some
    /// crash tore, truncated, or corrupted.
    pub torn_tail: bool,
}

/// Scans a WAL image and returns its valid prefix. A missing file, or one
/// too short to even hold the magic, recovers as empty (with the torn
/// flag set if any bytes existed). A full-length header with the wrong
/// magic on a log that plainly held frames is refused as corruption — the
/// fail-safe direction for an established log is to stop, not to forget.
pub fn recover(image: Option<&[u8]>) -> Result<RecoveredWal, StoreError> {
    let mut iter = frames(image)?;
    let payloads: Vec<Vec<u8>> = iter.by_ref().map(<[u8]>::to_vec).collect();
    Ok(RecoveredWal {
        payloads,
        valid_bytes: iter.valid_bytes(),
        torn_tail: iter.is_torn(),
    })
}

// ------------------------------------------------------------------- Wal

/// An open WAL: append frames, sync when a batch must commit.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: String,
    bytes: u64,
    scratch: Vec<u8>,
}

impl Wal {
    /// Creates (or truncates to) an empty log: magic only, synced — after
    /// this returns, recovery of the file yields zero frames.
    pub fn create(vfs: Arc<dyn Vfs>, path: &str) -> Result<Self, StoreError> {
        vfs.truncate(path, &WAL_MAGIC)?;
        vfs.sync(path)?;
        Ok(Wal {
            vfs,
            path: path.to_string(),
            bytes: WAL_MAGIC.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// Re-opens a log whose valid prefix spans `valid_bytes` (as reported
    /// by [`recover`]) for further appends. The caller must have rebuilt
    /// the file to exactly that prefix first.
    pub fn opened(vfs: Arc<dyn Vfs>, path: &str, valid_bytes: u64) -> Self {
        Wal {
            vfs,
            path: path.to_string(),
            bytes: valid_bytes,
            scratch: Vec::new(),
        }
    }

    /// Appends one framed payload (volatile until [`Wal::sync`]).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        self.scratch.clear();
        encode_frame(payload, &mut self.scratch);
        self.vfs.append(&self.path, &self.scratch)?;
        self.bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Flushes appended frames to stable storage; they are committed when
    /// this returns.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.vfs.sync(&self.path)
    }

    /// Bytes written to the log (magic + frames), including unsynced ones.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::vfs::SimVfs;

    fn image(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        for p in payloads {
            encode_frame(p, &mut out);
        }
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_and_full_recovery() {
        let img = image(&[b"alpha", b"", b"gamma-delta"]);
        let rec = recover(Some(&img)).unwrap();
        assert_eq!(rec.payloads, vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-delta".to_vec()]);
        assert_eq!(rec.valid_bytes, img.len() as u64);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_prefix() {
        let payloads: &[&[u8]] = &[b"one", b"two-two", b"three"];
        let img = image(payloads);
        for cut in 0..=img.len() {
            let rec = recover(Some(&img[..cut])).unwrap();
            // The recovered payloads are exactly the frames wholly inside
            // the cut — a strict prefix of the append order.
            let full: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();
            assert!(rec.payloads.len() <= full.len());
            assert_eq!(rec.payloads[..], full[..rec.payloads.len()], "cut at {cut}");
            assert_eq!(rec.torn_tail, rec.valid_bytes < cut as u64, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_at_every_byte_never_extends_the_prefix() {
        let payloads: &[&[u8]] = &[b"one", b"two-two", b"three"];
        let img = image(payloads);
        let full: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();
        for pos in 0..img.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = img.clone();
                bad[pos] ^= bit;
                match recover(Some(&bad)) {
                    Ok(rec) => {
                        // Flips inside frame k invalidate it; recovery may
                        // keep at most the frames before the damage.
                        assert!(rec.payloads.len() <= full.len());
                        for (i, p) in rec.payloads.iter().enumerate() {
                            if pos >= WAL_MAGIC.len() {
                                assert_eq!(p, &full[i], "flip at {pos} forged frame {i}");
                            }
                        }
                    }
                    Err(StoreError::Corrupt(_)) => assert!(pos < WAL_MAGIC.len(), "magic flip only"),
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
    }

    #[test]
    fn missing_and_stub_files_recover_empty() {
        assert_eq!(recover(None).unwrap().payloads.len(), 0);
        let short = recover(Some(b"PUF")).unwrap();
        assert!(short.payloads.is_empty());
        assert!(short.torn_tail);
        let flipped_magic = recover(Some(b"pUFATTW1")).unwrap();
        assert!(flipped_magic.payloads.is_empty());
        assert!(flipped_magic.torn_tail);
    }

    #[test]
    fn implausible_length_stops_the_scan() {
        let mut img = image(&[b"good"]);
        img.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        img.extend_from_slice(&[0u8; 12]);
        let rec = recover(Some(&img)).unwrap();
        assert_eq!(rec.payloads, vec![b"good".to_vec()]);
        assert!(rec.torn_tail);
    }

    #[test]
    fn frame_iter_streams_without_copying_and_reports_the_tail() {
        let mut img = image(&[b"one", b"two-two"]);
        let valid = img.len() as u64;
        img.extend_from_slice(b"torn-tail-bytes");
        let mut iter = frames(Some(&img)).unwrap();
        assert_eq!(iter.next(), Some(b"one".as_slice()));
        assert_eq!(iter.next(), Some(b"two-two".as_slice()));
        assert_eq!(iter.next(), None);
        assert!(iter.is_torn());
        assert_eq!(iter.valid_bytes(), valid);

        let clean = image(&[b"solo"]);
        let mut iter = frames(Some(&clean)).unwrap();
        assert_eq!(iter.by_ref().count(), 1);
        assert!(!iter.is_torn());
        assert_eq!(iter.valid_bytes(), clean.len() as u64);

        // Missing / stub files mirror `recover`'s header semantics.
        assert!(!frames(None).unwrap().is_torn());
        assert!(frames(Some(b"PUF")).unwrap().is_torn());
        assert!(frames(Some(b"pUFATTW1")).unwrap().is_torn());
        assert!(frames(Some(b"pUFATTW1-and-more")).is_err());
    }

    #[test]
    fn wal_appends_through_a_vfs() {
        let vfs = SimVfs::new();
        let mut wal = Wal::create(Arc::new(vfs.clone()), "wal.log").unwrap();
        wal.append(b"r1").unwrap();
        wal.append(b"r2").unwrap();
        wal.sync().unwrap();
        let img = vfs.read("wal.log").unwrap().unwrap();
        assert_eq!(img.len() as u64, wal.bytes());
        let rec = recover(Some(&img)).unwrap();
        assert_eq!(rec.payloads, vec![b"r1".to_vec(), b"r2".to_vec()]);
    }
}
