//! The materialised store state: what replaying the snapshot + WAL yields.
//!
//! [`StoreState::apply`] is the single transition function — the live
//! store and crash recovery both go through it, so "state after a crash"
//! and "state during normal operation" cannot drift apart. It enforces the
//! monotone-lifecycle invariant on every record: a device leaves
//! `Revoked` only through an explicit re-enrollment, sessions cannot close
//! against revoked or unknown devices, and sequence numbers only move
//! forward. A WAL whose checksum-valid frames violate these rules is
//! refused as corrupt rather than replayed into nonsense.

use crate::record::{read_outcome, write_outcome_into, OutcomeRec, Reader, Record, StoredStatus, LATENCY_SLOTS};
use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Per-device session event kinds, in schedule order — enough for a
/// resumed campaign to know how many sessions already ran and which of
/// them consumed the device's random stream (refusals consume nothing).
pub const EV_CLOSED: u8 = 0;
/// The session was refused up front (device revoked).
pub const EV_REFUSED: u8 = 1;
/// The session died in a device fault before reaching a verdict.
pub const EV_FAULT: u8 = 2;

/// Campaign identity stored with the state; resuming under a different
/// configuration is refused instead of silently blending campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaInfo {
    /// Fingerprint of the verdict-affecting configuration fields.
    pub config_hash: u64,
    /// Devices in the campaign.
    pub devices: u32,
    /// Sessions scheduled per device.
    pub sessions_per_device: u32,
    /// The campaign master seed.
    pub seed: u64,
}

/// The deterministic generator positions a device had reached after its
/// most recent journaled event (see [`crate::Record::DeviceCursor`]).
/// With a cursor present, resume fast-forwards the RNGs in O(1) instead
/// of replaying every earlier session; event entries the cursor covers
/// are dropped from [`DeviceState::events`], which is what bounds both
/// replay work and resident state for million-device campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorInfo {
    /// Session events covered by the cursor (the live loop resumes here).
    pub events_done: u32,
    /// The session RNG's keystream word position.
    pub session_pos: u64,
    /// The device PUF noise RNG's keystream word position.
    pub noise_pos: u64,
    /// The device PUF's evaluation count (burst-fault scheduling).
    pub noise_evals: u64,
    /// Whether the mid-traversal tamper mark is present in the prover's
    /// memory.
    pub tamper_parity: bool,
}

/// One device's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    /// Current lifecycle state.
    pub status: StoredStatus,
    /// Consecutive-failure streak (mirrors the registry).
    pub fails: u32,
    /// Consecutive-success streak (mirrors the registry).
    pub succs: u32,
    /// Session events in schedule order ([`EV_CLOSED`] / [`EV_REFUSED`] /
    /// [`EV_FAULT`]) *after* the cursor — events a cursor covers are
    /// dropped, so this is a tail, not the full history. The absolute
    /// index of `events[0]` is `events_seen - events.len()`.
    pub events: Vec<u8>,
    /// Session events ever recorded for this device, including those the
    /// cursor already covers.
    pub events_seen: u32,
    /// The resume fast-forward point, if any cursor has been journaled.
    pub cursor: Option<CursorInfo>,
    /// Retained outcomes, oldest first, bounded by the history capacity.
    pub outcomes: VecDeque<OutcomeRec>,
    /// Outcomes ever recorded (retained + rolled off).
    pub outcomes_total: u64,
    /// Sessions refused for this device.
    pub refused: u64,
    /// Faults charged to this device (session faults + abandonment).
    pub faults: u64,
    /// Whether provisioning failed and the device ran no sessions.
    pub abandoned: bool,
}

impl DeviceState {
    fn new() -> Self {
        DeviceState {
            status: StoredStatus::Active,
            fails: 0,
            succs: 0,
            events: Vec::new(),
            events_seen: 0,
            cursor: None,
            outcomes: VecDeque::new(),
            outcomes_total: 0,
            refused: 0,
            faults: 0,
            abandoned: false,
        }
    }
}

/// Global campaign counters, mirroring the fleet metrics so a recovered
/// snapshot reports the same totals an uninterrupted run would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Sessions that began their first attempt.
    pub started: u64,
    /// Sessions accepted.
    pub accepted: u64,
    /// Sessions rejected (includes timed-out and lost ones).
    pub rejected: u64,
    /// Rejected sessions whose cause was the timeout.
    pub timed_out: u64,
    /// Attempts retried.
    pub retried: u64,
    /// Sessions refused up front.
    pub refused: u64,
    /// Device faults (session faults + provisioning failures).
    pub faults: u64,
    /// Protocol messages lost in transit.
    pub dropped: u64,
    /// Sessions that ended without a verdict.
    pub lost: u64,
    /// Verifier CRP-cache hits across all sessions.
    pub crp_hits: u64,
    /// Verifier CRP-cache misses (emulations) across all sessions.
    pub crp_misses: u64,
    /// Latency histogram occupancy by log₂ slot.
    pub latency: [u64; LATENCY_SLOTS],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            started: 0,
            accepted: 0,
            rejected: 0,
            timed_out: 0,
            retried: 0,
            refused: 0,
            faults: 0,
            dropped: 0,
            lost: 0,
            crp_hits: 0,
            crp_misses: 0,
            latency: [0; LATENCY_SLOTS],
        }
    }
}

impl Counters {
    /// Adds `other`'s totals into `self` — used to aggregate per-shard
    /// counters into a fleet-wide view.
    pub fn merge(&mut self, other: &Counters) {
        self.started += other.started;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.retried += other.retried;
        self.refused += other.refused;
        self.faults += other.faults;
        self.dropped += other.dropped;
        self.lost += other.lost;
        self.crp_hits += other.crp_hits;
        self.crp_misses += other.crp_misses;
        for (slot, v) in self.latency.iter_mut().zip(other.latency.iter()) {
            *slot += v;
        }
    }
}

/// Device counts by lifecycle state (the store-side mirror of the fleet
/// registry's tally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusTally {
    /// Devices currently active.
    pub active: usize,
    /// Devices currently quarantined.
    pub quarantined: usize,
    /// Devices currently revoked.
    pub revoked: usize,
}

/// The full durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreState {
    /// Campaign identity, if a Meta record has been applied.
    pub meta: Option<MetaInfo>,
    /// Per-device state, keyed by device id.
    pub devices: BTreeMap<u32, DeviceState>,
    /// Challenges consumed from CRP databases (public values only).
    pub spent: BTreeSet<(u64, u64)>,
    /// Global campaign counters.
    pub counters: Counters,
    /// Highest applied record sequence number (0 = none).
    pub last_seq: u64,
    history_capacity: usize,
}

impl StoreState {
    /// An empty state retaining at most `history_capacity` outcomes per
    /// device (capacity 0 is treated as 1).
    pub fn new(history_capacity: usize) -> Self {
        StoreState {
            meta: None,
            devices: BTreeMap::new(),
            spent: BTreeSet::new(),
            counters: Counters::default(),
            last_seq: 0,
            history_capacity: history_capacity.max(1),
        }
    }

    /// The per-device outcome retention bound.
    pub fn history_capacity(&self) -> usize {
        self.history_capacity
    }

    fn device_mut(&mut self, id: u32) -> Result<&mut DeviceState, StoreError> {
        self.devices
            .get_mut(&id)
            .ok_or_else(|| StoreError::Corrupt(format!("record references unknown device {id}")))
    }

    /// Applies one record. `seq` must be strictly greater than
    /// [`StoreState::last_seq`] — replay skips already-covered records
    /// *before* calling this.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for regressing sequence numbers, unknown
    /// devices, or out-of-range fields; [`StoreError::IllegalTransition`]
    /// when a record asks for a lifecycle move the state machine forbids.
    pub fn apply(&mut self, seq: u64, record: &Record) -> Result<(), StoreError> {
        if seq <= self.last_seq {
            return Err(StoreError::Corrupt(format!("sequence regressed: {seq} after {}", self.last_seq)));
        }
        match record {
            Record::Meta { config_hash, devices, sessions_per_device, seed } => {
                let info = MetaInfo {
                    config_hash: *config_hash,
                    devices: *devices,
                    sessions_per_device: *sessions_per_device,
                    seed: *seed,
                };
                match self.meta {
                    None => self.meta = Some(info),
                    Some(existing) if existing == info => {}
                    Some(_) => return Err(StoreError::Corrupt("conflicting campaign metadata records".into())),
                }
            }
            Record::DeviceEnrolled { id } => {
                if let Some(existing) = self.devices.get(id) {
                    return Err(StoreError::IllegalTransition {
                        id: *id,
                        from: existing.status,
                        event: "enroll an already-enrolled device",
                    });
                }
                self.devices.insert(*id, DeviceState::new());
            }
            Record::DeviceReEnrolled { id } => {
                let device = self.device_mut(*id)?;
                device.status = StoredStatus::Active;
                device.fails = 0;
                device.succs = 0;
            }
            Record::StatusChanged { id, status } => {
                let device = self.device_mut(*id)?;
                if device.status == StoredStatus::Revoked && *status != StoredStatus::Revoked {
                    return Err(StoreError::IllegalTransition {
                        id: *id,
                        from: device.status,
                        event: "leave Revoked without re-enrollment",
                    });
                }
                device.status = *status;
            }
            Record::SessionClosed { id, outcome, status, fails, succs } => {
                if outcome.latency_slot as usize >= LATENCY_SLOTS {
                    return Err(StoreError::Corrupt(format!("latency slot {} out of range", outcome.latency_slot)));
                }
                let cap = self.history_capacity;
                let device = self.device_mut(*id)?;
                let legal = match (device.status, *status) {
                    // A session never runs against a revoked device, and a
                    // single outcome can demote Active at most one step.
                    (StoredStatus::Revoked, _) | (StoredStatus::Active, StoredStatus::Revoked) => false,
                    _ => true,
                };
                if !legal {
                    return Err(StoreError::IllegalTransition {
                        id: *id,
                        from: device.status,
                        event: "close a session with a non-monotone transition",
                    });
                }
                device.status = *status;
                device.fails = *fails;
                device.succs = *succs;
                device.events.push(EV_CLOSED);
                device.events_seen += 1;
                device.outcomes.push_back(*outcome);
                while device.outcomes.len() > cap {
                    device.outcomes.pop_front();
                }
                device.outcomes_total += 1;
                let c = &mut self.counters;
                c.started += 1;
                if outcome.accepted {
                    c.accepted += 1;
                } else {
                    c.rejected += 1;
                }
                if outcome.timed_out {
                    c.timed_out += 1;
                }
                if outcome.lost {
                    c.lost += 1;
                }
                c.retried += u64::from(outcome.retried);
                c.dropped += u64::from(outcome.dropped);
                c.crp_hits += u64::from(outcome.crp_hits);
                c.crp_misses += u64::from(outcome.crp_misses);
                c.latency[outcome.latency_slot as usize] += 1;
            }
            Record::SessionRefused { id } => {
                let device = self.device_mut(*id)?;
                if device.status != StoredStatus::Revoked {
                    return Err(StoreError::IllegalTransition {
                        id: *id,
                        from: device.status,
                        event: "refuse a session on a non-revoked device",
                    });
                }
                device.events.push(EV_REFUSED);
                device.events_seen += 1;
                device.refused += 1;
                self.counters.refused += 1;
            }
            Record::SessionFault { id, retried, dropped, crp_hits, crp_misses } => {
                let device = self.device_mut(*id)?;
                if device.status == StoredStatus::Revoked {
                    return Err(StoreError::IllegalTransition {
                        id: *id,
                        from: device.status,
                        event: "fault a session on a revoked device",
                    });
                }
                device.events.push(EV_FAULT);
                device.events_seen += 1;
                device.faults += 1;
                let c = &mut self.counters;
                c.started += 1;
                c.faults += 1;
                c.retried += u64::from(*retried);
                c.dropped += u64::from(*dropped);
                c.crp_hits += u64::from(*crp_hits);
                c.crp_misses += u64::from(*crp_misses);
            }
            Record::DeviceAbandoned { id } => {
                let device = self.device_mut(*id)?;
                device.abandoned = true;
                device.faults += 1;
                self.counters.faults += 1;
            }
            Record::CrpConsumed { a, b } => {
                self.spent.insert((*a, *b));
            }
            Record::DeviceCursor {
                id,
                events_done,
                session_pos,
                noise_pos,
                noise_evals,
                tamper_parity,
            } => {
                let device = self.device_mut(*id)?;
                if *events_done > device.events_seen {
                    return Err(StoreError::Corrupt(format!(
                        "cursor for device {id} covers {events_done} events but only {} were journaled",
                        device.events_seen
                    )));
                }
                if let Some(prev) = &device.cursor {
                    if *events_done < prev.events_done {
                        return Err(StoreError::Corrupt(format!("cursor regressed for device {id}")));
                    }
                }
                // Events the cursor covers will never be replayed again —
                // drop them from the retained tail. `events[0]`'s absolute
                // index is `events_seen - events.len()`.
                let tail_start = device.events_seen - device.events.len() as u32;
                if *events_done > tail_start {
                    device.events.drain(..(*events_done - tail_start) as usize);
                }
                device.cursor = Some(CursorInfo {
                    events_done: *events_done,
                    session_pos: *session_pos,
                    noise_pos: *noise_pos,
                    noise_evals: *noise_evals,
                    tamper_parity: *tamper_parity,
                });
            }
        }
        self.last_seq = seq;
        Ok(())
    }

    /// Whether a challenge has already been consumed.
    pub fn is_spent(&self, a: u64, b: u64) -> bool {
        self.spent.contains(&(a, b))
    }

    /// Device counts by lifecycle state.
    pub fn status_tally(&self) -> StatusTally {
        let mut tally = StatusTally::default();
        for device in self.devices.values() {
            match device.status {
                StoredStatus::Active => tally.active += 1,
                StoredStatus::Quarantined => tally.quarantined += 1,
                StoredStatus::Revoked => tally.revoked += 1,
            }
        }
        tally
    }

    // ------------------------------------------------------------- codec

    /// Serialises the state into a snapshot body.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let u32le = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let u64le = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        u64le(out, self.last_seq);
        u64le(out, self.history_capacity as u64);
        match &self.meta {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                u64le(out, m.config_hash);
                u32le(out, m.devices);
                u32le(out, m.sessions_per_device);
                u64le(out, m.seed);
            }
        }
        let c = &self.counters;
        for v in [
            c.started,
            c.accepted,
            c.rejected,
            c.timed_out,
            c.retried,
            c.refused,
            c.faults,
            c.dropped,
            c.lost,
            c.crp_hits,
            c.crp_misses,
        ] {
            u64le(out, v);
        }
        for v in c.latency {
            u64le(out, v);
        }
        u32le(out, self.devices.len() as u32);
        for (id, d) in &self.devices {
            u32le(out, *id);
            out.push(Record::status_byte(d.status));
            u32le(out, d.fails);
            u32le(out, d.succs);
            out.push(u8::from(d.abandoned));
            u64le(out, d.refused);
            u64le(out, d.faults);
            u64le(out, d.outcomes_total);
            u32le(out, d.events.len() as u32);
            out.extend_from_slice(&d.events);
            u32le(out, d.events_seen);
            match &d.cursor {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    u32le(out, c.events_done);
                    u64le(out, c.session_pos);
                    u64le(out, c.noise_pos);
                    u64le(out, c.noise_evals);
                    out.push(u8::from(c.tamper_parity));
                }
            }
            u32le(out, d.outcomes.len() as u32);
            for o in &d.outcomes {
                write_outcome_into(out, o);
            }
        }
        u32le(out, self.spent.len() as u32);
        for (a, b) in &self.spent {
            u64le(out, *a);
            u64le(out, *b);
        }
    }

    /// Parses a snapshot body back into a state.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on truncation, trailing bytes, or
    /// out-of-range fields — the snapshot CRC is checked before this runs,
    /// so a decode failure is a format break, not disk damage.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader::new(bytes);
        let last_seq = r.u64()?;
        let history_capacity = usize::try_from(r.u64()?)
            .ok()
            .filter(|&c| c > 0)
            .ok_or_else(|| StoreError::Corrupt("bad history capacity".into()))?;
        let meta = match r.u8()? {
            0 => None,
            1 => Some(MetaInfo {
                config_hash: r.u64()?,
                devices: r.u32()?,
                sessions_per_device: r.u32()?,
                seed: r.u64()?,
            }),
            other => return Err(StoreError::Corrupt(format!("bad meta flag {other}"))),
        };
        let mut counters = Counters {
            started: r.u64()?,
            accepted: r.u64()?,
            rejected: r.u64()?,
            timed_out: r.u64()?,
            retried: r.u64()?,
            refused: r.u64()?,
            faults: r.u64()?,
            dropped: r.u64()?,
            lost: r.u64()?,
            crp_hits: r.u64()?,
            crp_misses: r.u64()?,
            latency: [0; LATENCY_SLOTS],
        };
        for slot in counters.latency.iter_mut() {
            *slot = r.u64()?;
        }
        let device_count = r.u32()?;
        let mut devices = BTreeMap::new();
        for _ in 0..device_count {
            let id = r.u32()?;
            let status = Record::status_from_byte(r.u8()?)?;
            let fails = r.u32()?;
            let succs = r.u32()?;
            let abandoned = r.flag()?;
            let refused = r.u64()?;
            let faults = r.u64()?;
            let outcomes_total = r.u64()?;
            let event_count = r.u32()? as usize;
            let mut events = Vec::with_capacity(event_count.min(1 << 16));
            for _ in 0..event_count {
                let ev = r.u8()?;
                if ev > EV_FAULT {
                    return Err(StoreError::Corrupt(format!("bad event kind {ev}")));
                }
                events.push(ev);
            }
            let events_seen = r.u32()?;
            if (events_seen as usize) < events.len() {
                return Err(StoreError::Corrupt(format!("device {id} events_seen below retained tail")));
            }
            let cursor = match r.u8()? {
                0 => None,
                1 => {
                    let c = CursorInfo {
                        events_done: r.u32()?,
                        session_pos: r.u64()?,
                        noise_pos: r.u64()?,
                        noise_evals: r.u64()?,
                        tamper_parity: r.flag()?,
                    };
                    if c.events_done > events_seen {
                        return Err(StoreError::Corrupt(format!("device {id} cursor ahead of its events")));
                    }
                    Some(c)
                }
                other => return Err(StoreError::Corrupt(format!("bad cursor flag {other}"))),
            };
            let outcome_count = r.u32()? as usize;
            let mut outcomes = VecDeque::with_capacity(outcome_count.min(1 << 16));
            for _ in 0..outcome_count {
                let o = read_outcome(&mut r)?;
                if o.latency_slot as usize >= LATENCY_SLOTS {
                    return Err(StoreError::Corrupt("latency slot out of range".into()));
                }
                outcomes.push_back(o);
            }
            if devices
                .insert(
                    id,
                    DeviceState {
                        status,
                        fails,
                        succs,
                        events,
                        events_seen,
                        cursor,
                        outcomes,
                        outcomes_total,
                        refused,
                        faults,
                        abandoned,
                    },
                )
                .is_some()
            {
                return Err(StoreError::Corrupt(format!("duplicate device {id} in snapshot")));
            }
        }
        let spent_count = r.u32()?;
        let mut spent = BTreeSet::new();
        for _ in 0..spent_count {
            spent.insert((r.u64()?, r.u64()?));
        }
        r.done()?;
        Ok(StoreState { meta, devices, spent, counters, last_seq, history_capacity })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn outcome(accepted: bool) -> OutcomeRec {
        OutcomeRec {
            accepted,
            response_ok: accepted,
            time_ok: true,
            timed_out: false,
            attempts: 1,
            elapsed_bits: 0.01f64.to_bits(),
            retried: 0,
            dropped: 0,
            lost: false,
            latency_slot: 13,
            crp_hits: 56,
            crp_misses: 8,
        }
    }

    fn closed(id: u32, accepted: bool, status: StoredStatus, fails: u32) -> Record {
        Record::SessionClosed { id, outcome: outcome(accepted), status, fails, succs: 0 }
    }

    #[test]
    fn a_small_campaign_replays_into_consistent_state() {
        let mut s = StoreState::new(8);
        let mut seq = 0u64;
        let mut apply = |s: &mut StoreState, r: Record| {
            seq += 1;
            s.apply(seq, &r).unwrap();
        };
        apply(&mut s, Record::Meta { config_hash: 1, devices: 2, sessions_per_device: 2, seed: 9 });
        apply(&mut s, Record::DeviceEnrolled { id: 0 });
        apply(&mut s, Record::DeviceEnrolled { id: 1 });
        apply(&mut s, closed(0, true, StoredStatus::Active, 0));
        apply(&mut s, closed(1, false, StoredStatus::Quarantined, 0));
        apply(&mut s, Record::StatusChanged { id: 1, status: StoredStatus::Revoked });
        apply(&mut s, Record::SessionRefused { id: 1 });
        apply(&mut s, Record::CrpConsumed { a: 5, b: 6 });
        assert_eq!(s.counters.started, 2);
        assert_eq!(s.counters.accepted, 1);
        assert_eq!(s.counters.rejected, 1);
        assert_eq!(s.counters.refused, 1);
        assert_eq!(s.counters.latency[13], 2);
        assert_eq!(s.status_tally(), StatusTally { active: 1, quarantined: 0, revoked: 1 });
        assert!(s.is_spent(5, 6));
        assert!(!s.is_spent(6, 5));
        assert_eq!(s.devices[&1].events, vec![EV_CLOSED, EV_REFUSED]);
        assert_eq!(s.last_seq, 8);
    }

    #[test]
    fn illegal_transitions_are_refused() {
        let mut s = StoreState::new(4);
        s.apply(1, &Record::DeviceEnrolled { id: 7 }).unwrap();
        // Double enrollment.
        assert!(matches!(
            s.apply(2, &Record::DeviceEnrolled { id: 7 }),
            Err(StoreError::IllegalTransition { id: 7, .. })
        ));
        // Unknown device.
        assert!(matches!(s.apply(2, &Record::SessionRefused { id: 99 }), Err(StoreError::Corrupt(_))));
        // Refusal needs a revoked device.
        assert!(matches!(s.apply(2, &Record::SessionRefused { id: 7 }), Err(StoreError::IllegalTransition { .. })));
        // Sessions cannot close against a revoked device, and revocation is
        // sticky without re-enrollment.
        s.apply(2, &Record::StatusChanged { id: 7, status: StoredStatus::Revoked })
            .unwrap();
        assert!(matches!(
            s.apply(3, &closed(7, true, StoredStatus::Active, 0)),
            Err(StoreError::IllegalTransition { .. })
        ));
        assert!(matches!(
            s.apply(3, &Record::StatusChanged { id: 7, status: StoredStatus::Active }),
            Err(StoreError::IllegalTransition { .. })
        ));
        // Re-enrollment is the legal exit.
        s.apply(3, &Record::DeviceReEnrolled { id: 7 }).unwrap();
        assert_eq!(s.devices[&7].status, StoredStatus::Active);
        // Sequence numbers only move forward.
        assert!(matches!(s.apply(3, &Record::CrpConsumed { a: 1, b: 2 }), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn history_is_bounded() {
        let mut s = StoreState::new(2);
        s.apply(1, &Record::DeviceEnrolled { id: 0 }).unwrap();
        for i in 0..5 {
            s.apply(2 + i, &closed(0, true, StoredStatus::Active, 0)).unwrap();
        }
        assert_eq!(s.devices[&0].outcomes.len(), 2);
        assert_eq!(s.devices[&0].outcomes_total, 5);
        assert_eq!(s.devices[&0].events.len(), 5);
    }

    #[test]
    fn snapshot_body_roundtrips() {
        let mut s = StoreState::new(8);
        let mut seq = 0u64;
        let mut apply = |s: &mut StoreState, r: Record| {
            seq += 1;
            s.apply(seq, &r).unwrap();
        };
        apply(
            &mut s,
            Record::Meta {
                config_hash: 42,
                devices: 3,
                sessions_per_device: 2,
                seed: 11,
            },
        );
        for id in 0..3 {
            apply(&mut s, Record::DeviceEnrolled { id });
        }
        apply(&mut s, closed(0, true, StoredStatus::Active, 0));
        apply(&mut s, closed(1, false, StoredStatus::Quarantined, 0));
        apply(&mut s, Record::SessionFault { id: 2, retried: 1, dropped: 2, crp_hits: 0, crp_misses: 24 });
        apply(&mut s, Record::DeviceAbandoned { id: 2 });
        apply(&mut s, Record::CrpConsumed { a: 1, b: 2 });
        apply(&mut s, Record::CrpConsumed { a: 3, b: 4 });
        let mut body = Vec::new();
        s.encode(&mut body);
        let decoded = StoreState::decode(&body).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn cursors_truncate_the_replay_tail_and_roundtrip() {
        let mut s = StoreState::new(8);
        s.apply(1, &Record::DeviceEnrolled { id: 0 }).unwrap();
        for i in 0..3 {
            s.apply(2 + i, &closed(0, true, StoredStatus::Active, 0)).unwrap();
        }
        let cursor = |events_done| Record::DeviceCursor {
            id: 0,
            events_done,
            session_pos: 10,
            noise_pos: 20,
            noise_evals: 30,
            tamper_parity: false,
        };
        s.apply(5, &cursor(2)).unwrap();
        // Covered events dropped; totals preserved.
        assert_eq!(s.devices[&0].events, vec![EV_CLOSED]);
        assert_eq!(s.devices[&0].events_seen, 3);
        assert_eq!(s.devices[&0].cursor.unwrap().events_done, 2);
        // A cursor can neither regress nor run ahead of the journal.
        assert!(matches!(s.apply(6, &cursor(1)), Err(StoreError::Corrupt(_))));
        assert!(matches!(s.apply(6, &cursor(4)), Err(StoreError::Corrupt(_))));
        // Unknown device is refused.
        assert!(matches!(
            s.apply(
                6,
                &Record::DeviceCursor {
                    id: 99,
                    events_done: 0,
                    session_pos: 0,
                    noise_pos: 0,
                    noise_evals: 0,
                    tamper_parity: false
                }
            ),
            Err(StoreError::Corrupt(_))
        ));
        s.apply(6, &cursor(3)).unwrap();
        assert!(s.devices[&0].events.is_empty());
        // Snapshot codec carries events_seen + cursor through a roundtrip.
        let mut body = Vec::new();
        s.encode(&mut body);
        assert_eq!(StoreState::decode(&body).unwrap(), s);
    }

    #[test]
    fn counters_merge_adds_totals() {
        let mut a = Counters {
            started: 3,
            accepted: 2,
            latency: [0; LATENCY_SLOTS],
            ..Counters::default()
        };
        a.latency[4] = 7;
        let mut b = Counters { started: 5, rejected: 1, ..Counters::default() };
        b.latency[4] = 1;
        b.latency[9] = 2;
        a.merge(&b);
        assert_eq!(a.started, 8);
        assert_eq!(a.accepted, 2);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.latency[4], 8);
        assert_eq!(a.latency[9], 2);
    }

    #[test]
    fn snapshot_decode_refuses_damage() {
        let mut s = StoreState::new(4);
        s.apply(1, &Record::DeviceEnrolled { id: 3 }).unwrap();
        let mut body = Vec::new();
        s.encode(&mut body);
        for cut in 0..body.len() {
            assert!(StoreState::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = body.clone();
        trailing.push(0);
        assert!(StoreState::decode(&trailing).is_err());
    }
}
