//! Durable verifier state for the PUFatt reproduction.
//!
//! An attestation verifier is only as trustworthy as its memory: if a
//! restart forgets which CRPs were consumed or which devices were revoked,
//! an adversary's cheapest attack is pulling the power cord. This crate
//! gives the fleet layer a small, auditable persistence core:
//!
//! * [`wal`] — an append-only write-ahead log of CRC32-framed,
//!   length-prefixed records. Recovery walks the valid prefix and stops at
//!   the first torn, truncated, or bit-corrupted frame: a record is
//!   committed exactly when its bytes are on stable storage.
//! * [`store`] — [`DurableStore`]: snapshot + WAL with atomic
//!   (temp-file → fsync → rename) snapshot commits and WAL compaction,
//!   all mutations flowing through one typed state machine
//!   ([`state::StoreState::apply`]) that recovery re-uses verbatim.
//! * [`vfs`] — the [`Vfs`] trait the store is written against, with a
//!   production backend ([`StdVfs`]) and a fault-injecting one
//!   ([`SimVfs`]) that can crash the process model at *every* write,
//!   flush, and rename boundary — recovery is proven by exhaustive
//!   enumeration of crash points, not by sampling.
//! * [`crpdb`] — [`DurableCrpDb`]: consume-once CRP discipline that
//!   survives restarts (journal-then-release; a crash loses an unused
//!   CRP, never re-issues a consumed one).
//!
//! # What never touches the disk
//!
//! Records and snapshots carry *public* protocol facts: device ids,
//! lifecycle states, verdict booleans, challenge values. Raw PUF
//! responses and helper data have no representation in the on-disk
//! format at all — a stolen state directory gives a modelling adversary
//! nothing the wire did not already expose.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Lib-target panics are linted (see [lints.clippy] in Cargo.toml);
// tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

pub mod crpdb;
pub mod record;
pub mod sharded;
pub mod state;
pub mod store;
pub mod vfs;
pub mod wal;

pub use crpdb::DurableCrpDb;
pub use record::{OutcomeRec, Record, StoredStatus};
pub use sharded::{Committer, ShardHealth, ShardedOptions, ShardedStore};
pub use state::{Counters, CursorInfo, DeviceState, MetaInfo, StatusTally, StoreState};
pub use store::{DurableStore, StoreOptions, StoreStats};
pub use vfs::{
    error_plan, ErrorInjection, InjectedErrorKind, SimVfs, StdVfs, TornMode, Vfs, INJECTED_ERROR_KINDS, TORN_MODES,
};

use record::StoredStatus as Status;

/// Errors of the durable state layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (message includes the path).
    Io(String),
    /// The backing device is out of space (ENOSPC). The refused write left
    /// no partial effect; retrying after space is reclaimed is safe, but
    /// the store handle that saw it is poisoned like any write failure.
    NoSpace(String),
    /// The fault-injecting backend's planned crash fired: the process
    /// model is dead and every further operation on that backend fails.
    Crashed,
    /// On-disk state is structurally invalid in a way a torn tail cannot
    /// explain — a checksum-valid frame that does not decode, a snapshot
    /// failing its CRC, a WAL header overwritten. The fail-safe response
    /// is to stop, never to guess.
    Corrupt(String),
    /// A record asked for a state transition the lifecycle forbids (e.g.
    /// leaving `Revoked` without re-enrollment). Refused before anything
    /// is written.
    IllegalTransition {
        /// The device the record referenced.
        id: u32,
        /// Its lifecycle state when the record arrived.
        from: Status,
        /// What the record tried to do.
        event: &'static str,
    },
    /// A previous write on this handle failed; the in-memory state may be
    /// ahead of the disk. Reopen the store to recover.
    Broken,
    /// The group-commit queue is full: as many records as
    /// [`store::StoreOptions::commit_queue_limit`] allows are already
    /// awaiting their sync. Nothing was applied or written — sync the
    /// store (or wait for its committer) and retry.
    Backpressure,
    /// The record's home shard is sick (Degraded or Failed — see
    /// [`sharded::ShardHealth`]): a storage failure took it read-only, and
    /// appends are refused *before* anything is applied or written. Other
    /// shards are unaffected; an operator-driven
    /// [`ShardedStore::reopen_shard`] brings this one back.
    ShardUnavailable {
        /// Index of the sick shard.
        shard: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O failed: {m}"),
            StoreError::NoSpace(m) => write!(f, "store device out of space: {m}"),
            StoreError::Crashed => write!(f, "simulated crash point reached"),
            StoreError::Corrupt(m) => write!(f, "store state corrupt: {m}"),
            StoreError::IllegalTransition { id, from, event } => {
                write!(f, "illegal lifecycle transition for device {id} (currently {from:?}): refused to {event}")
            }
            StoreError::Broken => write!(f, "store handle broken by an earlier write failure; reopen to recover"),
            StoreError::Backpressure => {
                write!(f, "group-commit queue full; sync the store (or wait for its committer) and retry")
            }
            StoreError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} storage unavailable (degraded or failed); reopen the shard to recover")
            }
        }
    }
}

impl std::error::Error for StoreError {}
