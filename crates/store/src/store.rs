//! The durable store: WAL + snapshot, glued by one recovery procedure.
//!
//! # Commit protocol
//!
//! * An append validates the record against the in-memory state (the same
//!   transition function recovery uses), frames it into the WAL, and
//!   syncs per the [`StoreOptions::sync_every`] policy. A record is
//!   *committed* once its frame is fully on stable storage.
//! * A snapshot is written to `snapshot.tmp`, synced, then renamed onto
//!   `snapshot.bin` — the rename is the atomic commit point. Only after
//!   the rename does compaction truncate the WAL: at every instant the
//!   disk holds either the old snapshot plus a WAL covering everything
//!   since it, or the new snapshot (plus a WAL whose records it already
//!   covers, which replay skips by sequence number).
//!
//! # Recovery
//!
//! [`DurableStore::open`] loads the snapshot, replays the WAL's valid
//! prefix (skipping records the snapshot already covers), then writes a
//! *fresh* snapshot and compacts. Recovery never truncates the WAL before
//! the new snapshot has landed, so a crash anywhere inside recovery is
//! itself recoverable — the crash-matrix tests enumerate those points too.
//!
//! If any write fails mid-operation (including an injected crash), the
//! store marks itself broken and refuses further appends: the in-memory
//! state may then be ahead of the disk, and the only safe continuation is
//! to reopen and recover.

use crate::record::Record;
use crate::state::{MetaInfo, StatusTally, StoreState};
use crate::vfs::Vfs;
use crate::wal::{self, Wal};
use crate::StoreError;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// The WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// The current snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The snapshot staging file (atomically renamed onto [`SNAPSHOT_FILE`]).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Identifies a snapshot file (and its format revision).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PUFATTS1";

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Retained outcomes per device (mirrors the registry's bound).
    pub history_capacity: usize,
    /// Sync the WAL after every `sync_every` appends. `1` (the default)
    /// commits each record before the append returns; larger values batch
    /// syncs — a crash can then lose up to `sync_every - 1` tail records,
    /// which recovery replays the campaign without.
    pub sync_every: u32,
    /// Bound on records a group-commit writer may leave unsynced before
    /// [`DurableStore::append_nosync`] refuses with
    /// [`StoreError::Backpressure`]. `0` (the default) means unbounded —
    /// only [`DurableStore::append_nosync`] consults this; the policy and
    /// forced-sync paths never queue past their own bounds.
    pub commit_queue_limit: u32,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { history_capacity: 64, sync_every: 1, commit_queue_limit: 0 }
    }
}

/// Durability counters, surfaced in fleet snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes currently in the WAL (magic + frames, including unsynced).
    pub wal_bytes: u64,
    /// Records appended (and committed) by this process.
    pub records_appended: u64,
    /// Records replayed from the WAL at open.
    pub records_replayed: u64,
    /// Snapshots written (open writes one; checkpoints add more).
    pub snapshots_written: u64,
    /// Opens that found (and discarded) a torn or corrupted WAL tail.
    pub torn_tails_recovered: u64,
    /// Shards backing these counters (0 for a plain single store — the
    /// shard-health fields below are then meaningless and not displayed).
    pub shards_total: u32,
    /// Shards currently Degraded (read-only after a storage failure).
    pub shards_degraded: u32,
    /// Shards currently Failed (a reopen attempt also failed).
    pub shards_failed: u32,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wal {} B, {} appended, {} replayed, {} snapshots, {} torn tails recovered",
            self.wal_bytes,
            self.records_appended,
            self.records_replayed,
            self.snapshots_written,
            self.torn_tails_recovered
        )?;
        if self.shards_total > 0 {
            let sick = self.shards_degraded + self.shards_failed;
            write!(f, ", {}/{} shards healthy", self.shards_total - sick, self.shards_total)?;
            if sick > 0 {
                write!(f, " ({} degraded, {} failed)", self.shards_degraded, self.shards_failed)?;
            }
        }
        Ok(())
    }
}

/// When an append's frame must reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncMode {
    /// Follow [`StoreOptions::sync_every`].
    Policy,
    /// Sync before returning (the CRP consume-once path).
    Force,
    /// Never sync here — a group committer owns the fsync schedule, and
    /// [`StoreOptions::commit_queue_limit`] bounds what may accumulate.
    Queue,
}

struct Inner {
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    state: StoreState,
    opts: StoreOptions,
    stats: StoreStats,
    unsynced: u32,
    broken: bool,
    scratch: Vec<u8>,
    wal_path: String,
    snapshot_path: String,
    snapshot_tmp: String,
}

/// A durable verifier-state store over a [`Vfs`].
pub struct DurableStore {
    inner: Mutex<Inner>,
}

fn read_snapshot(vfs: &dyn Vfs, opts: StoreOptions, path: &str) -> Result<StoreState, StoreError> {
    let Some(bytes) = vfs.read(path)? else {
        return Ok(StoreState::new(opts.history_capacity));
    };
    // The snapshot only ever appears via atomic rename of a synced temp
    // file, so damage here is real corruption, never a torn write — the
    // fail-safe response is to stop, not to silently restart the campaign.
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("snapshot header invalid".into()));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let body = bytes
        .get(16..16 + len)
        .filter(|_| bytes.len() == 16 + len)
        .ok_or_else(|| StoreError::Corrupt("snapshot body truncated".into()))?;
    if wal::crc32(body) != crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    StoreState::decode(body)
}

fn write_snapshot(vfs: &dyn Vfs, state: &StoreState, tmp: &str, path: &str) -> Result<(), StoreError> {
    let mut body = Vec::new();
    state.encode(&mut body);
    let mut file = Vec::with_capacity(16 + body.len());
    file.extend_from_slice(&SNAPSHOT_MAGIC);
    file.extend_from_slice(&(body.len() as u32).to_le_bytes());
    file.extend_from_slice(&wal::crc32(&body).to_le_bytes());
    file.extend_from_slice(&body);
    vfs.truncate(tmp, &file)?;
    vfs.sync(tmp)?;
    // The commit point: after this rename the new snapshot is the
    // authoritative state; before it the old snapshot (or none) is.
    vfs.rename(tmp, path)
}

/// The shared recovery procedure: replay snapshot + valid WAL prefix,
/// write a fresh snapshot, compact, and hand back a fresh WAL handle.
/// Used by [`DurableStore::open_at`] and [`DurableStore::reopen`] — the
/// returned stats are the *deltas* of this recovery run.
fn recover(
    vfs: &Arc<dyn Vfs>,
    opts: StoreOptions,
    wal_path: &str,
    snapshot_path: &str,
    snapshot_tmp: &str,
) -> Result<(StoreState, Wal, StoreStats), StoreError> {
    let mut stats = StoreStats::default();
    let mut state = read_snapshot(&**vfs, opts, snapshot_path)?;
    // Stream the WAL's valid prefix frame by frame: one borrowed
    // payload is alive at a time, so recovery memory is the image
    // plus the materialised state — never a second copy of every
    // record, which matters when a million-device campaign reopens.
    let image = vfs.read(wal_path)?;
    let mut frames = wal::frames(image.as_deref())?;
    for payload in frames.by_ref() {
        let (seq, record) = Record::decode(payload)?;
        if seq <= state.last_seq {
            continue; // the snapshot already covers it
        }
        state.apply(seq, &record)?;
        stats.records_replayed += 1;
    }
    if frames.is_torn() {
        stats.torn_tails_recovered += 1;
    }
    let _ = frames;
    drop(image);
    // Rebuild: snapshot first (atomic), truncate the WAL only after.
    write_snapshot(&**vfs, &state, snapshot_tmp, snapshot_path)?;
    stats.snapshots_written += 1;
    let wal = Wal::create(Arc::clone(vfs), wal_path)?;
    stats.wal_bytes = wal.bytes();
    Ok((state, wal, stats))
}

impl DurableStore {
    /// Opens (recovering if needed) a store over `vfs`.
    ///
    /// Replays the snapshot and the WAL's valid prefix, counts any torn
    /// tail, then writes a fresh snapshot and compacts the WAL.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the snapshot or a checksum-valid WAL
    /// record is structurally invalid; I/O errors from the backend.
    pub fn open(vfs: Arc<dyn Vfs>, opts: StoreOptions) -> Result<Self, StoreError> {
        Self::open_at(vfs, opts, "")
    }

    /// Opens a store whose files live under `prefix` (e.g. `shard-003/`) —
    /// how a sharded store keeps many independent WAL + snapshot pairs in
    /// one directory. An empty prefix is the classic single-store layout.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::open`].
    pub fn open_at(vfs: Arc<dyn Vfs>, opts: StoreOptions, prefix: &str) -> Result<Self, StoreError> {
        let wal_path = format!("{prefix}{WAL_FILE}");
        let snapshot_path = format!("{prefix}{SNAPSHOT_FILE}");
        let snapshot_tmp = format!("{prefix}{SNAPSHOT_TMP}");
        let (state, wal, stats) = recover(&vfs, opts, &wal_path, &snapshot_path, &snapshot_tmp)?;
        Ok(DurableStore {
            inner: Mutex::new(Inner {
                vfs,
                wal,
                state,
                opts,
                stats,
                unsynced: 0,
                broken: false,
                scratch: Vec::new(),
                wal_path,
                snapshot_path,
                snapshot_tmp,
            }),
        })
    }

    /// Re-runs recovery in place on the same backend and paths — the
    /// operator path out of [`StoreError::Broken`].
    ///
    /// A broken handle means the in-memory state may be ahead of the disk;
    /// in particular, after a *failed fsync* the kernel may have discarded
    /// the dirty pages while clearing the error, so retrying the fsync on
    /// the same file would report success for bytes that never landed (the
    /// fsyncgate failure mode). This store therefore never re-syncs a
    /// poisoned handle. `reopen` instead discards the in-memory state,
    /// re-reads what is *actually* durable (snapshot + valid WAL prefix on
    /// a fresh handle), writes a fresh snapshot, and un-breaks the store.
    /// Records acknowledged as committed are preserved by construction;
    /// records lost to the failure were never acknowledged as durable.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::open`] — if the backend is still failing, the
    /// store stays broken and the error is returned.
    pub fn reopen(&self) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        let (state, wal, fresh) =
            recover(&inner.vfs, inner.opts, &inner.wal_path, &inner.snapshot_path, &inner.snapshot_tmp)?;
        inner.state = state;
        inner.wal = wal;
        // Lifetime counters accumulate across the reopen; point-in-time
        // gauges (wal_bytes) take the recovered value.
        inner.stats.records_replayed += fresh.records_replayed;
        inner.stats.snapshots_written += fresh.snapshots_written;
        inner.stats.torn_tails_recovered += fresh.torn_tails_recovered;
        inner.stats.wal_bytes = fresh.wal_bytes;
        inner.unsynced = 0;
        inner.broken = false;
        Ok(())
    }

    fn append_inner(&self, record: &Record, mode: SyncMode) -> Result<u64, StoreError> {
        let mut inner = lock(&self.inner);
        if inner.broken {
            return Err(StoreError::Broken);
        }
        // Backpressure is checked before anything is applied or written:
        // a refused append leaves no trace in memory or on disk, so the
        // caller can sync and retry the identical record.
        if mode == SyncMode::Queue {
            let limit = inner.opts.commit_queue_limit;
            if limit > 0 && inner.unsynced >= limit {
                return Err(StoreError::Backpressure);
            }
        }
        let seq = inner.state.last_seq + 1;
        // Validate-and-apply before touching the disk: an illegal record
        // must never reach the WAL, where replay would refuse it forever.
        inner.state.apply(seq, record)?;
        let mut payload = std::mem::take(&mut inner.scratch);
        payload.clear();
        record.encode(seq, &mut payload);
        let write = inner.wal.append(&payload);
        inner.scratch = payload;
        if let Err(e) = write {
            inner.broken = true; // memory is ahead of disk: reopen to recover
            return Err(e);
        }
        inner.unsynced += 1;
        let must_sync = match mode {
            SyncMode::Force => true,
            SyncMode::Policy => inner.unsynced >= inner.opts.sync_every.max(1),
            // Group commit: the committer (or an explicit sync) decides
            // when the batch hits the platter.
            SyncMode::Queue => false,
        };
        if must_sync {
            if let Err(e) = inner.wal.sync() {
                inner.broken = true;
                return Err(e);
            }
            inner.unsynced = 0;
        }
        inner.stats.records_appended += 1;
        inner.stats.wal_bytes = inner.wal.bytes();
        Ok(seq)
    }

    /// Appends a record, syncing per the store's batching policy. Returns
    /// the record's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::IllegalTransition`] / [`StoreError::Corrupt`] if the
    /// record is invalid against the current state (nothing is written);
    /// [`StoreError::Broken`] once any earlier write failed.
    pub fn append(&self, record: &Record) -> Result<u64, StoreError> {
        self.append_inner(record, SyncMode::Policy)
    }

    /// Appends a record without syncing — the group-commit path. The
    /// record is acknowledged once it is in the OS write queue; it
    /// *commits* when the next [`DurableStore::sync`] (typically a
    /// committer thread on a latency bound) returns. A crash before that
    /// sync loses the record; group-commit callers must be able to re-run
    /// the work that produced it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Backpressure`] if [`StoreOptions::commit_queue_limit`]
    /// is non-zero and that many records are already awaiting their sync
    /// (nothing is applied or written — sync and retry); otherwise as
    /// [`DurableStore::append`].
    pub fn append_nosync(&self, record: &Record) -> Result<u64, StoreError> {
        self.append_inner(record, SyncMode::Queue)
    }

    /// Appends a record and syncs unconditionally: when this returns the
    /// record is committed. The CRP path uses this — a consume must be
    /// durable *before* the response is released.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::append`].
    pub fn append_synced(&self, record: &Record) -> Result<u64, StoreError> {
        self.append_inner(record, SyncMode::Force)
    }

    /// Flushes any batched appends to stable storage.
    ///
    /// A failed flush permanently poisons this handle (fsyncgate
    /// semantics): the kernel may clear the error state while discarding
    /// the dirty pages, so a retried fsync on the same file could claim
    /// durability for bytes that never landed. The store never retries —
    /// every later call reports [`StoreError::Broken`] until
    /// [`DurableStore::reopen`] re-reads what is actually durable.
    ///
    /// # Errors
    ///
    /// I/O errors from the backend; [`StoreError::Broken`] after a failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        if inner.broken {
            return Err(StoreError::Broken);
        }
        if inner.unsynced > 0 {
            if let Err(e) = inner.wal.sync() {
                inner.broken = true;
                return Err(e);
            }
            inner.unsynced = 0;
        }
        Ok(())
    }

    /// Writes a fresh snapshot and compacts the WAL (bounding recovery
    /// time and disk use on long campaigns).
    ///
    /// # Errors
    ///
    /// I/O errors from the backend; [`StoreError::Broken`] after a failure.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        if inner.broken {
            return Err(StoreError::Broken);
        }
        let result = (|| {
            write_snapshot(&*inner.vfs, &inner.state, &inner.snapshot_tmp, &inner.snapshot_path)?;
            Wal::create(Arc::clone(&inner.vfs), &inner.wal_path)
        })();
        match result {
            Ok(wal) => {
                inner.wal = wal;
                inner.unsynced = 0;
                inner.stats.snapshots_written += 1;
                inner.stats.wal_bytes = inner.wal.bytes();
                Ok(())
            }
            Err(e) => {
                inner.broken = true;
                Err(e)
            }
        }
    }

    /// A copy of the current materialised state.
    pub fn state(&self) -> StoreState {
        lock(&self.inner).state.clone()
    }

    /// Runs `f` against the materialised state under the store lock —
    /// the clone-free way to walk a million devices at restore time.
    pub fn with_state<T>(&self, f: impl FnOnce(&StoreState) -> T) -> T {
        f(&lock(&self.inner).state)
    }

    /// Records appended but not yet synced (the group-commit queue depth).
    pub fn unsynced(&self) -> u32 {
        lock(&self.inner).unsynced
    }

    /// Campaign identity, if recorded.
    pub fn meta(&self) -> Option<MetaInfo> {
        lock(&self.inner).state.meta
    }

    /// Whether a challenge has been durably consumed.
    pub fn is_spent(&self, a: u64, b: u64) -> bool {
        lock(&self.inner).state.is_spent(a, b)
    }

    /// Device counts by lifecycle state.
    pub fn status_tally(&self) -> StatusTally {
        lock(&self.inner).state.status_tally()
    }

    /// Durability counters.
    pub fn stats(&self) -> StoreStats {
        lock(&self.inner).stats
    }

    /// Whether a write failure has poisoned this handle (reopen to
    /// recover).
    pub fn is_broken(&self) -> bool {
        lock(&self.inner).broken
    }
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("DurableStore")
            .field("last_seq", &inner.state.last_seq)
            .field("stats", &inner.stats)
            .field("broken", &inner.broken)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::record::StoredStatus;
    use crate::vfs::{SimVfs, TornMode};

    fn open_sim(vfs: &SimVfs) -> DurableStore {
        DurableStore::open(Arc::new(vfs.clone()), StoreOptions::default()).unwrap()
    }

    #[test]
    fn fresh_open_then_reopen_replays_nothing() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        assert_eq!(store.state().last_seq, 0);
        drop(store);
        let store = open_sim(&vfs);
        assert_eq!(store.stats().records_replayed, 0);
        assert_eq!(store.stats().torn_tails_recovered, 0);
    }

    #[test]
    fn appended_records_survive_reopen_via_snapshot() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 4 }).unwrap();
        store.append(&Record::CrpConsumed { a: 10, b: 20 }).unwrap();
        assert_eq!(store.stats().records_appended, 2);
        drop(store);
        let store = open_sim(&vfs);
        // Replayed from the WAL…
        assert_eq!(store.stats().records_replayed, 2);
        assert!(store.is_spent(10, 20));
        assert_eq!(store.state().devices[&4].status, StoredStatus::Active);
        drop(store);
        // …then covered by the open-time snapshot: the third open replays
        // nothing because compaction emptied the WAL.
        let store = open_sim(&vfs);
        assert_eq!(store.stats().records_replayed, 0);
        assert!(store.is_spent(10, 20));
    }

    #[test]
    fn unsynced_tail_is_recovered_and_counted() {
        let vfs = SimVfs::new();
        let store =
            DurableStore::open(Arc::new(vfs.clone()), StoreOptions { sync_every: 1000, ..StoreOptions::default() })
                .unwrap();
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        store.sync().unwrap();
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap(); // never synced
                                                                  // Power-cut with a torn tail: the unsynced frame is half-written.
        let disk = vfs.power_cut(TornMode::Torn);
        let store = open_sim(&disk);
        assert_eq!(store.stats().records_replayed, 1, "only the committed record");
        assert_eq!(store.stats().torn_tails_recovered, 1);
        assert!(store.state().devices.contains_key(&1));
        assert!(!store.state().devices.contains_key(&2));
    }

    #[test]
    fn illegal_records_never_reach_the_wal() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        let err = store.append(&Record::DeviceEnrolled { id: 1 }).unwrap_err();
        assert!(matches!(err, StoreError::IllegalTransition { id: 1, .. }));
        // The refused record left no trace: reopen replays only the good one.
        drop(store);
        let store = open_sim(&vfs);
        assert_eq!(store.stats().records_replayed, 1);
    }

    #[test]
    fn write_failure_breaks_the_handle() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        let ops = vfs.ops();
        vfs.set_crash_at(Some(ops)); // next mutating op dies
        assert!(matches!(store.append(&Record::DeviceEnrolled { id: 2 }), Err(StoreError::Crashed)));
        assert!(store.is_broken());
        assert!(matches!(store.append(&Record::DeviceEnrolled { id: 3 }), Err(StoreError::Broken)));
        assert!(matches!(store.sync(), Err(StoreError::Broken)));
        assert!(matches!(store.checkpoint(), Err(StoreError::Broken)));
    }

    #[test]
    fn fsync_failure_poisons_the_handle_until_reopen() {
        use crate::vfs::{ErrorInjection, InjectedErrorKind};
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        // The next WAL append lands in the cache, but its fsync fails.
        vfs.inject(ErrorInjection::at_op(vfs.ops() + 1, InjectedErrorKind::SyncFail));
        assert!(matches!(store.append(&Record::DeviceEnrolled { id: 2 }), Err(StoreError::Io(_))));
        // fsyncgate: the handle is poisoned — no retry ever re-syncs it.
        assert!(store.is_broken());
        assert!(matches!(store.sync(), Err(StoreError::Broken)));
        // reopen re-reads what is actually durable on a fresh handle. The
        // record whose fsync failed was never acknowledged durable; it may
        // or may not survive (here the cache still holds it, so replay
        // finds it — durable now, which is sound either way).
        store.reopen().unwrap();
        assert!(!store.is_broken());
        assert!(store.state().devices.contains_key(&1));
        // The store is writable again after recovery.
        store.append(&Record::DeviceEnrolled { id: 7 }).unwrap();
        assert!(store.state().devices.contains_key(&7));
    }

    #[test]
    fn reopen_on_a_still_sick_disk_stays_broken() {
        use crate::vfs::{ErrorInjection, InjectedErrorKind};
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        vfs.inject(ErrorInjection::on_prefix("", InjectedErrorKind::Eio).sticky());
        assert!(store.append(&Record::DeviceEnrolled { id: 2 }).is_err());
        assert!(store.is_broken());
        assert!(store.reopen().is_err(), "recovery on a dead disk must fail");
        assert!(store.is_broken(), "a failed reopen leaves the handle poisoned");
        // Disk replaced: recovery succeeds and the committed record is back.
        vfs.clear_injections("");
        store.reopen().unwrap();
        assert!(store.state().devices.contains_key(&1));
    }

    #[test]
    fn checkpoint_compacts_the_wal() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        for id in 0..10 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        let before = store.stats().wal_bytes;
        store.checkpoint().unwrap();
        let after = store.stats().wal_bytes;
        assert!(after < before, "compaction must shrink the WAL ({before} -> {after})");
        assert_eq!(after, wal::WAL_MAGIC.len() as u64);
        drop(store);
        let store = open_sim(&vfs);
        assert_eq!(store.stats().records_replayed, 0, "snapshot covers everything");
        assert_eq!(store.state().devices.len(), 10);
    }

    #[test]
    fn group_commit_queue_applies_backpressure_and_drains_on_sync() {
        let vfs = SimVfs::new();
        let store = DurableStore::open(
            Arc::new(vfs.clone()),
            StoreOptions { commit_queue_limit: 2, ..StoreOptions::default() },
        )
        .unwrap();
        store.append_nosync(&Record::DeviceEnrolled { id: 0 }).unwrap();
        store.append_nosync(&Record::DeviceEnrolled { id: 1 }).unwrap();
        assert_eq!(store.unsynced(), 2);
        // Queue full: the refused append leaves no trace, in memory or on
        // disk, so the identical record succeeds after a sync.
        let err = store.append_nosync(&Record::DeviceEnrolled { id: 2 }).unwrap_err();
        assert_eq!(err, StoreError::Backpressure);
        assert!(!store.state().devices.contains_key(&2));
        store.sync().unwrap();
        assert_eq!(store.unsynced(), 0);
        store.append_nosync(&Record::DeviceEnrolled { id: 2 }).unwrap();
        // Unsynced group-commit records are volatile: a power cut that
        // drops the cache loses exactly the unsynced suffix.
        let disk = vfs.power_cut(TornMode::Drop);
        let store = open_sim(&disk);
        assert_eq!(store.stats().records_replayed, 2);
        assert!(!store.state().devices.contains_key(&2));
    }

    #[test]
    fn prefixed_stores_share_a_directory_without_interfering() {
        let vfs = SimVfs::new();
        let a = DurableStore::open_at(Arc::new(vfs.clone()), StoreOptions::default(), "shard-000/").unwrap();
        let b = DurableStore::open_at(Arc::new(vfs.clone()), StoreOptions::default(), "shard-001/").unwrap();
        a.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        b.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
        b.checkpoint().unwrap();
        drop(a);
        drop(b);
        assert!(vfs.exists("shard-000/wal.log"));
        assert!(vfs.exists("shard-001/snapshot.bin"));
        let a = DurableStore::open_at(Arc::new(vfs.clone()), StoreOptions::default(), "shard-000/").unwrap();
        let b = DurableStore::open_at(Arc::new(vfs.clone()), StoreOptions::default(), "shard-001/").unwrap();
        assert!(a.state().devices.contains_key(&1));
        assert!(!a.state().devices.contains_key(&2));
        assert!(b.state().devices.contains_key(&2));
    }

    #[test]
    fn meta_round_trips_and_conflicts_are_refused() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        let meta = Record::Meta { config_hash: 7, devices: 3, sessions_per_device: 2, seed: 11 };
        store.append(&meta).unwrap();
        assert_eq!(store.meta().unwrap().config_hash, 7);
        // Re-stating the same identity is idempotent; changing it is not.
        store.append(&meta).unwrap();
        assert!(store
            .append(&Record::Meta { config_hash: 8, devices: 3, sessions_per_device: 2, seed: 11 })
            .is_err());
        drop(store);
        let store = open_sim(&vfs);
        assert_eq!(store.meta().unwrap().seed, 11);
    }

    #[test]
    fn snapshot_corruption_is_fatal_not_silent() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        drop(store);
        // Flip one byte inside the (synced, atomically renamed) snapshot:
        // this is disk rot, not a torn write, and must stop recovery.
        let mut img = vfs.read(SNAPSHOT_FILE).unwrap().unwrap();
        let last = img.len() - 1;
        img[last] ^= 0x40;
        vfs.truncate(SNAPSHOT_FILE, &img).unwrap();
        vfs.sync(SNAPSHOT_FILE).unwrap();
        let err = DurableStore::open(Arc::new(vfs), StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }
}
