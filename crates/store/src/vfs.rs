//! The `Vfs` trait: every byte the store persists goes through here.
//!
//! Durability claims are only as good as the failure model they were
//! tested against, so the store never touches `std::fs` directly. It
//! writes through a [`Vfs`], and two implementations exist:
//!
//! * [`StdVfs`] — the production backend over a real directory, with
//!   cached append handles, `sync_all` for flushes, and a best-effort
//!   directory sync after renames;
//! * [`SimVfs`] — an in-memory disk with an explicit *volatile / synced*
//!   split per file and a crash plan: the `n`-th mutating operation fails
//!   with [`StoreError::Crashed`] and the backend refuses all further
//!   writes, modelling the process dying at that exact boundary. A
//!   [`SimVfs::power_cut`] then yields the disk an observer would find
//!   after reboot — synced prefixes survive, unsynced tails are dropped,
//!   kept, torn in half, or bit-flipped per [`TornMode`].
//!
//! Because every mutating call is one numbered operation, a test can run
//! a workload once to count its operations and then re-run it crashing at
//! *every* boundary — recovery is proven by exhaustive enumeration, not
//! sampling.

use crate::StoreError;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Poison-tolerant lock: the store's state is a counters-and-bytes record
/// that stays internally consistent under any interleaving, and a panic
/// on one session thread must not wedge persistence for the rest.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Abstract file operations the store is written against.
///
/// Paths are store-relative names (`wal.log`, `snapshot.bin`); the backend
/// decides where they live. All methods take `&self` — implementations
/// carry their own interior mutability, since WAL appends arrive from
/// many worker threads.
pub trait Vfs: Send + Sync {
    /// Reads a whole file; `Ok(None)` if it does not exist.
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError>;
    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;
    /// Appends bytes to the end of a file, creating it if missing. The
    /// bytes are *volatile* until [`Vfs::sync`] returns.
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Flushes a file's volatile bytes to stable storage.
    fn sync(&self, path: &str) -> Result<(), StoreError>;
    /// Creates or replaces a file with exactly `bytes` (volatile until
    /// synced).
    fn truncate(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Atomically renames `from` onto `to` (replacing it). The rename
    /// either happened or it did not; there is no torn intermediate.
    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError>;
    /// Removes a file; missing files are not an error.
    fn remove(&self, path: &str) -> Result<(), StoreError>;
}

// ---------------------------------------------------------------- StdVfs

/// The production backend: a directory on the real filesystem.
pub struct StdVfs {
    root: PathBuf,
    // Append handles are cached so a WAL append is one `write` syscall,
    // not an open/write/close per record.
    handles: Mutex<HashMap<String, fs::File>>,
}

impl StdVfs {
    /// Opens (creating if needed) `root` as the store directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::Io(format!("create {}: {e}", root.display())))?;
        Ok(StdVfs { root, handles: Mutex::new(HashMap::new()) })
    }

    /// The directory this backend writes into.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn abs(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    /// Sharded stores name files inside per-shard subdirectories
    /// (`shard-000/wal.log`); creating files there must create the
    /// directory first.
    fn ensure_parent(&self, path: &str) -> Result<(), StoreError> {
        let abs = self.abs(path);
        if let Some(parent) = abs.parent() {
            if parent != self.root && !parent.exists() {
                fs::create_dir_all(parent).map_err(|e| StoreError::Io(format!("create {}: {e}", parent.display())))?;
            }
        }
        Ok(())
    }

    fn io(&self, op: &str, path: &str, e: std::io::Error) -> StoreError {
        StoreError::Io(format!("{op} {}: {e}", self.abs(path).display()))
    }

    /// Best-effort directory sync so a rename's metadata survives power
    /// loss; ignored on platforms where opening a directory fails.
    fn sync_dir(&self) {
        if let Ok(dir) = fs::File::open(&self.root) {
            // analyze: allow(dur: documented best-effort dir sync; data-file fsync already happened and some platforms cannot sync a directory)
            let _ = dir.sync_all();
        }
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.abs(path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(self.io("read", path, e)),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.abs(path).exists()
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut handles = lock(&self.handles);
        if !handles.contains_key(path) {
            self.ensure_parent(path)?;
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.abs(path))
                .map_err(|e| self.io("open", path, e))?;
            handles.insert(path.to_string(), file);
        }
        match handles.get_mut(path) {
            Some(file) => file.write_all(bytes).map_err(|e| self.io("append", path, e)),
            None => Err(StoreError::Io(format!("append {path}: handle vanished"))),
        }
    }

    fn sync(&self, path: &str) -> Result<(), StoreError> {
        let handles = lock(&self.handles);
        match handles.get(path) {
            Some(file) => file.sync_all().map_err(|e| self.io("sync", path, e)),
            // Nothing appended through us yet: sync the file if it exists,
            // else there is nothing volatile to flush.
            None => match fs::File::open(self.abs(path)) {
                Ok(file) => file.sync_all().map_err(|e| self.io("sync", path, e)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(self.io("sync", path, e)),
            },
        }
    }

    fn truncate(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        // Drop any cached append handle: its position is stale after the
        // file is replaced.
        lock(&self.handles).remove(path);
        self.ensure_parent(path)?;
        fs::write(self.abs(path), bytes).map_err(|e| self.io("truncate", path, e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut handles = lock(&self.handles);
        handles.remove(from);
        handles.remove(to);
        fs::rename(self.abs(from), self.abs(to)).map_err(|e| {
            StoreError::Io(format!("rename {} -> {}: {e}", self.abs(from).display(), self.abs(to).display()))
        })?;
        drop(handles);
        self.sync_dir();
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), StoreError> {
        lock(&self.handles).remove(path);
        match fs::remove_file(self.abs(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(self.io("remove", path, e)),
        }
    }
}

// ---------------------------------------------------------------- SimVfs

/// What happens to a file's *unsynced* bytes when the power is cut.
///
/// The synced prefix always survives; the modes enumerate the fates a
/// real disk cache can hand the unsynced tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornMode {
    /// The cache never reached the platter: unsynced bytes vanish.
    Drop,
    /// The cache made it out just in time: unsynced bytes survive intact.
    Keep,
    /// The write was cut mid-flight: half of the unsynced bytes survive.
    Torn,
    /// The tail landed but a bit rotted: all unsynced bytes survive with
    /// the last one corrupted.
    Flip,
}

/// All torn modes, for exhaustive matrices.
pub const TORN_MODES: [TornMode; 4] = [TornMode::Drop, TornMode::Keep, TornMode::Torn, TornMode::Flip];

/// The flavour of *recoverable* I/O failure an [`ErrorInjection`] fires —
/// unlike a crash, the process model survives and sees a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedErrorKind {
    /// A generic I/O error (EIO): the operation did not happen at all.
    Eio,
    /// The device is out of space (ENOSPC): the operation did not happen.
    NoSpace,
    /// The flush itself failed (the fsyncgate failure mode): volatile
    /// bytes stay volatile, and the store must treat the handle as
    /// poisoned — never retry the fsync against the same file.
    SyncFail,
}

/// All injected error kinds, for exhaustive matrices.
pub const INJECTED_ERROR_KINDS: [InjectedErrorKind; 3] = [
    InjectedErrorKind::Eio,
    InjectedErrorKind::NoSpace,
    InjectedErrorKind::SyncFail,
];

/// One planned recoverable I/O failure on a [`SimVfs`].
///
/// An injection *triggers* when its target operation arrives: the
/// `at_op`-th mutating operation, the `at_read`-th read, or (with neither
/// set) the first operation touching a matching path. A triggered
/// injection fails that operation with a typed error and **no partial
/// effect** — the disk is exactly as it was. One-shot injections then
/// retire (a transient fault); sticky ones keep failing every matching
/// operation *and read* from then on (a dying disk), until
/// [`SimVfs::clear_injections`] models its replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInjection {
    /// Trigger on this mutating-operation number (same 0-based counter as
    /// the crash plan, so one probe run calibrates both matrices).
    pub at_op: Option<u64>,
    /// Trigger on this read number (reads have their own 0-based counter;
    /// they are not mutating operations and never shift crash points).
    pub at_read: Option<u64>,
    /// Only paths starting with this prefix are affected (`""` = every
    /// path). Prefix scoping is how a test makes exactly one shard
    /// directory sick while the rest of the disk stays healthy.
    pub path_prefix: String,
    /// What error the failing operation reports.
    pub kind: InjectedErrorKind,
    /// `false`: fail exactly once. `true`: once triggered, fail every
    /// matching operation and read until the injection is cleared.
    pub sticky: bool,
}

impl ErrorInjection {
    /// A one-shot failure of the `op`-th mutating operation, any path.
    pub fn at_op(op: u64, kind: InjectedErrorKind) -> Self {
        ErrorInjection {
            at_op: Some(op),
            at_read: None,
            path_prefix: String::new(),
            kind,
            sticky: false,
        }
    }

    /// A one-shot failure of the `read`-th read, any path.
    pub fn at_read(read: u64, kind: InjectedErrorKind) -> Self {
        ErrorInjection {
            at_op: None,
            at_read: Some(read),
            path_prefix: String::new(),
            kind,
            sticky: false,
        }
    }

    /// A failure armed on the next operation touching `prefix` (one-shot;
    /// chain [`ErrorInjection::sticky`] for a dead disk).
    pub fn on_prefix(prefix: &str, kind: InjectedErrorKind) -> Self {
        ErrorInjection {
            at_op: None,
            at_read: None,
            path_prefix: prefix.to_string(),
            kind,
            sticky: false,
        }
    }

    /// Builder: make this injection sticky.
    #[must_use]
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// Builder: scope this injection to paths under `prefix`.
    #[must_use]
    pub fn under(mut self, prefix: &str) -> Self {
        self.path_prefix = prefix.to_string();
        self
    }

    fn matches_path(&self, path: &str) -> bool {
        self.path_prefix.is_empty() || path.starts_with(&self.path_prefix)
    }
}

/// Derives a deterministic failure plan from a seed: `count` injections
/// with pseudo-random trigger points below `op_bound`, kinds, and
/// stickiness. The schedule is a pure function of the arguments — the
/// determinism property the proptest suite pins — so a failing seed
/// reproduces exactly.
pub fn error_plan(seed: u64, count: usize, op_bound: u64) -> Vec<ErrorInjection> {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let mut x = seed;
    let mut next = || {
        x = x.wrapping_add(1);
        splitmix64(x)
    };
    (0..count)
        .map(|_| {
            let word = next();
            let kind = INJECTED_ERROR_KINDS[(word % 3) as usize];
            let at = next() % op_bound.max(1);
            let mut inj = if word & 4 == 0 {
                ErrorInjection::at_op(at, kind)
            } else {
                ErrorInjection::at_read(at, kind)
            };
            inj.sticky = word & 8 == 0;
            inj
        })
        .collect()
}

fn injection_error(kind: InjectedErrorKind, path: &str) -> StoreError {
    match kind {
        InjectedErrorKind::Eio => StoreError::Io(format!("injected I/O error (EIO) on {path}")),
        InjectedErrorKind::NoSpace => StoreError::NoSpace(format!("injected ENOSPC on {path}")),
        InjectedErrorKind::SyncFail => StoreError::Io(format!("injected fsync failure on {path}")),
    }
}

#[derive(Debug, Clone, Default)]
struct SimFile {
    data: Vec<u8>,
    synced_len: usize,
}

/// An [`ErrorInjection`] plus its runtime trigger state.
#[derive(Debug, Clone)]
struct Injected {
    plan: ErrorInjection,
    /// Sticky injections latch here; one-shot ones retire through `done`.
    triggered: bool,
    done: bool,
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<String, SimFile>,
    ops: u64,
    reads: u64,
    crash_at: Option<u64>,
    crashed: bool,
    injections: Vec<Injected>,
    injected_failures: u64,
}

impl SimState {
    /// First injection due at this (path, op/read) point, if any. Firing
    /// consumes one-shot injections and latches sticky ones.
    fn injected(&mut self, path: &str, op: Option<u64>, read: Option<u64>) -> Option<InjectedErrorKind> {
        for inj in &mut self.injections {
            if inj.done || !inj.plan.matches_path(path) {
                continue;
            }
            let due = if inj.triggered {
                true // sticky and latched: everything matching fails
            } else {
                match (&inj.plan.at_op, &inj.plan.at_read) {
                    (Some(at), _) => op == Some(*at),
                    (None, Some(at)) => read == Some(*at),
                    // No trigger point: arm on the first matching
                    // mutating operation (reads alone never arm it).
                    (None, None) => op.is_some(),
                }
            };
            if due {
                if inj.plan.sticky {
                    inj.triggered = true;
                } else {
                    inj.done = true;
                }
                self.injected_failures += 1;
                return Some(inj.plan.kind);
            }
        }
        None
    }
}

/// An in-memory disk with crash-point injection. Cloning shares the
/// underlying disk (the clone sees the same files).
#[derive(Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// An empty disk with no crash planned.
    pub fn new() -> Self {
        SimVfs::default()
    }

    /// An empty disk that crashes on its `op`-th mutating operation
    /// (0-based).
    pub fn crashing_at(op: u64) -> Self {
        let vfs = SimVfs::new();
        vfs.set_crash_at(Some(op));
        vfs
    }

    /// Plans (or cancels) a crash at mutating operation `op`.
    pub fn set_crash_at(&self, op: Option<u64>) {
        lock(&self.state).crash_at = op;
    }

    /// Mutating operations performed so far. Running a workload once on a
    /// crash-free disk and reading this gives the exhaustive enumeration
    /// bound for the crash matrix.
    pub fn ops(&self) -> u64 {
        lock(&self.state).ops
    }

    /// Whether the planned crash has fired.
    pub fn has_crashed(&self) -> bool {
        lock(&self.state).crashed
    }

    /// The disk as found after reboot: synced prefixes survive verbatim,
    /// each file's unsynced tail meets the fate `mode` prescribes. The
    /// returned disk is independent (further writes do not affect `self`)
    /// and has no crash planned.
    pub fn power_cut(&self, mode: TornMode) -> SimVfs {
        let state = lock(&self.state);
        let mut files = BTreeMap::new();
        for (name, file) in &state.files {
            let synced = file.synced_len.min(file.data.len());
            let tail = &file.data[synced..];
            let mut data = file.data[..synced].to_vec();
            match mode {
                TornMode::Drop => {}
                TornMode::Keep => data.extend_from_slice(tail),
                TornMode::Torn => data.extend_from_slice(&tail[..tail.len() / 2]),
                TornMode::Flip => {
                    data.extend_from_slice(tail);
                    if !tail.is_empty() {
                        let last = data.len() - 1;
                        data[last] ^= 0x01;
                    }
                }
            }
            let synced_len = data.len();
            files.insert(name.clone(), SimFile { data, synced_len });
        }
        SimVfs {
            state: Arc::new(Mutex::new(SimState {
                files,
                ops: 0,
                reads: 0,
                crash_at: None,
                crashed: false,
                // The replacement disk carries no planned failures; tests
                // that want a sick reopened disk inject again explicitly.
                injections: Vec::new(),
                injected_failures: 0,
            })),
        }
    }

    /// Plans a recoverable I/O failure. Multiple injections may be
    /// queued; each operation checks them in insertion order.
    pub fn inject(&self, plan: ErrorInjection) {
        lock(&self.state)
            .injections
            .push(Injected { plan, triggered: false, done: false });
    }

    /// Removes every injection scoped under `prefix` (`""` removes all) —
    /// the "operator replaced the disk" hook a sticky-failure test calls
    /// before exercising the reopen path.
    pub fn clear_injections(&self, prefix: &str) {
        lock(&self.state)
            .injections
            .retain(|inj| !(prefix.is_empty() || inj.plan.path_prefix.starts_with(prefix)));
    }

    /// How many operations have failed by injection so far.
    pub fn injected_failures(&self) -> u64 {
        lock(&self.state).injected_failures
    }

    /// The read counter (reads are numbered separately from mutating
    /// operations and never shift crash points).
    pub fn reads(&self) -> u64 {
        lock(&self.state).reads
    }

    /// Runs one mutating operation: counts it, fires the planned crash at
    /// its boundary, fires any due error injection (instead of the
    /// operation — no partial effect), and otherwise applies `apply`.
    /// `volatile_on_crash` runs instead when the crash fires — it models
    /// the part of the operation that may have reached the (volatile)
    /// cache before the process died.
    fn mutate(
        &self,
        path: &str,
        apply: impl FnOnce(&mut SimState),
        volatile_on_crash: impl FnOnce(&mut SimState),
    ) -> Result<(), StoreError> {
        let mut state = lock(&self.state);
        if state.crashed {
            return Err(StoreError::Crashed);
        }
        let op = state.ops;
        state.ops += 1;
        if state.crash_at == Some(op) {
            state.crashed = true;
            volatile_on_crash(&mut state);
            return Err(StoreError::Crashed);
        }
        if let Some(kind) = state.injected(path, Some(op), None) {
            return Err(injection_error(kind, path));
        }
        apply(&mut state);
        Ok(())
    }
}

impl Vfs for SimVfs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError> {
        let mut state = lock(&self.state);
        if state.crashed {
            return Err(StoreError::Crashed);
        }
        let read = state.reads;
        state.reads += 1;
        if let Some(kind) = state.injected(path, None, Some(read)) {
            return Err(injection_error(kind, path));
        }
        Ok(state.files.get(path).map(|f| f.data.clone()))
    }

    fn exists(&self, path: &str) -> bool {
        lock(&self.state).files.contains_key(path)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let write = |state: &mut SimState| {
            state.files.entry(path.to_string()).or_default().data.extend_from_slice(bytes);
        };
        // A crashing append still reaches the volatile cache: whether any
        // of it survives is decided by the power-cut mode.
        self.mutate(path, write, write)
    }

    fn sync(&self, path: &str) -> Result<(), StoreError> {
        self.mutate(
            path,
            |state| {
                if let Some(f) = state.files.get_mut(path) {
                    f.synced_len = f.data.len();
                }
            },
            |_| {},
        )
    }

    fn truncate(&self, path: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let replace = |state: &mut SimState| {
            state
                .files
                .insert(path.to_string(), SimFile { data: bytes.to_vec(), synced_len: 0 });
        };
        self.mutate(path, replace, replace)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        self.mutate(
            from,
            |state| {
                if let Some(file) = state.files.remove(from) {
                    state.files.insert(to.to_string(), file);
                }
            },
            // Renames are atomic metadata operations: a crash at this
            // boundary means the rename did not happen.
            |_| {},
        )
    }

    fn remove(&self, path: &str) -> Result<(), StoreError> {
        self.mutate(
            path,
            |state| {
                state.files.remove(path);
            },
            |_| {},
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn sim_append_sync_read_roundtrip() {
        let vfs = SimVfs::new();
        vfs.append("f", b"hello ").unwrap();
        vfs.append("f", b"world").unwrap();
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"hello world");
        vfs.sync("f").unwrap();
        assert!(vfs.exists("f"));
        assert!(!vfs.exists("g"));
        assert_eq!(vfs.ops(), 3);
    }

    #[test]
    fn power_cut_modes_shape_the_unsynced_tail() {
        let make = || {
            let vfs = SimVfs::new();
            vfs.append("f", b"safe").unwrap();
            vfs.sync("f").unwrap();
            vfs.append("f", b"1234").unwrap();
            vfs
        };
        let read = |vfs: &SimVfs| vfs.read("f").unwrap().unwrap();
        assert_eq!(read(&make().power_cut(TornMode::Drop)), b"safe");
        assert_eq!(read(&make().power_cut(TornMode::Keep)), b"safe1234");
        assert_eq!(read(&make().power_cut(TornMode::Torn)), b"safe12");
        assert_eq!(read(&make().power_cut(TornMode::Flip)), b"safe123\x35");
    }

    #[test]
    fn crash_fires_once_and_sticks() {
        let vfs = SimVfs::crashing_at(1);
        vfs.append("f", b"a").unwrap();
        assert_eq!(vfs.append("f", b"b"), Err(StoreError::Crashed));
        assert!(vfs.has_crashed());
        assert_eq!(vfs.sync("f"), Err(StoreError::Crashed));
        assert_eq!(vfs.read("f"), Err(StoreError::Crashed));
        // The crashing append reached the cache; Keep preserves it, Drop
        // loses everything unsynced.
        assert_eq!(vfs.power_cut(TornMode::Keep).read("f").unwrap().unwrap(), b"ab");
        assert_eq!(vfs.power_cut(TornMode::Drop).read("f").unwrap().unwrap(), b"");
    }

    #[test]
    fn crashing_rename_does_not_happen() {
        let vfs = SimVfs::new();
        vfs.truncate("tmp", b"x").unwrap();
        vfs.sync("tmp").unwrap();
        vfs.set_crash_at(Some(2));
        assert_eq!(vfs.rename("tmp", "final"), Err(StoreError::Crashed));
        let disk = vfs.power_cut(TornMode::Keep);
        assert!(disk.exists("tmp"));
        assert!(!disk.exists("final"));
    }

    #[test]
    fn one_shot_injection_fires_once_with_no_partial_effect() {
        let vfs = SimVfs::new();
        vfs.inject(ErrorInjection::at_op(1, InjectedErrorKind::Eio));
        vfs.append("f", b"aa").unwrap();
        let err = vfs.append("f", b"bb").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
        // No partial effect: the refused append left the file untouched.
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"aa");
        // One-shot: the next attempt succeeds, and op numbering counted
        // the failed attempt (crash matrices rely on stable numbering).
        vfs.append("f", b"bb").unwrap();
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"aabb");
        assert_eq!(vfs.ops(), 3);
        assert_eq!(vfs.injected_failures(), 1);
    }

    #[test]
    fn sticky_injection_kills_matching_ops_and_reads() {
        let vfs = SimVfs::new();
        vfs.append("shard-001/wal", b"x").unwrap();
        vfs.append("shard-000/wal", b"y").unwrap();
        vfs.inject(ErrorInjection::on_prefix("shard-001/", InjectedErrorKind::NoSpace).sticky());
        assert_eq!(
            vfs.append("shard-001/wal", b"z"),
            Err(StoreError::NoSpace("injected ENOSPC on shard-001/wal".into()))
        );
        // Once latched, the sick prefix fails reads and syncs too...
        assert!(vfs.read("shard-001/wal").is_err());
        assert!(vfs.sync("shard-001/wal").is_err());
        // ...while the healthy shard is completely unaffected.
        vfs.append("shard-000/wal", b"y").unwrap();
        vfs.sync("shard-000/wal").unwrap();
        assert_eq!(vfs.read("shard-000/wal").unwrap().unwrap(), b"yy");
        // Replacing the disk clears the fault; the surviving bytes are
        // whatever was on the platter before it died.
        vfs.clear_injections("shard-001/");
        assert_eq!(vfs.read("shard-001/wal").unwrap().unwrap(), b"x");
        vfs.append("shard-001/wal", b"z").unwrap();
        assert!(vfs.injected_failures() >= 3);
    }

    #[test]
    fn sync_failure_leaves_the_tail_volatile() {
        let vfs = SimVfs::new();
        vfs.append("f", b"tail").unwrap();
        vfs.inject(ErrorInjection::at_op(1, InjectedErrorKind::SyncFail));
        assert!(vfs.sync("f").is_err());
        // The failed fsync durable-ized nothing: a power cut drops the tail.
        assert_eq!(vfs.power_cut(TornMode::Drop).read("f").unwrap().unwrap(), b"");
    }

    #[test]
    fn read_injection_uses_its_own_counter() {
        let vfs = SimVfs::new();
        vfs.append("f", b"abc").unwrap();
        vfs.inject(ErrorInjection::at_read(1, InjectedErrorKind::Eio));
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"abc");
        assert!(vfs.read("f").is_err());
        assert_eq!(vfs.read("f").unwrap().unwrap(), b"abc");
        assert_eq!(vfs.reads(), 3);
        // Reads never consumed mutating-op numbers.
        assert_eq!(vfs.ops(), 1);
    }

    #[test]
    fn power_cut_disks_carry_no_injections() {
        let vfs = SimVfs::new();
        vfs.inject(ErrorInjection::on_prefix("", InjectedErrorKind::Eio).sticky());
        assert!(vfs.append("f", b"x").is_err());
        let disk = vfs.power_cut(TornMode::Keep);
        disk.append("f", b"x").unwrap();
        assert_eq!(disk.injected_failures(), 0);
    }

    #[test]
    fn error_plan_is_a_pure_function_of_its_seed() {
        let a = error_plan(42, 16, 100);
        let b = error_plan(42, 16, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let c = error_plan(43, 16, 100);
        assert_ne!(a, c, "different seeds should give different schedules");
        for inj in &a {
            let at = inj.at_op.or(inj.at_read).expect("plan entries carry a trigger point");
            assert!(at < 100);
        }
    }

    #[test]
    fn std_vfs_roundtrip_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("pufatt-store-vfs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let vfs = StdVfs::open(&dir).unwrap();
        assert_eq!(vfs.read("wal").unwrap(), None);
        vfs.append("wal", b"abc").unwrap();
        vfs.sync("wal").unwrap();
        vfs.append("wal", b"def").unwrap();
        assert_eq!(vfs.read("wal").unwrap().unwrap(), b"abcdef");
        vfs.truncate("tmp", b"snap").unwrap();
        vfs.sync("tmp").unwrap();
        vfs.rename("tmp", "snapshot").unwrap();
        assert!(!vfs.exists("tmp"));
        assert_eq!(vfs.read("snapshot").unwrap().unwrap(), b"snap");
        vfs.remove("snapshot").unwrap();
        vfs.remove("snapshot").unwrap(); // idempotent
        assert!(!vfs.exists("snapshot"));
        // Nested shard paths create their directory on first write.
        vfs.append("shard-003/wal", b"xyz").unwrap();
        assert_eq!(vfs.read("shard-003/wal").unwrap().unwrap(), b"xyz");
        vfs.truncate("shard-003/snap.tmp", b"s").unwrap();
        vfs.rename("shard-003/snap.tmp", "shard-003/snap").unwrap();
        assert_eq!(vfs.read("shard-003/snap").unwrap().unwrap(), b"s");
        let _ = fs::remove_dir_all(&dir);
    }
}
