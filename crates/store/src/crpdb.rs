//! Durable CRP consumption: consume-once across process restarts.
//!
//! The in-memory [`CrpDatabase`] already refuses replays *within* one
//! process. [`DurableCrpDb`] extends the guarantee across crashes: every
//! consume is journaled (challenge only — responses never touch the disk)
//! and synced *before* the response is released, so the failure direction
//! is always "lose an unused CRP", never "re-issue a consumed one". On
//! open, the persisted spent set is re-applied to the database, turning a
//! post-recovery consume of an already-spent challenge into the same typed
//! [`PufattError::ChallengeReused`] an in-process replay gets.

use crate::record::Record;
use crate::store::DurableStore;
use crate::StoreError;
use pufatt::enroll::CrpDatabase;
use pufatt::PufattError;
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use std::sync::Arc;

/// A [`CrpDatabase`] whose consume-once discipline survives restarts.
#[derive(Debug)]
pub struct DurableCrpDb {
    db: CrpDatabase,
    store: Arc<DurableStore>,
}

impl DurableCrpDb {
    /// Wraps a freshly (re)built database, re-applying the store's
    /// persisted spent set — challenges consumed before a crash are spent
    /// here too, whatever the database itself remembers.
    pub fn open(mut db: CrpDatabase, store: Arc<DurableStore>) -> Self {
        let spent: Vec<Challenge> = db.challenges().filter(|ch| store.is_spent(ch.a, ch.b)).collect();
        for ch in spent {
            db.mark_spent(ch);
        }
        DurableCrpDb { db, store }
    }

    /// Consumes a CRP durably: the consumption is journaled and synced
    /// first, then the reference response is released. A crash between
    /// the two loses the CRP — the fail-safe direction.
    ///
    /// # Errors
    ///
    /// [`PufattError::ChallengeReused`] / [`PufattError::ChallengeUnknown`]
    /// from the underlying database (nothing is journaled for either);
    /// [`PufattError::Storage`] if the journal write fails (the response
    /// is withheld — it may not have committed).
    pub fn consume(&mut self, challenge: Challenge) -> Result<RawResponse, PufattError> {
        // Refuse replays and strangers before touching the journal, with
        // the database's own typed errors.
        if self.db.peek(challenge).is_none() {
            return self.db.consume(challenge);
        }
        self.store
            .append_synced(&Record::CrpConsumed { a: challenge.a, b: challenge.b })
            .map_err(|e: StoreError| PufattError::Storage(e.to_string()))?;
        self.db.consume(challenge)
    }

    /// Looks up a reference response without consuming it.
    pub fn peek(&self, challenge: Challenge) -> Option<RawResponse> {
        self.db.peek(challenge)
    }

    /// The wrapped database (read-only).
    pub fn database(&self) -> &CrpDatabase {
        &self.db
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::store::StoreOptions;
    use crate::vfs::{SimVfs, TORN_MODES};
    use pufatt::enroll::enroll;
    use pufatt_alupuf::device::{AluPufConfig, ArbiterConfig};

    fn small_db() -> CrpDatabase {
        let cfg = AluPufConfig {
            width: 16,
            arbiter: ArbiterConfig::asic(),
            design_seed: 3,
            ..AluPufConfig::paper_32bit()
        };
        let dev = enroll(cfg, 11, 0).unwrap();
        dev.record_crp_database_batch(6, 40, 41, 1)
    }

    fn sorted_challenges(db: &CrpDatabase) -> Vec<Challenge> {
        let mut keys: Vec<_> = db.challenges().collect();
        keys.sort_by_key(|c| (c.a, c.b));
        keys
    }

    #[test]
    fn consume_survives_restart_as_a_typed_refusal() {
        let vfs = SimVfs::new();
        let base = small_db();
        let ch = sorted_challenges(&base)[0];

        let store = Arc::new(DurableStore::open(Arc::new(vfs.clone()), StoreOptions::default()).unwrap());
        let mut durable = DurableCrpDb::open(base.clone(), Arc::clone(&store));
        durable.consume(ch).unwrap();
        drop(durable);
        drop(store);

        // "Restart": rebuild the database from enrollment, reopen the store.
        let store = Arc::new(DurableStore::open(Arc::new(vfs), StoreOptions::default()).unwrap());
        assert!(store.is_spent(ch.a, ch.b));
        let mut durable = DurableCrpDb::open(base, store);
        assert!(
            matches!(durable.consume(ch), Err(PufattError::ChallengeReused { challenge }) if challenge == ch),
            "a consumed CRP must never be re-issued after recovery"
        );
    }

    #[test]
    fn journal_failure_withholds_the_response() {
        let vfs = SimVfs::new();
        let base = small_db();
        let keys = sorted_challenges(&base);
        let store = Arc::new(DurableStore::open(Arc::new(vfs.clone()), StoreOptions::default()).unwrap());
        let mut durable = DurableCrpDb::open(base.clone(), Arc::clone(&store));
        durable.consume(keys[0]).unwrap();
        // Crash on the next journal write: the consume must fail…
        vfs.set_crash_at(Some(vfs.ops()));
        assert!(matches!(durable.consume(keys[1]), Err(PufattError::Storage(_))));
        // …and after reboot the un-journaled challenge is NOT spent (the
        // response was withheld, so nothing leaked), while the first is.
        for mode in TORN_MODES {
            let disk = vfs.power_cut(mode);
            let store = Arc::new(DurableStore::open(Arc::new(disk), StoreOptions::default()).unwrap());
            assert!(store.is_spent(keys[0].a, keys[0].b), "committed consume survives ({mode:?})");
            let mut durable = DurableCrpDb::open(base.clone(), store);
            assert!(
                matches!(durable.consume(keys[0]), Err(PufattError::ChallengeReused { .. })),
                "committed consume refused after recovery ({mode:?})"
            );
        }
    }
}
