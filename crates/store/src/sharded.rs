//! The sharded store: many independent WAL + snapshot pairs behind one
//! facade, with group commit and a background committer.
//!
//! # Why shard
//!
//! A single WAL serialises every fsync behind one file, and a single
//! snapshot rewrites the whole fleet's state on every checkpoint. For a
//! million-device campaign both become the bottleneck. Sharding by
//! device-id range gives each shard its own [`DurableStore`] (own WAL,
//! own snapshot, own compaction schedule) under one directory:
//!
//! ```text
//! state-dir/
//!   manifest.bin          "PUFATTM1" | version | shard_count | range_width | crc
//!   shard-000/wal.log
//!   shard-000/snapshot.bin
//!   shard-001/...
//! ```
//!
//! The manifest is written once at creation (temp file → fsync → rename,
//! like a snapshot) and is authoritative thereafter: reopening with
//! different options keeps the on-disk geometry, because a record's home
//! shard must never move between runs. A directory that holds a legacy
//! single-WAL layout (a root `wal.log` with no manifest) is refused as
//! corrupt rather than silently restarted.
//!
//! # Group commit
//!
//! [`ShardedStore::append`] validates, applies, and writes the frame but
//! does **not** fsync: records accumulate in the OS write queue until the
//! next [`ShardedStore::flush`] — typically issued by a [`Committer`]
//! thread every few milliseconds — commits the whole batch with one fsync
//! per dirty shard. A crash loses at most the unflushed tail, which the
//! deterministic campaign layer re-runs on resume; per-shard recovery
//! still yields exactly a committed prefix. When more records than
//! [`ShardedOptions::commit_queue_limit`] are awaiting their sync on one
//! shard, further appends fail with [`StoreError::Backpressure`] — a
//! typed, retryable refusal rather than unbounded memory-ahead-of-disk.

use crate::record::Record;
use crate::state::{Counters, DeviceState, MetaInfo, StatusTally, StoreState};
use crate::store::{DurableStore, StoreOptions, StoreStats};
use crate::vfs::Vfs;
use crate::wal::crc32;
use crate::StoreError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The shard manifest file name inside a state directory.
pub const MANIFEST_FILE: &str = "manifest.bin";
/// The manifest staging file (atomically renamed onto [`MANIFEST_FILE`]).
pub const MANIFEST_TMP: &str = "manifest.tmp";
/// Identifies a shard manifest (and its format revision).
pub const MANIFEST_MAGIC: [u8; 8] = *b"PUFATTM1";
const MANIFEST_VERSION: u32 = 1;
/// Sanity bound on the shard count a manifest may declare.
pub const MAX_SHARDS: u32 = 1024;

/// Tuning knobs for a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Retained outcomes per device (mirrors the registry's bound).
    pub history_capacity: usize,
    /// Shards to create. Ignored on reopen — the manifest is
    /// authoritative once a directory exists.
    pub shards: u32,
    /// Consecutive device ids per range stripe: device `id` lives in
    /// shard `(id / range_width) % shards`. Ignored on reopen.
    pub range_width: u32,
    /// Per-shard bound on group-commit records awaiting their sync
    /// before [`ShardedStore::append`] refuses with
    /// [`StoreError::Backpressure`]. `0` means unbounded.
    pub commit_queue_limit: u32,
    /// Compact a shard (snapshot + truncate its WAL) once its WAL grows
    /// past this many bytes. `0` disables size-triggered compaction;
    /// [`ShardedStore::checkpoint`] still compacts on demand.
    pub compact_wal_bytes: u64,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            history_capacity: 64,
            shards: 8,
            range_width: 1024,
            commit_queue_limit: 4096,
            compact_wal_bytes: 16 << 20,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn encode_manifest(shards: u32, range_width: u32) -> Vec<u8> {
    let mut out = MANIFEST_MAGIC.to_vec();
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&shards.to_le_bytes());
    out.extend_from_slice(&range_width.to_le_bytes());
    let crc = crc32(&out[MANIFEST_MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<(u32, u32), StoreError> {
    if bytes.len() != MANIFEST_MAGIC.len() + 16 || bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(StoreError::Corrupt("shard manifest header invalid".into()));
    }
    let word = |i: usize| {
        let o = MANIFEST_MAGIC.len() + 4 * i;
        u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
    };
    if crc32(&bytes[MANIFEST_MAGIC.len()..MANIFEST_MAGIC.len() + 12]) != word(3) {
        return Err(StoreError::Corrupt("shard manifest checksum mismatch".into()));
    }
    if word(0) != MANIFEST_VERSION {
        return Err(StoreError::Corrupt(format!("shard manifest version {} unsupported", word(0))));
    }
    let (shards, range_width) = (word(1), word(2));
    if shards == 0 || shards > MAX_SHARDS || range_width == 0 {
        return Err(StoreError::Corrupt(format!(
            "shard manifest geometry implausible ({shards} shards, range width {range_width})"
        )));
    }
    Ok((shards, range_width))
}

/// A device-id-range-sharded durable store: one [`DurableStore`] per
/// shard, a manifest pinning the geometry, and group-commit appends.
pub struct ShardedStore {
    shards: Vec<DurableStore>,
    shard_count: u32,
    range_width: u32,
    compact_wal_bytes: u64,
}

impl ShardedStore {
    /// Opens (creating or recovering) a sharded store over `vfs`.
    ///
    /// On a fresh directory the manifest is committed first (temp file →
    /// fsync → rename), then each shard recovers independently. On
    /// reopen the manifest's geometry overrides `opts.shards` /
    /// `opts.range_width`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a damaged manifest, a legacy
    /// single-WAL layout (a root `wal.log` without a manifest — migrate
    /// it explicitly rather than letting a typo'd path restart a
    /// campaign), implausible geometry in `opts`, or shard-level
    /// corruption; I/O errors from the backend.
    pub fn open(vfs: Arc<dyn Vfs>, opts: ShardedOptions) -> Result<Self, StoreError> {
        let (shard_count, range_width) = match vfs.read(MANIFEST_FILE)? {
            Some(bytes) => decode_manifest(&bytes)?,
            None => {
                if vfs.exists(crate::store::WAL_FILE) || vfs.exists(crate::store::SNAPSHOT_FILE) {
                    return Err(StoreError::Corrupt(
                        "directory holds a legacy single-WAL store (no shard manifest); refusing to overlay a sharded layout on it"
                            .into(),
                    ));
                }
                if opts.shards == 0 || opts.shards > MAX_SHARDS || opts.range_width == 0 {
                    return Err(StoreError::Corrupt(format!(
                        "implausible shard geometry requested ({} shards, range width {})",
                        opts.shards, opts.range_width
                    )));
                }
                let manifest = encode_manifest(opts.shards, opts.range_width);
                vfs.truncate(MANIFEST_TMP, &manifest)?;
                vfs.sync(MANIFEST_TMP)?;
                vfs.rename(MANIFEST_TMP, MANIFEST_FILE)?;
                (opts.shards, opts.range_width)
            }
        };
        let store_opts = StoreOptions {
            history_capacity: opts.history_capacity,
            sync_every: 1,
            commit_queue_limit: opts.commit_queue_limit,
        };
        let mut shards = Vec::with_capacity(shard_count as usize);
        for i in 0..shard_count {
            shards.push(DurableStore::open_at(Arc::clone(&vfs), store_opts, &format!("shard-{i:03}/"))?);
        }
        Ok(ShardedStore {
            shards,
            shard_count,
            range_width,
            compact_wal_bytes: opts.compact_wal_bytes,
        })
    }

    /// The shard a device id lives in.
    pub fn shard_of_id(&self, id: u32) -> usize {
        ((id / self.range_width) % self.shard_count) as usize
    }

    /// The shard a record routes to — exposed so invariant tests can
    /// shadow the store's routing decision for any record.
    pub fn shard_of_record(&self, record: &Record) -> usize {
        self.shard_of(record)
    }

    /// Copies of every shard's materialised state, in shard order. An
    /// inspection hook for invariant tests; production paths use the
    /// clone-free accessors.
    pub fn shard_states(&self) -> Vec<StoreState> {
        self.shards.iter().map(DurableStore::state).collect()
    }

    fn shard_of(&self, record: &Record) -> usize {
        match record {
            // Campaign identity lives in shard 0 — one authoritative copy.
            Record::Meta { .. } => 0,
            Record::DeviceEnrolled { id }
            | Record::DeviceReEnrolled { id }
            | Record::StatusChanged { id, .. }
            | Record::SessionClosed { id, .. }
            | Record::SessionRefused { id }
            | Record::SessionFault { id, .. }
            | Record::DeviceAbandoned { id }
            | Record::DeviceCursor { id, .. } => self.shard_of_id(*id),
            // Challenges have no device affinity; hash them so the spent
            // set spreads evenly.
            Record::CrpConsumed { a, b } => (splitmix64(a ^ b.rotate_left(32)) % u64::from(self.shard_count)) as usize,
        }
    }

    /// Appends a record on the group-commit path: acknowledged once it is
    /// in its shard's write queue, committed at the next flush (the
    /// committer's latency bound).
    ///
    /// # Errors
    ///
    /// [`StoreError::Backpressure`] when the shard's commit queue is full
    /// (nothing applied — flush and retry); otherwise as
    /// [`DurableStore::append`].
    pub fn append(&self, record: &Record) -> Result<(), StoreError> {
        self.shards[self.shard_of(record)].append_nosync(record)?;
        Ok(())
    }

    /// Appends a record and syncs its shard before returning: the record
    /// is committed when this returns. Enrollment admissions and external
    /// consume-once CRP releases use this.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::append_synced`].
    pub fn append_synced(&self, record: &Record) -> Result<(), StoreError> {
        self.shards[self.shard_of(record)].append_synced(record)?;
        Ok(())
    }

    /// Commits every shard's pending group-commit batch: one fsync per
    /// dirty shard. Every shard is attempted even if one fails.
    ///
    /// # Errors
    ///
    /// The first error encountered, after all shards were attempted.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut first_err = None;
        for shard in &self.shards {
            if shard.unsynced() > 0 {
                if let Err(e) = shard.sync() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Compacts any shard whose WAL has outgrown
    /// [`ShardedOptions::compact_wal_bytes`] — shards compact
    /// independently, so a hot range never forces a cold shard to rewrite
    /// its snapshot. Returns how many shards compacted.
    ///
    /// # Errors
    ///
    /// I/O errors from the backend (the failing shard is left broken, as
    /// with any checkpoint failure).
    pub fn maybe_compact(&self) -> Result<usize, StoreError> {
        if self.compact_wal_bytes == 0 {
            return Ok(0);
        }
        let mut compacted = 0;
        for shard in &self.shards {
            if shard.stats().wal_bytes > self.compact_wal_bytes {
                shard.checkpoint()?;
                compacted += 1;
            }
        }
        Ok(compacted)
    }

    /// Writes a fresh snapshot and compacts the WAL on every shard.
    ///
    /// # Errors
    ///
    /// As [`DurableStore::checkpoint`].
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// Campaign identity, if recorded (held by shard 0).
    pub fn meta(&self) -> Option<MetaInfo> {
        self.shards[0].meta()
    }

    /// Whether a challenge has been durably consumed (on its home shard).
    pub fn is_spent(&self, a: u64, b: u64) -> bool {
        let shard = (splitmix64(a ^ b.rotate_left(32)) % u64::from(self.shard_count)) as usize;
        self.shards[shard].is_spent(a, b)
    }

    /// A copy of one device's durable state, if it is enrolled.
    pub fn device(&self, id: u32) -> Option<DeviceState> {
        self.shards[self.shard_of_id(id)].with_state(|s| s.devices.get(&id).cloned())
    }

    /// Runs `f` for every enrolled device, shard by shard (ids within a
    /// shard ascend; across shards they interleave by range stripe).
    /// Clone-free: the restore path walks a million devices through here.
    pub fn for_each_device(&self, mut f: impl FnMut(u32, &DeviceState)) {
        for shard in &self.shards {
            shard.with_state(|s: &StoreState| {
                for (id, d) in &s.devices {
                    f(*id, d);
                }
            });
        }
    }

    /// Fleet-wide counters, merged across shards.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::default();
        for shard in &self.shards {
            shard.with_state(|s| total.merge(&s.counters));
        }
        total
    }

    /// Device counts by lifecycle state, summed across shards.
    pub fn status_tally(&self) -> StatusTally {
        let mut tally = StatusTally::default();
        for shard in &self.shards {
            let t = shard.status_tally();
            tally.active += t.active;
            tally.quarantined += t.quarantined;
            tally.revoked += t.revoked;
        }
        tally
    }

    /// Durability counters summed across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.wal_bytes += s.wal_bytes;
            total.records_appended += s.records_appended;
            total.records_replayed += s.records_replayed;
            total.snapshots_written += s.snapshots_written;
            total.torn_tails_recovered += s.torn_tails_recovered;
        }
        total
    }

    /// Whether any shard's handle has been poisoned by a write failure.
    pub fn is_broken(&self) -> bool {
        self.shards.iter().any(DurableStore::is_broken)
    }

    /// Number of shards (from the manifest).
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Consecutive device ids per range stripe (from the manifest).
    pub fn range_width(&self) -> u32 {
        self.range_width
    }

    /// Records awaiting their group-commit sync, summed across shards.
    pub fn unsynced(&self) -> u32 {
        self.shards.iter().map(DurableStore::unsynced).sum()
    }

    /// Spawns a background committer that flushes dirty shards (and runs
    /// size-triggered compaction) every `interval` — the group-commit
    /// latency bound. Dropping the returned [`Committer`] stops the
    /// thread after one final flush, so shutdown never strands a batch.
    pub fn committer(self: &Arc<Self>, interval: Duration) -> Committer {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                if store.flush().is_err() || store.maybe_compact().is_err() {
                    // A shard broke: nothing more can commit through this
                    // handle; the owner sees it via is_broken().
                    break;
                }
            }
            // analyze: allow(dur: final best-effort flush on a stopping committer; the owner's drop path flushes again and surfaces errors)
            let _ = store.flush();
        });
        Committer { stop, handle: Some(handle) }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shard_count)
            .field("range_width", &self.range_width)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Handle to a background group-commit thread (see
/// [`ShardedStore::committer`]). Dropping it requests a stop, waits for
/// the thread, and flushes one last time — flush-on-shutdown is
/// structural, not a convention callers must remember.
pub struct Committer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Committer {
    /// Stops the committer and waits for its final flush.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Committer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::record::StoredStatus;
    use crate::vfs::{SimVfs, TornMode};

    fn small_opts() -> ShardedOptions {
        ShardedOptions {
            shards: 4,
            range_width: 2,
            commit_queue_limit: 0,
            ..ShardedOptions::default()
        }
    }

    fn open_sim(vfs: &SimVfs, opts: ShardedOptions) -> ShardedStore {
        ShardedStore::open(Arc::new(vfs.clone()), opts).unwrap()
    }

    #[test]
    fn records_route_by_range_and_survive_reopen() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        // range_width 2, 4 shards: ids 0,1 → shard 0; 2,3 → 1; 8,9 → 0.
        assert_eq!(store.shard_of_id(0), 0);
        assert_eq!(store.shard_of_id(1), 0);
        assert_eq!(store.shard_of_id(2), 1);
        assert_eq!(store.shard_of_id(7), 3);
        assert_eq!(store.shard_of_id(8), 0);
        store
            .append_synced(&Record::Meta { config_hash: 5, devices: 9, sessions_per_device: 1, seed: 3 })
            .unwrap();
        for id in 0..9 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        store.append(&Record::CrpConsumed { a: 11, b: 22 }).unwrap();
        store.flush().unwrap();
        drop(store);
        assert!(vfs.exists("manifest.bin"));
        assert!(vfs.exists("shard-000/wal.log"));
        let store = open_sim(&vfs, small_opts());
        assert_eq!(store.meta().unwrap().devices, 9);
        assert_eq!(store.status_tally().active, 9);
        assert!(store.is_spent(11, 22));
        assert!(store.device(8).is_some());
        assert!(store.device(9).is_none());
        let mut seen = Vec::new();
        store.for_each_device(|id, d| {
            assert_eq!(d.status, StoredStatus::Active);
            seen.push(id);
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn manifest_geometry_is_authoritative_on_reopen() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        store.append(&Record::DeviceEnrolled { id: 6 }).unwrap();
        store.flush().unwrap();
        drop(store);
        // Reopening with different (even implausible-to-change) geometry
        // keeps the on-disk layout: device 6 is still found in shard 3.
        let store = open_sim(&vfs, ShardedOptions { shards: 2, range_width: 64, ..ShardedOptions::default() });
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.range_width(), 2);
        assert!(store.device(6).is_some());
    }

    #[test]
    fn legacy_single_wal_layout_is_refused() {
        let vfs = SimVfs::new();
        let single = DurableStore::open(Arc::new(vfs.clone()), StoreOptions::default()).unwrap();
        single.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        drop(single);
        let err = ShardedStore::open(Arc::new(vfs), small_opts()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn damaged_manifest_is_fatal_not_silent() {
        let vfs = SimVfs::new();
        drop(open_sim(&vfs, small_opts()));
        let mut img = vfs.read(MANIFEST_FILE).unwrap().unwrap();
        img[10] ^= 0x04;
        vfs.truncate(MANIFEST_FILE, &img).unwrap();
        vfs.sync(MANIFEST_FILE).unwrap();
        let err = ShardedStore::open(Arc::new(vfs), small_opts()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn backpressure_is_per_shard_and_retryable_after_flush() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, ShardedOptions { commit_queue_limit: 1, ..small_opts() });
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        // Shard 0's queue is full; shard 1 still accepts.
        assert_eq!(store.append(&Record::DeviceEnrolled { id: 1 }), Err(StoreError::Backpressure));
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
        store.flush().unwrap();
        assert_eq!(store.unsynced(), 0);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
    }

    #[test]
    fn group_commit_loses_at_most_the_unflushed_tail_per_shard() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        for id in 0..8 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        store.flush().unwrap();
        for id in 8..16 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        // Power cut with the batch still volatile: the flushed prefix
        // survives on every shard, the unflushed tail is gone.
        let disk = vfs.power_cut(TornMode::Drop);
        let store = open_sim(&disk, small_opts());
        let tally = store.status_tally();
        assert_eq!(tally.active, 8);
        for id in 0..8 {
            assert!(store.device(id).is_some(), "committed device {id} lost");
        }
        for id in 8..16 {
            assert!(store.device(id).is_none(), "uncommitted device {id} resurrected");
        }
    }

    #[test]
    fn size_triggered_compaction_is_per_shard() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, ShardedOptions { compact_wal_bytes: 64, ..small_opts() });
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
        // Only shard 0's WAL outgrows the bound.
        for _ in 0..16 {
            store
                .append(&Record::StatusChanged { id: 0, status: StoredStatus::Active })
                .unwrap();
        }
        store.flush().unwrap();
        let before = store.stats().snapshots_written;
        let compacted = store.maybe_compact().unwrap();
        assert_eq!(compacted, 1, "exactly the hot shard compacts");
        assert_eq!(store.stats().snapshots_written, before + 1);
    }

    #[test]
    fn committer_flushes_within_its_latency_bound() {
        let vfs = SimVfs::new();
        let store = Arc::new(open_sim(&vfs, small_opts()));
        let committer = store.committer(Duration::from_millis(1));
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.unsynced() > 0 {
            assert!(std::time::Instant::now() < deadline, "committer never flushed");
            std::thread::yield_now();
        }
        // Stop flushes one final time; a fresh append right before the
        // stop is still committed.
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        committer.stop();
        assert_eq!(store.unsynced(), 0);
        let disk = vfs.power_cut(TornMode::Drop);
        let store = open_sim(&disk, small_opts());
        assert!(store.device(0).is_some());
        assert!(store.device(1).is_some());
    }
}
