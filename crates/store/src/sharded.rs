//! The sharded store: many independent WAL + snapshot pairs behind one
//! facade, with group commit and a background committer.
//!
//! # Why shard
//!
//! A single WAL serialises every fsync behind one file, and a single
//! snapshot rewrites the whole fleet's state on every checkpoint. For a
//! million-device campaign both become the bottleneck. Sharding by
//! device-id range gives each shard its own [`DurableStore`] (own WAL,
//! own snapshot, own compaction schedule) under one directory:
//!
//! ```text
//! state-dir/
//!   manifest.bin          "PUFATTM1" | version | shard_count | range_width | crc
//!   shard-000/wal.log
//!   shard-000/snapshot.bin
//!   shard-001/...
//! ```
//!
//! The manifest is written once at creation (temp file → fsync → rename,
//! like a snapshot) and is authoritative thereafter: reopening with
//! different options keeps the on-disk geometry, because a record's home
//! shard must never move between runs. A directory that holds a legacy
//! single-WAL layout (a root `wal.log` with no manifest) is refused as
//! corrupt rather than silently restarted.
//!
//! # Group commit
//!
//! [`ShardedStore::append`] validates, applies, and writes the frame but
//! does **not** fsync: records accumulate in the OS write queue until the
//! next [`ShardedStore::flush`] — typically issued by a [`Committer`]
//! thread every few milliseconds — commits the whole batch with one fsync
//! per dirty shard. A crash loses at most the unflushed tail, which the
//! deterministic campaign layer re-runs on resume; per-shard recovery
//! still yields exactly a committed prefix. When more records than
//! [`ShardedOptions::commit_queue_limit`] are awaiting their sync on one
//! shard, further appends fail with [`StoreError::Backpressure`] — a
//! typed, retryable refusal rather than unbounded memory-ahead-of-disk.

use crate::record::Record;
use crate::state::{Counters, DeviceState, MetaInfo, StatusTally, StoreState};
use crate::store::{DurableStore, StoreOptions, StoreStats};
use crate::vfs::Vfs;
use crate::wal::crc32;
use crate::StoreError;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The shard manifest file name inside a state directory.
pub const MANIFEST_FILE: &str = "manifest.bin";
/// The manifest staging file (atomically renamed onto [`MANIFEST_FILE`]).
pub const MANIFEST_TMP: &str = "manifest.tmp";
/// Identifies a shard manifest (and its format revision).
pub const MANIFEST_MAGIC: [u8; 8] = *b"PUFATTM1";
const MANIFEST_VERSION: u32 = 1;
/// Sanity bound on the shard count a manifest may declare.
pub const MAX_SHARDS: u32 = 1024;

/// Tuning knobs for a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Retained outcomes per device (mirrors the registry's bound).
    pub history_capacity: usize,
    /// Shards to create. Ignored on reopen — the manifest is
    /// authoritative once a directory exists.
    pub shards: u32,
    /// Consecutive device ids per range stripe: device `id` lives in
    /// shard `(id / range_width) % shards`. Ignored on reopen.
    pub range_width: u32,
    /// Per-shard bound on group-commit records awaiting their sync
    /// before [`ShardedStore::append`] refuses with
    /// [`StoreError::Backpressure`]. `0` means unbounded.
    pub commit_queue_limit: u32,
    /// Compact a shard (snapshot + truncate its WAL) once its WAL grows
    /// past this many bytes. `0` disables size-triggered compaction;
    /// [`ShardedStore::checkpoint`] still compacts on demand.
    pub compact_wal_bytes: u64,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            history_capacity: 64,
            shards: 8,
            range_width: 1024,
            commit_queue_limit: 4096,
            compact_wal_bytes: 16 << 20,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn encode_manifest(shards: u32, range_width: u32) -> Vec<u8> {
    let mut out = MANIFEST_MAGIC.to_vec();
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&shards.to_le_bytes());
    out.extend_from_slice(&range_width.to_le_bytes());
    let crc = crc32(&out[MANIFEST_MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<(u32, u32), StoreError> {
    if bytes.len() != MANIFEST_MAGIC.len() + 16 || bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(StoreError::Corrupt("shard manifest header invalid".into()));
    }
    let word = |i: usize| {
        let o = MANIFEST_MAGIC.len() + 4 * i;
        u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
    };
    if crc32(&bytes[MANIFEST_MAGIC.len()..MANIFEST_MAGIC.len() + 12]) != word(3) {
        return Err(StoreError::Corrupt("shard manifest checksum mismatch".into()));
    }
    if word(0) != MANIFEST_VERSION {
        return Err(StoreError::Corrupt(format!("shard manifest version {} unsupported", word(0))));
    }
    let (shards, range_width) = (word(1), word(2));
    if shards == 0 || shards > MAX_SHARDS || range_width == 0 {
        return Err(StoreError::Corrupt(format!(
            "shard manifest geometry implausible ({shards} shards, range width {range_width})"
        )));
    }
    Ok((shards, range_width))
}

/// One shard's position in the storage-failure state machine.
///
/// ```text
///             write/sync/checkpoint failure
///   Healthy ────────────────────────────────▶ Degraded (read-only)
///      ▲                                          │
///      │ reopen_shard succeeds          reopen_shard│fails
///      └──────────────────────────────────┬────────┘
///                                         ▼
///                                       Failed (reopen_shard may retry)
/// ```
///
/// A sick shard refuses appends with [`StoreError::ShardUnavailable`]
/// *before* anything is applied or written; reads (device lookups,
/// tallies) keep serving the last recovered in-memory state. Healthy
/// shards are entirely unaffected. Recovery is operator-driven via
/// [`ShardedStore::reopen_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard accepts appends and commits normally.
    Healthy,
    /// A storage failure poisoned the shard's handle: it is read-only
    /// until an operator reopens it (fsyncgate semantics — the failed
    /// handle is never retried).
    Degraded,
    /// A reopen attempt also failed: the backing device is still sick.
    /// Another [`ShardedStore::reopen_shard`] may be tried once the disk
    /// is replaced.
    Failed,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_FAILED: u8 = 2;

/// A device-id-range-sharded durable store: one [`DurableStore`] per
/// shard, a manifest pinning the geometry, and group-commit appends.
pub struct ShardedStore {
    shards: Vec<DurableStore>,
    /// Per-shard [`ShardHealth`], encoded as u8 — atomics so the hot
    /// append path checks health without adding a lock class.
    health: Vec<AtomicU8>,
    /// Commit-tick failures observed by the background committer (each
    /// one degraded a shard) — the committer reports, never swallows.
    commit_failures: AtomicU64,
    shard_count: u32,
    range_width: u32,
    compact_wal_bytes: u64,
}

impl ShardedStore {
    /// Opens (creating or recovering) a sharded store over `vfs`.
    ///
    /// On a fresh directory the manifest is committed first (temp file →
    /// fsync → rename), then each shard recovers independently. On
    /// reopen the manifest's geometry overrides `opts.shards` /
    /// `opts.range_width`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a damaged manifest, a legacy
    /// single-WAL layout (a root `wal.log` without a manifest — migrate
    /// it explicitly rather than letting a typo'd path restart a
    /// campaign), implausible geometry in `opts`, or shard-level
    /// corruption; I/O errors from the backend.
    pub fn open(vfs: Arc<dyn Vfs>, opts: ShardedOptions) -> Result<Self, StoreError> {
        let (shard_count, range_width) = match vfs.read(MANIFEST_FILE)? {
            Some(bytes) => decode_manifest(&bytes)?,
            None => {
                if vfs.exists(crate::store::WAL_FILE) || vfs.exists(crate::store::SNAPSHOT_FILE) {
                    return Err(StoreError::Corrupt(
                        "directory holds a legacy single-WAL store (no shard manifest); refusing to overlay a sharded layout on it"
                            .into(),
                    ));
                }
                if opts.shards == 0 || opts.shards > MAX_SHARDS || opts.range_width == 0 {
                    return Err(StoreError::Corrupt(format!(
                        "implausible shard geometry requested ({} shards, range width {})",
                        opts.shards, opts.range_width
                    )));
                }
                let manifest = encode_manifest(opts.shards, opts.range_width);
                vfs.truncate(MANIFEST_TMP, &manifest)?;
                vfs.sync(MANIFEST_TMP)?;
                vfs.rename(MANIFEST_TMP, MANIFEST_FILE)?;
                (opts.shards, opts.range_width)
            }
        };
        let store_opts = StoreOptions {
            history_capacity: opts.history_capacity,
            sync_every: 1,
            commit_queue_limit: opts.commit_queue_limit,
        };
        let mut shards = Vec::with_capacity(shard_count as usize);
        for i in 0..shard_count {
            shards.push(DurableStore::open_at(Arc::clone(&vfs), store_opts, &format!("shard-{i:03}/"))?);
        }
        let health = (0..shard_count).map(|_| AtomicU8::new(HEALTH_HEALTHY)).collect();
        Ok(ShardedStore {
            shards,
            health,
            commit_failures: AtomicU64::new(0),
            shard_count,
            range_width,
            compact_wal_bytes: opts.compact_wal_bytes,
        })
    }

    /// The health of one shard (see [`ShardHealth`] for the machine).
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        match self.health[shard].load(Ordering::Acquire) {
            HEALTH_HEALTHY => ShardHealth::Healthy,
            HEALTH_DEGRADED => ShardHealth::Degraded,
            _ => ShardHealth::Failed,
        }
    }

    /// Marks a shard Degraded after a storage failure. Never downgrades
    /// Failed (a failed reopen outranks a later write error).
    fn mark_degraded(&self, shard: usize) {
        let _ =
            self.health[shard].compare_exchange(HEALTH_HEALTHY, HEALTH_DEGRADED, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Refuses the operation up front when `shard` is sick — nothing is
    /// applied or written past this point.
    fn guard(&self, shard: usize) -> Result<(), StoreError> {
        if self.shard_health(shard) == ShardHealth::Healthy {
            Ok(())
        } else {
            Err(StoreError::ShardUnavailable { shard: shard as u32 })
        }
    }

    /// Routes a shard-level error into the health machine: real storage
    /// failures (I/O, ENOSPC, crash, poisoned handle) degrade the shard;
    /// validation refusals and backpressure do not — they left no doubt
    /// about the disk. The error passes through unchanged.
    fn note(&self, shard: usize, e: StoreError) -> StoreError {
        match &e {
            StoreError::Io(_) | StoreError::NoSpace(_) | StoreError::Crashed | StoreError::Broken => {
                self.mark_degraded(shard);
            }
            StoreError::Corrupt(_)
            | StoreError::IllegalTransition { .. }
            | StoreError::Backpressure
            | StoreError::ShardUnavailable { .. } => {}
        }
        e
    }

    /// Re-runs shard-local recovery on `shard` and, on success, rejoins it
    /// to the fleet as Healthy — the operator path out of Degraded. The
    /// shard's committed prefix is preserved by construction (recovery
    /// re-reads the snapshot and valid WAL frames on a fresh handle); a
    /// resumed campaign re-derives anything the failure lost, so rejoined
    /// verdicts are bit-identical to a run that never failed.
    ///
    /// # Errors
    ///
    /// If recovery itself fails (the device is still sick) the shard is
    /// marked [`ShardHealth::Failed`] and the error returned; healthy
    /// shards are untouched either way. Reopening may be retried.
    pub fn reopen_shard(&self, shard: usize) -> Result<(), StoreError> {
        match self.shards[shard].reopen() {
            Ok(()) => {
                self.health[shard].store(HEALTH_HEALTHY, Ordering::Release);
                Ok(())
            }
            Err(e) => {
                self.health[shard].store(HEALTH_FAILED, Ordering::Release);
                Err(e)
            }
        }
    }

    /// The shard a device id lives in.
    pub fn shard_of_id(&self, id: u32) -> usize {
        ((id / self.range_width) % self.shard_count) as usize
    }

    /// The shard a record routes to — exposed so invariant tests can
    /// shadow the store's routing decision for any record.
    pub fn shard_of_record(&self, record: &Record) -> usize {
        self.shard_of(record)
    }

    /// Copies of every shard's materialised state, in shard order. An
    /// inspection hook for invariant tests; production paths use the
    /// clone-free accessors.
    pub fn shard_states(&self) -> Vec<StoreState> {
        self.shards.iter().map(DurableStore::state).collect()
    }

    fn shard_of(&self, record: &Record) -> usize {
        match record {
            // Campaign identity lives in shard 0 — one authoritative copy.
            Record::Meta { .. } => 0,
            Record::DeviceEnrolled { id }
            | Record::DeviceReEnrolled { id }
            | Record::StatusChanged { id, .. }
            | Record::SessionClosed { id, .. }
            | Record::SessionRefused { id }
            | Record::SessionFault { id, .. }
            | Record::DeviceAbandoned { id }
            | Record::DeviceCursor { id, .. } => self.shard_of_id(*id),
            // Challenges have no device affinity; hash them so the spent
            // set spreads evenly.
            Record::CrpConsumed { a, b } => (splitmix64(a ^ b.rotate_left(32)) % u64::from(self.shard_count)) as usize,
        }
    }

    /// Appends a record on the group-commit path: acknowledged once it is
    /// in its shard's write queue, committed at the next flush (the
    /// committer's latency bound).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShardUnavailable`] when the record's home shard is
    /// Degraded or Failed (refused before anything is applied — other
    /// shards keep accepting); [`StoreError::Backpressure`] when the
    /// shard's commit queue is full (nothing applied — flush and retry);
    /// otherwise as [`DurableStore::append`]. A storage failure here
    /// degrades the home shard.
    pub fn append(&self, record: &Record) -> Result<(), StoreError> {
        let shard = self.shard_of(record);
        self.guard(shard)?;
        self.shards[shard].append_nosync(record).map_err(|e| self.note(shard, e))?;
        Ok(())
    }

    /// Appends a record and syncs its shard before returning: the record
    /// is committed when this returns. Enrollment admissions and external
    /// consume-once CRP releases use this.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShardUnavailable`] when the record's home shard is
    /// sick; otherwise as [`DurableStore::append_synced`]. A storage
    /// failure here degrades the home shard.
    pub fn append_synced(&self, record: &Record) -> Result<(), StoreError> {
        let shard = self.shard_of(record);
        self.guard(shard)?;
        self.shards[shard].append_synced(record).map_err(|e| self.note(shard, e))?;
        Ok(())
    }

    /// Commits every healthy shard's pending group-commit batch: one
    /// fsync per dirty shard. Every healthy shard is attempted even if
    /// one fails; a failing shard degrades (its poisoned handle is never
    /// re-synced — fsyncgate) and sick shards are skipped, so a dying
    /// disk does not wedge the rest of the fleet's commits.
    ///
    /// # Errors
    ///
    /// The first *new* failure encountered, after all healthy shards were
    /// attempted. Already-sick shards are not re-reported.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut first_err = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if self.shard_health(i) != ShardHealth::Healthy {
                continue; // read-only until reopen_shard
            }
            if shard.unsynced() > 0 {
                if let Err(e) = shard.sync() {
                    first_err.get_or_insert(self.note(i, e));
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Compacts any shard whose WAL has outgrown
    /// [`ShardedOptions::compact_wal_bytes`] — shards compact
    /// independently, so a hot range never forces a cold shard to rewrite
    /// its snapshot. Returns how many shards compacted.
    ///
    /// # Errors
    ///
    /// The first *new* I/O failure, after every eligible shard was
    /// attempted (the failing shard degrades; sick shards are skipped).
    pub fn maybe_compact(&self) -> Result<usize, StoreError> {
        if self.compact_wal_bytes == 0 {
            return Ok(0);
        }
        let mut compacted = 0;
        let mut first_err = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if self.shard_health(i) != ShardHealth::Healthy {
                continue;
            }
            if shard.stats().wal_bytes > self.compact_wal_bytes {
                match shard.checkpoint() {
                    Ok(()) => compacted += 1,
                    Err(e) => {
                        first_err.get_or_insert(self.note(i, e));
                    }
                }
            }
        }
        match first_err {
            None => Ok(compacted),
            Some(e) => Err(e),
        }
    }

    /// Writes a fresh snapshot and compacts the WAL on every healthy
    /// shard (sick shards are skipped — their last durable snapshot
    /// already holds everything they acknowledged).
    ///
    /// # Errors
    ///
    /// The first *new* failure, after all healthy shards were attempted;
    /// the failing shard degrades.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let mut first_err = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if self.shard_health(i) != ShardHealth::Healthy {
                continue;
            }
            if let Err(e) = shard.checkpoint() {
                first_err.get_or_insert(self.note(i, e));
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Campaign identity, if recorded (held by shard 0).
    pub fn meta(&self) -> Option<MetaInfo> {
        self.shards[0].meta()
    }

    /// Whether a challenge has been durably consumed (on its home shard).
    pub fn is_spent(&self, a: u64, b: u64) -> bool {
        let shard = (splitmix64(a ^ b.rotate_left(32)) % u64::from(self.shard_count)) as usize;
        self.shards[shard].is_spent(a, b)
    }

    /// A copy of one device's durable state, if it is enrolled.
    pub fn device(&self, id: u32) -> Option<DeviceState> {
        self.shards[self.shard_of_id(id)].with_state(|s| s.devices.get(&id).cloned())
    }

    /// Runs `f` for every enrolled device, shard by shard (ids within a
    /// shard ascend; across shards they interleave by range stripe).
    /// Clone-free: the restore path walks a million devices through here.
    pub fn for_each_device(&self, mut f: impl FnMut(u32, &DeviceState)) {
        for shard in &self.shards {
            shard.with_state(|s: &StoreState| {
                for (id, d) in &s.devices {
                    f(*id, d);
                }
            });
        }
    }

    /// Runs `f` for every enrolled device on one shard (ids ascend) —
    /// how a service rebuilds exactly the devices a reopened shard
    /// recovered, leaving the rest of the fleet untouched.
    pub fn for_each_device_in(&self, shard: usize, mut f: impl FnMut(u32, &DeviceState)) {
        self.shards[shard].with_state(|s: &StoreState| {
            for (id, d) in &s.devices {
                f(*id, d);
            }
        });
    }

    /// Fleet-wide counters, merged across shards.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::default();
        for shard in &self.shards {
            shard.with_state(|s| total.merge(&s.counters));
        }
        total
    }

    /// Device counts by lifecycle state, summed across shards.
    pub fn status_tally(&self) -> StatusTally {
        let mut tally = StatusTally::default();
        for shard in &self.shards {
            let t = shard.status_tally();
            tally.active += t.active;
            tally.quarantined += t.quarantined;
            tally.revoked += t.revoked;
        }
        tally
    }

    /// Durability counters summed across shards, plus the shard-health
    /// tally ([`StoreStats::shards_total`] and friends).
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.wal_bytes += s.wal_bytes;
            total.records_appended += s.records_appended;
            total.records_replayed += s.records_replayed;
            total.snapshots_written += s.snapshots_written;
            total.torn_tails_recovered += s.torn_tails_recovered;
        }
        total.shards_total = self.shard_count;
        for i in 0..self.shards.len() {
            match self.shard_health(i) {
                ShardHealth::Healthy => {}
                ShardHealth::Degraded => total.shards_degraded += 1,
                ShardHealth::Failed => total.shards_failed += 1,
            }
        }
        total
    }

    /// Commit ticks that hit a new storage failure (each degraded a
    /// shard) since this handle opened.
    pub fn commit_failures(&self) -> u64 {
        self.commit_failures.load(Ordering::Acquire)
    }

    /// Whether any shard's handle has been poisoned by a write failure.
    pub fn is_broken(&self) -> bool {
        self.shards.iter().any(DurableStore::is_broken)
    }

    /// Number of shards (from the manifest).
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// Consecutive device ids per range stripe (from the manifest).
    pub fn range_width(&self) -> u32 {
        self.range_width
    }

    /// Records awaiting their group-commit sync, summed across shards.
    pub fn unsynced(&self) -> u32 {
        self.shards.iter().map(DurableStore::unsynced).sum()
    }

    /// One committer heartbeat: flush every healthy shard's pending batch
    /// and run size-triggered compaction, degrading any shard that hits a
    /// storage failure. Returns how many shards *newly* failed this tick
    /// (also accumulated into [`ShardedStore::commit_failures`]) — a
    /// count, not a `Result`, because a tick always does everything it
    /// can: healthy shards commit even while a sick one waits for its
    /// operator, and the failure is reported through the health machine
    /// rather than swallowed.
    pub fn commit_tick(&self) -> usize {
        let mut failures = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if self.shard_health(i) != ShardHealth::Healthy {
                continue;
            }
            if shard.unsynced() > 0 {
                if let Err(e) = shard.sync() {
                    // fsyncgate: the poisoned handle is never re-synced;
                    // the shard degrades and waits for reopen_shard.
                    let _ = self.note(i, e);
                    failures += 1;
                    continue;
                }
            }
            if self.compact_wal_bytes > 0 && shard.stats().wal_bytes > self.compact_wal_bytes {
                if let Err(e) = shard.checkpoint() {
                    let _ = self.note(i, e);
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            self.commit_failures.fetch_add(failures as u64, Ordering::AcqRel);
        }
        failures
    }

    /// Spawns a background committer that runs [`ShardedStore::commit_tick`]
    /// every `interval` — the group-commit latency bound. A shard that
    /// fails mid-campaign degrades and is skipped; the committer keeps
    /// servicing the healthy shards (per-shard failures are reported via
    /// shard health and [`ShardedStore::commit_failures`], never
    /// swallowed). Dropping the returned [`Committer`] stops the thread
    /// after one final tick, so shutdown never strands a batch.
    pub fn committer(self: &Arc<Self>, interval: Duration) -> Committer {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                store.commit_tick();
            }
            // The final tick commits anything appended right before the
            // stop; a failure here degrades the shard, which the owner's
            // shutdown path surfaces through stats and health.
            store.commit_tick();
        });
        Committer { stop, handle: Some(handle) }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shard_count)
            .field("range_width", &self.range_width)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Handle to a background group-commit thread (see
/// [`ShardedStore::committer`]). Dropping it requests a stop, waits for
/// the thread, and flushes one last time — flush-on-shutdown is
/// structural, not a convention callers must remember.
pub struct Committer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Committer {
    /// Stops the committer and waits for its final flush.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Committer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::record::StoredStatus;
    use crate::vfs::{SimVfs, TornMode};

    fn small_opts() -> ShardedOptions {
        ShardedOptions {
            shards: 4,
            range_width: 2,
            commit_queue_limit: 0,
            ..ShardedOptions::default()
        }
    }

    fn open_sim(vfs: &SimVfs, opts: ShardedOptions) -> ShardedStore {
        ShardedStore::open(Arc::new(vfs.clone()), opts).unwrap()
    }

    #[test]
    fn records_route_by_range_and_survive_reopen() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        // range_width 2, 4 shards: ids 0,1 → shard 0; 2,3 → 1; 8,9 → 0.
        assert_eq!(store.shard_of_id(0), 0);
        assert_eq!(store.shard_of_id(1), 0);
        assert_eq!(store.shard_of_id(2), 1);
        assert_eq!(store.shard_of_id(7), 3);
        assert_eq!(store.shard_of_id(8), 0);
        store
            .append_synced(&Record::Meta { config_hash: 5, devices: 9, sessions_per_device: 1, seed: 3 })
            .unwrap();
        for id in 0..9 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        store.append(&Record::CrpConsumed { a: 11, b: 22 }).unwrap();
        store.flush().unwrap();
        drop(store);
        assert!(vfs.exists("manifest.bin"));
        assert!(vfs.exists("shard-000/wal.log"));
        let store = open_sim(&vfs, small_opts());
        assert_eq!(store.meta().unwrap().devices, 9);
        assert_eq!(store.status_tally().active, 9);
        assert!(store.is_spent(11, 22));
        assert!(store.device(8).is_some());
        assert!(store.device(9).is_none());
        let mut seen = Vec::new();
        store.for_each_device(|id, d| {
            assert_eq!(d.status, StoredStatus::Active);
            seen.push(id);
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn manifest_geometry_is_authoritative_on_reopen() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        store.append(&Record::DeviceEnrolled { id: 6 }).unwrap();
        store.flush().unwrap();
        drop(store);
        // Reopening with different (even implausible-to-change) geometry
        // keeps the on-disk layout: device 6 is still found in shard 3.
        let store = open_sim(&vfs, ShardedOptions { shards: 2, range_width: 64, ..ShardedOptions::default() });
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.range_width(), 2);
        assert!(store.device(6).is_some());
    }

    #[test]
    fn legacy_single_wal_layout_is_refused() {
        let vfs = SimVfs::new();
        let single = DurableStore::open(Arc::new(vfs.clone()), StoreOptions::default()).unwrap();
        single.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        drop(single);
        let err = ShardedStore::open(Arc::new(vfs), small_opts()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn damaged_manifest_is_fatal_not_silent() {
        let vfs = SimVfs::new();
        drop(open_sim(&vfs, small_opts()));
        let mut img = vfs.read(MANIFEST_FILE).unwrap().unwrap();
        img[10] ^= 0x04;
        vfs.truncate(MANIFEST_FILE, &img).unwrap();
        vfs.sync(MANIFEST_FILE).unwrap();
        let err = ShardedStore::open(Arc::new(vfs), small_opts()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn backpressure_is_per_shard_and_retryable_after_flush() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, ShardedOptions { commit_queue_limit: 1, ..small_opts() });
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        // Shard 0's queue is full; shard 1 still accepts.
        assert_eq!(store.append(&Record::DeviceEnrolled { id: 1 }), Err(StoreError::Backpressure));
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
        store.flush().unwrap();
        assert_eq!(store.unsynced(), 0);
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
    }

    #[test]
    fn group_commit_loses_at_most_the_unflushed_tail_per_shard() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        for id in 0..8 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        store.flush().unwrap();
        for id in 8..16 {
            store.append(&Record::DeviceEnrolled { id }).unwrap();
        }
        // Power cut with the batch still volatile: the flushed prefix
        // survives on every shard, the unflushed tail is gone.
        let disk = vfs.power_cut(TornMode::Drop);
        let store = open_sim(&disk, small_opts());
        let tally = store.status_tally();
        assert_eq!(tally.active, 8);
        for id in 0..8 {
            assert!(store.device(id).is_some(), "committed device {id} lost");
        }
        for id in 8..16 {
            assert!(store.device(id).is_none(), "uncommitted device {id} resurrected");
        }
    }

    #[test]
    fn size_triggered_compaction_is_per_shard() {
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, ShardedOptions { compact_wal_bytes: 64, ..small_opts() });
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap();
        // Only shard 0's WAL outgrows the bound.
        for _ in 0..16 {
            store
                .append(&Record::StatusChanged { id: 0, status: StoredStatus::Active })
                .unwrap();
        }
        store.flush().unwrap();
        let before = store.stats().snapshots_written;
        let compacted = store.maybe_compact().unwrap();
        assert_eq!(compacted, 1, "exactly the hot shard compacts");
        assert_eq!(store.stats().snapshots_written, before + 1);
    }

    #[test]
    fn sick_shard_degrades_and_healthy_shards_keep_committing() {
        use crate::vfs::{ErrorInjection, InjectedErrorKind};
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        store.append_synced(&Record::DeviceEnrolled { id: 0 }).unwrap();
        store.append_synced(&Record::DeviceEnrolled { id: 2 }).unwrap();
        // Shard 1 (ids 2,3) dies: every op on its directory now fails.
        vfs.inject(ErrorInjection::on_prefix("shard-001/", InjectedErrorKind::Eio).sticky());
        let err = store.append_synced(&Record::DeviceEnrolled { id: 3 }).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "first failure surfaces raw: {err:?}");
        assert_eq!(store.shard_health(1), ShardHealth::Degraded);
        // Further traffic to the sick shard refuses up front, typed.
        assert_eq!(
            store.append_synced(&Record::DeviceEnrolled { id: 3 }),
            Err(StoreError::ShardUnavailable { shard: 1 })
        );
        // The sick shard still reads its recovered state.
        assert!(store.device(2).is_some());
        // Healthy shards are completely unaffected, and flush/checkpoint
        // skip the degraded shard instead of failing the fleet.
        store.append(&Record::DeviceEnrolled { id: 4 }).unwrap();
        store.flush().unwrap();
        store.checkpoint().unwrap();
        let stats = store.stats();
        assert_eq!((stats.shards_total, stats.shards_degraded, stats.shards_failed), (4, 1, 0));
        assert!(stats.to_string().contains("3/4 shards healthy (1 degraded, 0 failed)"), "display: {stats}");
    }

    #[test]
    fn reopen_shard_rejoins_after_the_disk_recovers() {
        use crate::vfs::{ErrorInjection, InjectedErrorKind};
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        store.append_synced(&Record::DeviceEnrolled { id: 2 }).unwrap();
        vfs.inject(ErrorInjection::on_prefix("shard-001/", InjectedErrorKind::NoSpace).sticky());
        assert!(store.append_synced(&Record::DeviceEnrolled { id: 3 }).is_err());
        assert_eq!(store.shard_health(1), ShardHealth::Degraded);
        // Reopening against the still-sick disk fails → Failed (retryable).
        assert!(store.reopen_shard(1).is_err());
        assert_eq!(store.shard_health(1), ShardHealth::Failed);
        assert_eq!(store.stats().shards_failed, 1);
        // Disk replaced: reopen recovers the committed prefix and rejoins.
        vfs.clear_injections("shard-001/");
        store.reopen_shard(1).unwrap();
        assert_eq!(store.shard_health(1), ShardHealth::Healthy);
        assert!(store.device(2).is_some(), "committed record survives the reopen");
        store.append_synced(&Record::DeviceEnrolled { id: 3 }).unwrap();
        assert!(store.device(3).is_some());
        let mut ids = Vec::new();
        store.for_each_device_in(1, |id, _| ids.push(id));
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn commit_tick_reports_failures_and_spares_healthy_shards() {
        use crate::vfs::{ErrorInjection, InjectedErrorKind};
        let vfs = SimVfs::new();
        let store = open_sim(&vfs, small_opts());
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap(); // shard 0, queued
        store.append(&Record::DeviceEnrolled { id: 2 }).unwrap(); // shard 1, queued
                                                                  // Shard 0's fsync will fail at its next sync.
        vfs.inject(ErrorInjection::on_prefix("shard-000/", InjectedErrorKind::SyncFail).sticky());
        assert_eq!(store.commit_tick(), 1, "exactly the sick shard fails");
        assert_eq!(store.commit_failures(), 1);
        assert_eq!(store.shard_health(0), ShardHealth::Degraded);
        assert_eq!(store.shards[1].unsynced(), 0, "healthy shard still committed");
        // Later ticks skip the degraded shard: no repeat failures.
        assert_eq!(store.commit_tick(), 0);
        assert_eq!(store.commit_failures(), 1);
    }

    #[test]
    fn committer_flushes_within_its_latency_bound() {
        let vfs = SimVfs::new();
        let store = Arc::new(open_sim(&vfs, small_opts()));
        let committer = store.committer(Duration::from_millis(1));
        store.append(&Record::DeviceEnrolled { id: 0 }).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.unsynced() > 0 {
            assert!(std::time::Instant::now() < deadline, "committer never flushed");
            std::thread::yield_now();
        }
        // Stop flushes one final time; a fresh append right before the
        // stop is still committed.
        store.append(&Record::DeviceEnrolled { id: 1 }).unwrap();
        committer.stop();
        assert_eq!(store.unsynced(), 0);
        let disk = vfs.power_cut(TornMode::Drop);
        let store = open_sim(&disk, small_opts());
        assert!(store.device(0).is_some());
        assert!(store.device(1).is_some());
    }
}
