//! Shared harness utilities for the experiment benches.
//!
//! Every `harness = false` bench target in `benches/` regenerates one table
//! or figure of the PUFatt paper (see DESIGN.md's experiment index) and
//! prints the paper's value next to the measured one. Experiments default
//! to reduced sample counts so `cargo bench` completes in minutes; set
//! `PUFATT_FULL=1` to run at the paper's scale (e.g. 1 000 000 challenges
//! for Figures 3 and 4).

use std::time::Instant;

/// Scales a default sample count up to the paper's scale when
/// `PUFATT_FULL=1` is set.
pub fn sample_count(default: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        default
    }
}

/// Whether `PUFATT_FULL=1` is in effect.
pub fn full_scale() -> bool {
    std::env::var("PUFATT_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Prints a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints one "paper vs measured" row.
pub fn row(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:>12}   measured: {measured:>12}");
}

/// Runs a closure and reports its wall time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("  [{label}: {:.2} s]", start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_count_respects_env() {
        // The env var is not set under `cargo test` (we do not set it), so
        // the default applies.
        if !full_scale() {
            assert_eq!(sample_count(10, 1000), 10);
        }
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 42), 42);
    }
}
