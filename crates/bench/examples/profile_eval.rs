use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_silicon::env::Environment;
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let n = 4096;
    let challenges: Vec<Challenge> = (0..n).map(|_| Challenge::random(&mut rng, 32)).collect();
    let nl = design.netlist();
    println!("gates={} nets={} pis={}", nl.gate_count(), nl.net_count(), nl.primary_inputs().len());

    let delays = design.effective_delays_ps(chip.silicon(), &Environment::nominal());
    let (dmin, dmax) = delays
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    let dmean = delays.iter().sum::<f64>() / delays.len() as f64;
    println!("delays: min={dmin:.2} mean={dmean:.2} max={dmax:.2} ps");
    let t = Instant::now();
    for _ in 0..n {
        let _ = design.effective_delays_ps(chip.silicon(), &Environment::nominal());
    }
    println!("effective_delays: {:.2} us/call", t.elapsed().as_secs_f64() * 1e6 / n as f64);

    let (mut from, mut to) = (Vec::new(), Vec::new());
    let t = Instant::now();
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
    }
    println!("stimulus_into: {:.2} us/call", t.elapsed().as_secs_f64() * 1e6 / n as f64);

    let mut values = Vec::new();
    let t = Instant::now();
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
        nl.evaluate_into(&from, &mut values);
    }
    println!("stimulus+evaluate_into: {:.2} us/call", t.elapsed().as_secs_f64() * 1e6 / n as f64);

    let mut sim = EventSimulator::new(nl, &delays);
    let mut ev = 0u64;
    let t = Instant::now();
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
        sim.run_transition_in_place(&from, &to);
        ev += sim.events();
    }
    println!(
        "full in_place run: {:.2} us/call ({} events/ch)",
        t.elapsed().as_secs_f64() * 1e6 / n as f64,
        ev / n as u64
    );

    // Fixed per-run overhead: identical from/to -> zero events.
    let t = Instant::now();
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
        sim.run_transition_in_place(&from, &from);
    }
    println!("zero-event run: {:.2} us/call", t.elapsed().as_secs_f64() * 1e6 / n as f64);

    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let mut noise = ChaCha8Rng::seed_from_u64(1);
    let t = Instant::now();
    let mut acc = 0u64;
    for &ch in &challenges {
        acc ^= inst.evaluate(ch, &mut noise).bits();
    }
    println!("PufInstance::evaluate: {:.2} us/call (acc={acc:x})", t.elapsed().as_secs_f64() * 1e6 / n as f64);
}
