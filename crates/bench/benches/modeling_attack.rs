//! §4.1 "Side-channel Attack Resiliency": machine-learning modeling attack
//! on raw vs. obfuscated responses.
//!
//! Paper: delay PUFs are efficiently learnable from raw CRPs [27]; the
//! XOR-based obfuscation network "significantly increases the complexity
//! of these attacks making them ineffective in practice". The sweep below
//! shows raw-response accuracy climbing with the training-set size while
//! the obfuscated outputs stay at coin-flipping.

use pufatt::enroll::enroll;
use pufatt_alupuf::device::{AdderKind, AluPufConfig, ArbiterConfig, PufInstance};
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_modeling::attack::{attack_obfuscated, attack_raw, FeatureMap};
use pufatt_modeling::lr::TrainConfig;
use pufatt_silicon::env::Environment;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("ML attack", "Logistic-regression modeling: raw vs obfuscated (paper 4.1)");
    let test_n = sample_count(300, 2_000);
    let sweep: Vec<usize> = if pufatt_bench::full_scale() {
        vec![100, 300, 1_000, 3_000, 10_000]
    } else {
        vec![100, 300, 800]
    };
    println!("  configuration: 16-bit ALU PUF, carry-aware features, test set {test_n} CRPs");

    let config16 = AluPufConfig {
        width: 16,
        adder: AdderKind::default(),
        arbiter: ArbiterConfig::asic(),
        design_seed: 0x1616,
    };
    let enrolled = enroll(config16, 0xA77, 0).expect("supported width");
    let design = enrolled.design();
    let chip = enrolled.chip();
    let instance = PufInstance::new(design, chip, Environment::nominal());
    let config = TrainConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0x41_7C);

    println!(
        "\n  {:<16} {:>18} {:>18} {:>20}",
        "train CRPs", "raw mean acc", "raw best bit", "obfuscated mean acc"
    );
    let mut last_raw = 0.0;
    let mut last_obf = 0.0;
    for &train_n in &sweep {
        let (raw, obf) = timed(&format!("sweep n={train_n}"), || {
            let raw = attack_raw(&instance, FeatureMap::CarryAware, train_n, test_n, &config, &mut rng);
            let mut device = enrolled.device_puf(0xD0D0);
            let obf_n = (train_n / 4).max(50); // obfuscated CRPs cost 8 evals each
            let obf = attack_obfuscated(&mut device, FeatureMap::CarryAware, obf_n, test_n / 2, &config, &mut rng);
            (raw, obf)
        });
        println!(
            "  {:<16} {:>17.1}% {:>17.1}% {:>19.1}%",
            train_n,
            100.0 * raw.mean_accuracy(),
            100.0 * raw.best_accuracy(),
            100.0 * obf.mean_accuracy()
        );
        last_raw = raw.mean_accuracy();
        last_obf = obf.mean_accuracy();
    }

    println!();
    row("raw responses learnable", "yes [27]", &format!("{:.1}% >> 50%", 100.0 * last_raw));
    row("obfuscated outputs learnable", "no", &format!("{:.1}%", 100.0 * last_obf));
    println!();
    println!("  Note: the obfuscated accuracy does not reach exactly 50% because");
    println!("  saturated (heavily biased) arbiters leak their constant value through");
    println!("  the XOR network; the paper's qualitative claim — obfuscation makes the");
    println!("  modeling attack ineffective — shows as the large raw-vs-obfuscated gap.");

    assert!(last_raw > 0.60, "raw attack must clearly beat guessing: {last_raw}");
    assert!(
        last_obf < last_raw - 0.20,
        "obfuscation must open a wide accuracy gap: raw {last_raw} vs obf {last_obf}"
    );
    assert!(last_obf < 0.70, "obfuscated attack must stay weak: {last_obf}");
}
