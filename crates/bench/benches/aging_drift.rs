//! Extension experiment: response drift under NBTI aging and the
//! re-enrollment remedy.
//!
//! The paper's related work (Kong & Koushanfar, TETC 2013) studies
//! aging-based response tuning for processor PUFs; for attestation the
//! operational question is how long an enrolled delay table stays valid.
//! This experiment ages a chip with the standard NBTI power law
//! (`ΔV_th ∝ t^0.16`) and tracks:
//!
//! * raw intra-chip HD against the enrollment-time emulator over the
//!   device's lifetime,
//! * the decoder-aware attestation FNR at each age, and
//! * both after refreshing the delay table (re-enrollment).

use pufatt_alupuf::aging::{age_chip, AgingModel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_bench::{header, sample_count, timed};
use pufatt_ecc::analysis::FailureProfile;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const HOURS_PER_YEAR: f64 = 8760.0;

fn main() {
    header("Aging", "NBTI drift vs the enrolled delay table (extension)");
    let challenges_n = sample_count(400, 5_000);
    let votes = 5;
    println!("  configuration: 32-bit PUF, NBTI 45nm power law, {challenges_n} challenges per point");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xA6E);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let enrollment_emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());
    let model = AgingModel::nbti_45nm();
    let profile = FailureProfile::estimate(&ReedMuller1::bch_32_6_16(), 2_000, &mut rng);

    println!("\n  {:>8} {:>12} {:>16} {:>16}", "years", "dVth (mV)", "intra-HD (stale)", "FNR (stale)");
    let mut drift_series = Vec::new();
    for years in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let hours = years * HOURS_PER_YEAR;
        let aged = age_chip(&design, &chip, &model, hours, &mut rng);
        let instance = PufInstance::new(&design, &aged, Environment::nominal());
        let (hd_frac, fnr) = timed(&format!("{years} y"), || {
            let mut hd = 0u64;
            let mut fnr_acc = 0.0;
            for _ in 0..challenges_n {
                let ch = Challenge::random(&mut rng, 32);
                let reference = enrollment_emulator.emulate(ch);
                // Flip probabilities vs the stale reference, from repeats.
                let mut flips = [0u32; 32];
                const REPEATS: u32 = 8;
                for _ in 0..REPEATS {
                    let diff = instance.evaluate_voted(ch, votes, &mut rng).bits() ^ reference.bits();
                    hd += diff.count_ones() as u64;
                    for (b, f) in flips.iter_mut().enumerate() {
                        *f += ((diff >> b) & 1) as u32;
                    }
                }
                let probs: Vec<f64> = flips.iter().map(|&f| f as f64 / REPEATS as f64).collect();
                fnr_acc += profile.false_negative_rate(&probs);
            }
            (hd as f64 / (challenges_n as f64 * 8.0 * 32.0), fnr_acc / challenges_n as f64)
        });
        println!("  {years:>8.1} {:>12.1} {:>15.1}% {:>16.2e}", model.mean_drift_v(hours) * 1e3, 100.0 * hd_frac, fnr);
        drift_series.push((years, hd_frac, fnr));
    }

    // Re-enrollment at 10 years restores agreement.
    let aged = age_chip(&design, &chip, &model, 10.0 * HOURS_PER_YEAR, &mut rng);
    let refreshed = PufEmulator::enroll(&design, &aged, Environment::nominal());
    let instance = PufInstance::new(&design, &aged, Environment::nominal());
    let mut hd = 0u64;
    for _ in 0..challenges_n {
        let ch = Challenge::random(&mut rng, 32);
        hd += instance
            .evaluate_voted(ch, votes, &mut rng)
            .hamming_distance(refreshed.emulate(ch)) as u64;
    }
    let refreshed_hd = hd as f64 / (challenges_n as f64 * 32.0);
    println!("\n  after re-enrollment at 10 y: intra-HD {:.1}%", 100.0 * refreshed_hd);

    let fresh = drift_series.first().expect("series nonempty");
    let old = drift_series.last().expect("series nonempty");
    assert!(old.1 >= fresh.1, "drift must not shrink with age");
    assert!(refreshed_hd <= old.1, "re-enrollment must recover agreement");
}
