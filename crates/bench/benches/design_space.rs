//! Design-space exploration of the attestation parameters.
//!
//! The paper fixes one operating point; a deployment has to choose the
//! traversal length (`rounds`), the PUF entanglement period
//! (`puf_interval`) and live with the helper-data bandwidth those choices
//! imply. This sweep shows the trade-offs:
//!
//! * honest attestation latency (compute + channel),
//! * helper-data volume on the wire,
//! * the timing-detection margin against the memory-copy attack, and
//! * the per-attestation false-negative exposure (more PUF queries = more
//!   chances for a reconstruction to fail).
//!
//! It also quantifies the gap to classical SWATT (no PUF): identical
//! traversal, zero helper bandwidth — and zero prover authentication.

use pufatt::adversary::build_malicious_prover;
use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_bench::{header, row, timed};
use pufatt_swatt::checksum::SwattParams;
use pufatt_swatt::swatt_classic::{compute_classic, ClassicParams};

fn main() {
    header("Design space", "rounds x puf_interval: latency, helper bandwidth, detection margin");
    let channel = Channel::sensor_link();
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0xD5, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 0xD51);
    println!("  F_base = {:.0} MHz (PUF-limited), sensor channel (250 kbit/s, 2 ms)", clock.frequency_mhz);

    println!(
        "\n  {:>7} {:>9} {:>9} {:>12} {:>12} {:>13} {:>10}",
        "rounds", "interval", "queries", "honest (ms)", "helper bits", "attack (ms)", "margin"
    );

    for &rounds in &[2048u32, 8192] {
        for &interval in &[8u32, 32, 128] {
            let params = SwattParams { region_bits: 10, rounds, puf_interval: interval };
            let (mut prover, verifier, _) = timed(&format!("r={rounds} i={interval}"), || {
                provision(&enrolled, params, clock, channel, 0xAB, 1.10).expect("provisioning")
            });
            let request = AttestationRequest { x0: 0x77, r0: 0x88 };
            let (honest_verdict, report) = run_session(&mut prover, &verifier, request).expect("honest");
            assert!(honest_verdict.response_ok, "honest run must verify at r={rounds} i={interval}");

            // The memory-copy attack at F_base: its elapsed time vs delta
            // is the timing-detection margin.
            let region = prover.expected_region();
            let mut attacker =
                build_malicious_prover(enrolled.device_handle(0xAC), params, &region, clock, 1.0).expect("attacker");
            let (attack_verdict, _) = run_session(&mut attacker, &verifier, request).expect("attack");

            let margin_us = (attack_verdict.elapsed_s - attack_verdict.delta_s) * 1e6;
            println!(
                "  {rounds:>7} {interval:>9} {:>9} {:>12.3} {:>12} {:>13.3} {:>7.0} us",
                params.puf_queries(),
                honest_verdict.elapsed_s * 1e3,
                report.wire_bits(),
                attack_verdict.elapsed_s * 1e3,
                margin_us
            );
            assert!(!attack_verdict.time_ok, "memory copy must overshoot delta at r={rounds} i={interval}");
        }
    }

    // Classical SWATT reference: same traversal, no PUF.
    let classic = ClassicParams { region_bits: 10, rounds: 8192 };
    let memory: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let r = compute_classic(&memory, 7, &classic);
    println!();
    row("classical SWATT helper bits", "0 (and no prover authentication)", "0");
    row("classical SWATT PUF queries", "0", &format!("{}", r.puf_queries));
    println!("  The PUF queries are what bind the response to one chip; classical SWATT");
    println!("  accepts any device that knows S — the impersonation gap PUFatt closes.");
}
