//! Durable store: WAL append, group commit, and recovery throughput.
//!
//! Not a paper figure — a persistence benchmark for the `pufatt-store`
//! subsystem. Three families of measurements against the production file
//! backend in a temporary directory:
//!
//! * single-WAL appends: per-record fsync (`sync_every = 1`, the
//!   consume-once CRP setting) vs batched fsync (`sync_every = 64`), plus
//!   a recovery replay of the batched workload;
//! * group commit: a sharded store with a background committer bounding
//!   commit latency to 1 / 5 / 20 ms, appends spread across every shard —
//!   the campaign-journal configuration, swept over the latency bound;
//! * fleet scale: enroll a large fleet (1M devices at `PUFATT_FULL=1`),
//!   journal one session per device, kill the store without a checkpoint,
//!   and time the streaming recovery that reopens it.
//!
//! Results are printed and written to `BENCH_store_wal.json` at the
//! workspace root for CI artifact upload. `--test` (as passed by
//! `cargo test` to harness=false benches) or `PUFATT_SMOKE=1` selects a
//! small workload.

use pufatt_bench::{full_scale, header, timed};
use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::{DurableStore, ShardedOptions, ShardedStore, StdVfs, StoreError, StoreOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    name: &'static str,
    devices: usize,
    records: usize,
    seconds: f64,
    records_per_sec: f64,
    wal_bytes: u64,
    mb_per_sec: f64,
}

fn outcome(i: usize) -> OutcomeRec {
    let accepted = !i.is_multiple_of(3);
    OutcomeRec {
        accepted,
        response_ok: accepted,
        time_ok: true,
        timed_out: false,
        attempts: 1 + u32::from(!accepted),
        elapsed_bits: (0.001 * (1.0 + (i % 7) as f64)).to_bits(),
        retried: u32::from(!accepted),
        dropped: (i % 5) as u32,
        lost: false,
        latency_slot: (i % 20) as u8,
        crp_hits: (i % 3) as u32,
        crp_misses: 4,
    }
}

/// The record stream: one enrollment, then a steady diet of session
/// closures that keep the device Active (always legal, representative of
/// a healthy campaign's journal).
fn session_record(id: u32, succs: u32, i: usize) -> Record {
    Record::SessionClosed {
        id,
        outcome: outcome(i),
        status: StoredStatus::Active,
        fails: 0,
        succs,
    }
}

fn open(dir: &std::path::Path, sync_every: u32) -> DurableStore {
    let vfs = StdVfs::open(dir).expect("temp dir");
    let opts = StoreOptions { history_capacity: 64, sync_every, ..StoreOptions::default() };
    DurableStore::open(Arc::new(vfs), opts).expect("open store")
}

/// Size-triggered compaction off so the WAL keeps the whole workload:
/// `wal_bytes` stays meaningful and recovery rows measure an honest
/// full-history replay.
fn open_sharded(dir: &std::path::Path) -> Arc<ShardedStore> {
    let vfs = StdVfs::open(dir).expect("temp dir");
    let opts = ShardedOptions { compact_wal_bytes: 0, ..ShardedOptions::default() };
    Arc::new(ShardedStore::open(Arc::new(vfs), opts).expect("open sharded store"))
}

fn append_run(dir: &std::path::Path, name: &'static str, sync_every: u32, records: usize) -> Row {
    std::fs::remove_dir_all(dir).ok();
    let store = open(dir, sync_every);
    store.append(&Record::DeviceEnrolled { id: 0 }).expect("enroll");
    let start = Instant::now();
    for i in 0..records {
        store.append(&session_record(0, (i + 1) as u32, i)).expect("append");
    }
    store.sync().expect("final sync");
    let seconds = start.elapsed().as_secs_f64();
    let wal_bytes = store.stats().wal_bytes;
    Row {
        name,
        devices: 1,
        records,
        seconds,
        records_per_sec: records as f64 / seconds.max(1e-9),
        wal_bytes,
        mb_per_sec: wal_bytes as f64 / 1e6 / seconds.max(1e-9),
    }
}

/// Appends through the group commit; on backpressure (the committer fell
/// behind the bench loop) commits the batch inline and retries — exactly
/// what the campaign journal does, so the sustained rate is honest about
/// the bounded commit queue.
fn group_append(store: &ShardedStore, record: &Record) {
    loop {
        match store.append(record) {
            Ok(()) => return,
            Err(StoreError::Backpressure) => store.flush().expect("flush under backpressure"),
            Err(e) => panic!("group-commit append failed: {e}"),
        }
    }
}

/// Sustained group-commit appends with a committer flushing every
/// `interval_ms`, spread over enough devices to keep every shard dirty.
fn group_commit_run(dir: &std::path::Path, name: &'static str, interval_ms: f64, records: usize) -> Row {
    std::fs::remove_dir_all(dir).ok();
    let store = open_sharded(dir);
    // 256 devices striped 32 ids apart cover all 8 default shards.
    let ids: Vec<u32> = (0..256u32).map(|d| d * 32).collect();
    for &id in &ids {
        store.append_synced(&Record::DeviceEnrolled { id }).expect("enroll");
    }
    let committer = store.committer(Duration::from_secs_f64(interval_ms * 1e-3));
    let mut succs = vec![0u32; ids.len()];
    let start = Instant::now();
    for i in 0..records {
        let d = i % ids.len();
        succs[d] += 1;
        group_append(&store, &session_record(ids[d], succs[d], i));
    }
    store.flush().expect("final flush");
    let seconds = start.elapsed().as_secs_f64();
    committer.stop();
    let wal_bytes = store.stats().wal_bytes;
    Row {
        name,
        devices: ids.len(),
        records,
        seconds,
        records_per_sec: records as f64 / seconds.max(1e-9),
        wal_bytes,
        mb_per_sec: wal_bytes as f64 / 1e6 / seconds.max(1e-9),
    }
}

/// The fleet-scale story: enroll `devices`, journal one session per
/// device (both under a 5 ms group commit), kill the store with its WAL
/// intact, and time the streaming recovery that reopens it.
fn fleet_runs(dir: &std::path::Path, devices: usize) -> Vec<Row> {
    std::fs::remove_dir_all(dir).ok();
    let mut rows = Vec::new();
    let killed_wal_bytes;
    {
        let store = open_sharded(dir);
        let committer = store.committer(Duration::from_millis(5));

        // Throughput in bytes is the *delta* of the summed shard WAL
        // sizes over each phase — `stats().wal_bytes` is cumulative
        // across all shards, so reporting it raw would credit each phase
        // with every byte the previous phases wrote.
        let bytes_before = store.stats().wal_bytes;
        let start = Instant::now();
        for id in 0..devices as u32 {
            group_append(&store, &Record::DeviceEnrolled { id });
        }
        store.flush().expect("flush enrollments");
        let seconds = start.elapsed().as_secs_f64();
        let enroll_bytes = store.stats().wal_bytes - bytes_before;
        rows.push(Row {
            name: "fleet_enroll",
            devices,
            records: devices,
            seconds,
            records_per_sec: devices as f64 / seconds.max(1e-9),
            wal_bytes: enroll_bytes,
            mb_per_sec: enroll_bytes as f64 / 1e6 / seconds.max(1e-9),
        });

        let bytes_before = store.stats().wal_bytes;
        let start = Instant::now();
        for id in 0..devices as u32 {
            group_append(&store, &session_record(id, 1, id as usize));
        }
        store.flush().expect("flush sessions");
        let seconds = start.elapsed().as_secs_f64();
        let session_bytes = store.stats().wal_bytes - bytes_before;
        rows.push(Row {
            name: "fleet_sessions",
            devices,
            records: devices,
            seconds,
            records_per_sec: devices as f64 / seconds.max(1e-9),
            wal_bytes: session_bytes,
            mb_per_sec: session_bytes as f64 / 1e6 / seconds.max(1e-9),
        });
        committer.stop();
        // Kill: drop without a checkpoint — the whole fleet's history is
        // in the shard WALs and recovery must replay all of it. Recovery
        // compacts on reopen (resetting `wal_bytes`), so the bytes it
        // will replay are the WAL sizes as of the kill.
        killed_wal_bytes = store.stats().wal_bytes;
    }
    let start = Instant::now();
    let store = open_sharded(dir);
    let seconds = start.elapsed().as_secs_f64();
    let replayed = store.stats().records_replayed as usize;
    assert!(replayed >= 2 * devices, "kill-and-resume must replay the whole fleet: {replayed} < {}", 2 * devices);
    let mut seen = 0usize;
    store.for_each_device(|_, state| {
        assert_eq!(state.outcomes_total, 1, "each device recovered with its one session");
        seen += 1;
    });
    assert_eq!(seen, devices, "recovery must surface every enrolled device");
    rows.push(Row {
        name: "fleet_recovery",
        devices,
        records: replayed,
        seconds,
        records_per_sec: replayed as f64 / seconds.max(1e-9),
        wal_bytes: killed_wal_bytes,
        mb_per_sec: killed_wal_bytes as f64 / 1e6 / seconds.max(1e-9),
    });
    rows
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--test") || std::env::var("PUFATT_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (synced_n, batched_n, group_n, fleet_devices) = if smoke {
        (50, 200, 500, 2_000)
    } else if full_scale() {
        (5_000, 200_000, 200_000, 1_000_000)
    } else {
        (1_000, 20_000, 50_000, 100_000)
    };

    header("STORE", "Durable store: WAL append + group commit + recovery throughput (pufatt-store)");
    println!(
        "  {synced_n} per-fsync records, {batched_n} batched, {group_n} group-committed, {fleet_devices}-device fleet{}",
        if smoke { " (smoke mode)" } else { "" }
    );
    let dir = std::env::temp_dir().join(format!("pufatt-bench-wal-{}", std::process::id()));

    let mut rows = Vec::new();
    rows.push(timed("append, fsync per record (sync_every=1) ", || {
        append_run(&dir, "append_synced_each", 1, synced_n)
    }));
    rows.push(timed("append, batched fsync  (sync_every=64)", || {
        append_run(&dir, "append_batched_64", 64, batched_n)
    }));

    // The batched store above was dropped with its workload still in the
    // WAL (no checkpoint): reopening replays every record. Recovery
    // compacts on reopen, so the replayed byte count is the batched run's
    // final WAL size, captured before the reopen resets the counter.
    let batched_wal_bytes = rows[1].wal_bytes;
    let recovery = timed("recovery (replay WAL into a snapshot) ", || {
        let start = Instant::now();
        let store = open(&dir, 64);
        let seconds = start.elapsed().as_secs_f64();
        let replayed = store.stats().records_replayed as usize;
        assert_eq!(replayed, batched_n + 1, "recovery must replay the whole workload");
        assert_eq!(store.stats().torn_tails_recovered, 0, "clean shutdown leaves no torn tail");
        Row {
            name: "recover_replay",
            devices: 1,
            records: replayed,
            seconds,
            records_per_sec: replayed as f64 / seconds.max(1e-9),
            wal_bytes: batched_wal_bytes,
            mb_per_sec: batched_wal_bytes as f64 / 1e6 / seconds.max(1e-9),
        }
    });
    rows.push(recovery);

    rows.push(timed("group commit, 1 ms latency bound       ", || {
        group_commit_run(&dir, "group_commit_1ms", 1.0, group_n)
    }));
    rows.push(timed("group commit, 5 ms latency bound       ", || {
        group_commit_run(&dir, "group_commit_5ms", 5.0, group_n)
    }));
    rows.push(timed("group commit, 20 ms latency bound      ", || {
        group_commit_run(&dir, "group_commit_20ms", 20.0, group_n)
    }));

    let synced_rate = rows[0].records_per_sec;
    let group_rate = rows[4].records_per_sec;
    println!(
        "    group commit at 5 ms sustains {:.1}x the per-record-fsync rate",
        group_rate / synced_rate.max(1e-9)
    );
    if !smoke {
        assert!(
            group_rate >= 10.0 * synced_rate,
            "group commit must sustain >= 10x the fsync-per-record baseline \
             ({group_rate:.0} vs {synced_rate:.0} records/s)"
        );
    }

    rows.extend(timed("fleet enroll + sessions + kill/resume  ", || fleet_runs(&dir, fleet_devices)));
    std::fs::remove_dir_all(&dir).ok();

    for r in &rows {
        println!(
            "    {:<20} {:>8} records in {:>8.4} s: {:>9.0} records/s ({:.2} MB/s, wal {} B, {} device(s))",
            r.name, r.records, r.seconds, r.records_per_sec, r.mb_per_sec, r.wal_bytes, r.devices
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"devices\": {}, \"records\": {}, \"seconds\": {:.6}, ",
                    "\"records_per_sec\": {:.1}, \"wal_bytes\": {}, \"mb_per_sec\": {:.3}}}"
                ),
                r.name, r.devices, r.records, r.seconds, r.records_per_sec, r.wal_bytes, r.mb_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store_wal\",\n  \"smoke\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        json_rows.join(",\n")
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store_wal.json");
    std::fs::write(out_path, json).expect("write BENCH_store_wal.json");
    println!("  wrote {out_path}");
}
