//! Durable store: WAL append and recovery throughput.
//!
//! Not a paper figure — a persistence benchmark for the `pufatt-store`
//! subsystem. Three measurements against the production file backend in a
//! temporary directory:
//!
//! * per-record-fsync appends (`sync_every = 1`, the consume-once CRP
//!   setting — each record is committed before the append returns);
//! * batched appends (`sync_every = 64`, the campaign journal setting);
//! * recovery: reopening a store whose WAL holds the whole workload,
//!   which replays every record and folds them into a fresh snapshot.
//!
//! Results are printed and written to `BENCH_store_wal.json` at the
//! workspace root for CI artifact upload. `--test` (as passed by
//! `cargo test` to harness=false benches) or `PUFATT_SMOKE=1` selects a
//! small workload.

use pufatt_bench::{full_scale, header, timed};
use pufatt_store::record::{OutcomeRec, Record, StoredStatus};
use pufatt_store::{DurableStore, StdVfs, StoreOptions};
use std::sync::Arc;
use std::time::Instant;

struct Row {
    name: &'static str,
    records: usize,
    seconds: f64,
    records_per_sec: f64,
    wal_bytes: u64,
    mb_per_sec: f64,
}

fn outcome(i: usize) -> OutcomeRec {
    let accepted = !i.is_multiple_of(3);
    OutcomeRec {
        accepted,
        response_ok: accepted,
        time_ok: true,
        timed_out: false,
        attempts: 1 + u32::from(!accepted),
        elapsed_bits: (0.001 * (1.0 + (i % 7) as f64)).to_bits(),
        retried: u32::from(!accepted),
        dropped: (i % 5) as u32,
        lost: false,
        latency_slot: (i % 20) as u8,
        crp_hits: (i % 3) as u32,
        crp_misses: 4,
    }
}

/// The record stream: one enrollment, then a steady diet of session
/// closures that keep the device Active (always legal, representative of
/// a healthy campaign's journal).
fn session_record(i: usize) -> Record {
    Record::SessionClosed {
        id: 0,
        outcome: outcome(i),
        status: StoredStatus::Active,
        fails: 0,
        succs: (i + 1) as u32,
    }
}

fn open(dir: &std::path::Path, sync_every: u32) -> DurableStore {
    let vfs = StdVfs::open(dir).expect("temp dir");
    let opts = StoreOptions { history_capacity: 64, sync_every };
    DurableStore::open(Arc::new(vfs), opts).expect("open store")
}

fn append_run(dir: &std::path::Path, name: &'static str, sync_every: u32, records: usize) -> Row {
    std::fs::remove_dir_all(dir).ok();
    let store = open(dir, sync_every);
    store.append(&Record::DeviceEnrolled { id: 0 }).expect("enroll");
    let start = Instant::now();
    for i in 0..records {
        store.append(&session_record(i)).expect("append");
    }
    store.sync().expect("final sync");
    let seconds = start.elapsed().as_secs_f64();
    let wal_bytes = store.stats().wal_bytes;
    Row {
        name,
        records,
        seconds,
        records_per_sec: records as f64 / seconds.max(1e-9),
        wal_bytes,
        mb_per_sec: wal_bytes as f64 / 1e6 / seconds.max(1e-9),
    }
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--test") || std::env::var("PUFATT_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (synced_n, batched_n) = if smoke {
        (50, 200)
    } else if full_scale() {
        (5_000, 200_000)
    } else {
        (1_000, 20_000)
    };

    header("STORE", "Durable store: WAL append + recovery throughput (pufatt-store)");
    println!(
        "  {synced_n} per-fsync records, {batched_n} batched records{}",
        if smoke { " (smoke mode)" } else { "" }
    );
    let dir = std::env::temp_dir().join(format!("pufatt-bench-wal-{}", std::process::id()));

    let mut rows = Vec::new();
    rows.push(timed("append, fsync per record (sync_every=1) ", || {
        append_run(&dir, "append_synced_each", 1, synced_n)
    }));
    rows.push(timed("append, batched fsync  (sync_every=64)", || {
        append_run(&dir, "append_batched_64", 64, batched_n)
    }));

    // The batched store above was dropped with its workload still in the
    // WAL (no checkpoint): reopening replays every record.
    let recovery = timed("recovery (replay WAL into a snapshot) ", || {
        let start = Instant::now();
        let store = open(&dir, 64);
        let seconds = start.elapsed().as_secs_f64();
        let replayed = store.stats().records_replayed as usize;
        assert_eq!(replayed, batched_n + 1, "recovery must replay the whole workload");
        assert_eq!(store.stats().torn_tails_recovered, 0, "clean shutdown leaves no torn tail");
        Row {
            name: "recover_replay",
            records: replayed,
            seconds,
            records_per_sec: replayed as f64 / seconds.max(1e-9),
            wal_bytes: store.stats().wal_bytes,
            mb_per_sec: 0.0,
        }
    });
    rows.push(recovery);
    std::fs::remove_dir_all(&dir).ok();

    for r in &rows {
        println!(
            "    {:<20} {:>7} records in {:>8.4} s: {:>9.0} records/s ({:.2} MB/s, wal {} B)",
            r.name, r.records, r.seconds, r.records_per_sec, r.mb_per_sec, r.wal_bytes
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"records\": {}, \"seconds\": {:.6}, ",
                    "\"records_per_sec\": {:.1}, \"wal_bytes\": {}, \"mb_per_sec\": {:.3}}}"
                ),
                r.name, r.records, r.seconds, r.records_per_sec, r.wal_bytes, r.mb_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store_wal\",\n  \"smoke\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        json_rows.join(",\n")
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store_wal.json");
    std::fs::write(out_path, json).expect("write BENCH_store_wal.json");
    println!("  wrote {out_path}");
}
