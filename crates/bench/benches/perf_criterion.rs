//! Criterion performance benches (not tied to a paper figure): throughput
//! of the building blocks a deployment cares about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pufatt::enroll::enroll;
use pufatt::obfuscate::obfuscate;
use pufatt::pipeline::PufPipeline;
use pufatt_alupuf::challenge::{Challenge, RawResponse};
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::{Decoder, ReverseFuzzyExtractor};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use pufatt_swatt::checksum::{compute, MixPuf, SwattParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_puf_evaluation(c: &mut Criterion) {
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    c.bench_function("alupuf/evaluate_32bit", |b| {
        b.iter_batched(
            || Challenge::random(&mut rng, 32),
            |ch| black_box(instance.evaluate(ch, &mut ChaCha8Rng::seed_from_u64(2))),
            BatchSize::SmallInput,
        )
    });

    let emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());
    c.bench_function("alupuf/emulate_32bit", |b| {
        b.iter_batched(|| Challenge::random(&mut rng, 32), |ch| black_box(emulator.emulate(ch)), BatchSize::SmallInput)
    });
}

fn bench_ecc(c: &mut Criterion) {
    let code = ReedMuller1::bch_32_6_16();
    let fe = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    c.bench_function("ecc/syndrome_32bit", |b| {
        b.iter_batched(
            || BitVec::from_word(rng.gen::<u32>() as u64, 32),
            |y| black_box(code.code().syndrome(&y).expect("sized")),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ecc/fht_decode_32bit", |b| {
        b.iter_batched(
            || BitVec::from_word(rng.gen::<u32>() as u64, 32),
            |y| black_box(code.decode_ml(&y).expect("sized")),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ecc/reverse_fe_round_trip", |b| {
        b.iter_batched(
            || {
                let y = BitVec::from_word(rng.gen::<u32>() as u64, 32);
                let h = fe.generate(&y).expect("sized");
                (y, h)
            },
            |(y, h)| black_box(fe.reproduce(&y, &h).expect("same word decodes")),
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let pipeline = PufPipeline::paper_32bit();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    c.bench_function("pipeline/prove_8_responses", |b| {
        b.iter_batched(
            || std::array::from_fn(|_| RawResponse::new(rng.gen::<u32>() as u64, 32)),
            |raw: [RawResponse; 8]| black_box(pipeline.prove(&raw)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("pipeline/obfuscate", |b| {
        b.iter_batched(
            || std::array::from_fn(|_| rng.gen::<u32>() as u64),
            |ys: [u64; 8]| black_box(obfuscate(&ys, 32)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_checksum(c: &mut Criterion) {
    let memory: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let params = SwattParams { region_bits: 10, rounds: 4096, puf_interval: 0 };
    c.bench_function("swatt/reference_checksum_4096_rounds", |b| {
        b.iter(|| black_box(compute(&memory, 7, 9, &params, &mut MixPuf)))
    });
}

fn bench_device_pipeline(c: &mut Criterion) {
    let enrolled = enroll(AluPufConfig::paper_32bit(), 5, 0).expect("supported width");
    let mut device = enrolled.device_puf(6);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    c.bench_function("device/respond_full_pipeline", |b| {
        b.iter_batched(
            || std::array::from_fn(|_| Challenge::random(&mut rng, 32)),
            |group: [Challenge; 8]| black_box(device.respond(&group)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_puf_evaluation, bench_ecc, bench_pipeline, bench_checksum, bench_device_pipeline
}
criterion_main!(benches);
