//! PUF evaluation throughput: baseline vs. reused engine vs. parallel batch.
//!
//! Not a paper figure — the performance benchmark for the zero-allocation
//! simulation engine. Three configurations evaluate the same challenge set
//! on the same `paper_32bit` chip:
//!
//! 1. **baseline** — the pre-engine per-challenge-reconstruction path,
//!    reimplemented here exactly as the original code ran it: every
//!    evaluation recomputes the effective delays, rebuilds the nested
//!    `Vec<Vec<GateId>>` fanout lists, re-runs the allocating functional
//!    pre-sim and fills a fresh event heap;
//! 2. **reused** — one `PufInstance`, its engine scratch reused serially;
//! 3. **batch** — `evaluate_batch` at 1/2/4/8 threads (bit-identical
//!    output at every thread count).
//!
//! Results are printed and written to `BENCH_puf_eval.json` at the
//! workspace root for CI artifact upload. `--test` (as passed by
//! `cargo test` to harness=false benches) or `PUFATT_SMOKE=1` selects a
//! smoke run with a reduced challenge count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufChip, PufInstance};
use pufatt_bench::{full_scale, header};
use pufatt_silicon::env::Environment;
use pufatt_silicon::netlist::{GateKind, NetId};
use pufatt_silicon::sim::EventSimulator;
use pufatt_silicon::variation::ChipSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const NOISE_SEED: u64 = 0xB1A5;

struct Row {
    name: String,
    threads: usize,
    challenges: usize,
    seconds: f64,
    challenges_per_sec: f64,
    events_per_sec: f64,
    speedup_vs_baseline: f64,
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--test") || std::env::var("PUFATT_SMOKE").map(|v| v == "1").unwrap_or(false);
    // Smoke keeps 256 challenges = four 64-lane blocks, so the 4-thread
    // batch arm has one block per worker and the parallel-regression gate
    // below measures real work distribution, not an empty queue.
    let n = if smoke {
        256
    } else if full_scale() {
        8192
    } else {
        2048
    };

    let cpu_model = cpu_model();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    header("PERF", "PUF evaluation throughput (paper_32bit, bit-sliced engine)");
    println!("  {n} challenges per configuration{}", if smoke { " (smoke mode)" } else { "" });
    println!("  host: {cpu_model}, {cores} core(s)");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let challenges: Vec<Challenge> = (0..n).map(|_| Challenge::random(&mut rng, 32)).collect();

    // Events per challenge is identical across configurations (same chip,
    // same stimuli); measure it once on the raw engine.
    let delays = design.effective_delays_ps(chip.silicon(), &Environment::nominal());
    let mut sim = EventSimulator::new(design.netlist(), &delays);
    let (mut from, mut to) = (Vec::new(), Vec::new());
    let mut total_events = 0u64;
    for &ch in &challenges {
        design.stimulus_into(ch, &mut from, &mut to);
        sim.run_transition_in_place(&from, &to);
        total_events += sim.events();
    }
    let events_per_challenge = total_events as f64 / n as f64;
    println!("  {events_per_challenge:.0} simulation events per challenge");

    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, name: &str, threads: usize, secs: f64, baseline: f64| {
        let cps = n as f64 / secs;
        rows.push(Row {
            name: name.to_string(),
            threads,
            challenges: n,
            seconds: secs,
            challenges_per_sec: cps,
            events_per_sec: cps * events_per_challenge,
            speedup_vs_baseline: if baseline > 0.0 { baseline / secs } else { 1.0 },
        });
    };

    // 1 + 2. Baseline (per-challenge reconstruction, the pre-engine code
    // path) and the reused engine, measured in interleaved rounds with the
    // fastest round kept per arm. Timing noise on shared hosts is additive
    // (scheduler steals, frequency dips), so the minimum over enough rounds
    // is the standard estimator of each arm's true cost; interleaving keeps
    // the rounds of both arms close together in time so a slow phase of the
    // host cannot bias only one of them.
    let rounds = if smoke { 1 } else { 9 };
    let inst = PufInstance::new(&design, &chip, Environment::nominal());
    let mut baseline_secs = f64::INFINITY;
    let mut reused_secs = f64::INFINITY;
    let mut baseline_bits = 0u64;
    let mut reused_bits = 0u64;
    for _ in 0..rounds {
        let mut noise = ChaCha8Rng::seed_from_u64(NOISE_SEED);
        let start = Instant::now();
        baseline_bits = 0;
        for &ch in &challenges {
            baseline_bits ^= baseline_evaluate(&design, &chip, ch, &mut noise);
        }
        baseline_secs = baseline_secs.min(start.elapsed().as_secs_f64());

        let mut noise = ChaCha8Rng::seed_from_u64(NOISE_SEED);
        let start = Instant::now();
        reused_bits = 0;
        for &ch in &challenges {
            reused_bits ^= inst.evaluate(ch, &mut noise).bits();
        }
        reused_secs = reused_secs.min(start.elapsed().as_secs_f64());
    }
    push(&mut rows, "baseline_reconstruct", 1, baseline_secs, 0.0);
    push(&mut rows, "reused_engine", 1, reused_secs, baseline_secs);
    assert_eq!(reused_bits, baseline_bits, "reused engine changed responses");

    // 3. Parallel bit-sliced batch at 1/2/4/8 threads, best of a few
    // rounds per arm (same minimum-estimator rationale as above; the first
    // round also pays one-time engine-pool construction, which reuse then
    // amortises away — exactly the behaviour the pool exists to provide).
    let batch_rounds = 3;
    let mut batch_ref: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut secs = f64::INFINITY;
        for _ in 0..batch_rounds {
            let start = Instant::now();
            let out = inst.evaluate_batch(&challenges, NOISE_SEED, threads);
            secs = secs.min(start.elapsed().as_secs_f64());
            let bits: Vec<u64> = out.iter().map(|r| r.bits()).collect();
            match &batch_ref {
                None => batch_ref = Some(bits),
                Some(expected) => {
                    assert_eq!(&bits, expected, "batch output changed at {threads} threads")
                }
            }
        }
        push(&mut rows, "batch", threads, secs, baseline_secs);
    }

    // 4. The verifier's noise-free emulation path: enrolled delay table,
    // single-thread incremental bit-sliced engine (consecutive blocks reuse
    // the previous waveform via dirty-cone re-simulation).
    let emulator = pufatt_alupuf::emulate::PufEmulator::enroll(&design, &chip, Environment::nominal());
    let mut emu_secs = f64::INFINITY;
    for _ in 0..batch_rounds {
        let start = Instant::now();
        let out = emulator.emulate_batch(&challenges, 1);
        emu_secs = emu_secs.min(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    push(&mut rows, "emulator_incremental", 1, emu_secs, baseline_secs);

    for r in &rows {
        println!(
            "    {:<22} {:>2} thread(s): {:>9.0} challenges/s  {:>12.3e} events/s  ({:>5.2}x vs baseline)",
            r.name, r.threads, r.challenges_per_sec, r.events_per_sec, r.speedup_vs_baseline
        );
    }

    let reused = rows.iter().find(|r| r.name == "reused_engine").expect("reused row");
    println!(
        "  single-thread engine reuse speedup: {:.2}x, best-of-{rounds} interleaved rounds \
         (target >= 5x); batch output thread-invariant",
        reused.speedup_vs_baseline
    );
    if !smoke {
        assert!(
            reused.speedup_vs_baseline >= 5.0,
            "engine reuse speedup {:.2}x below the 5x target",
            reused.speedup_vs_baseline
        );
    }

    // Parallel-regression gate (runs in CI smoke mode too): adding worker
    // threads must never *cost* throughput. Absolute multicore speedup
    // depends on the host — CI runners can expose a single core, where the
    // honest expectation is parity — so the gate checks 4 threads against
    // 1 thread with a small tolerance for scheduler noise, which still
    // catches the anti-scaling class of bug (per-call engine construction,
    // lock convoys on the output slots) that once made 4 threads slower
    // than 1.
    let batch_cps = |threads: usize| {
        rows.iter()
            .find(|r| r.name == "batch" && r.threads == threads)
            .map(|r| r.challenges_per_sec)
            .unwrap_or(0.0)
    };
    let (one, four) = (batch_cps(1), batch_cps(4));
    println!("  parallel gate: 4-thread batch at {:.2}x of 1-thread (must not drop below 0.85x)", four / one);
    assert!(
        four >= 0.85 * one,
        "parallel regression: 4-thread batch ({four:.0}/s) fell below 1-thread ({one:.0}/s)"
    );

    // Machine-readable results for CI artifact upload.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"threads\": {}, \"challenges\": {}, ",
                    "\"seconds\": {:.6}, \"challenges_per_sec\": {:.1}, ",
                    "\"events_per_sec\": {:.1}, \"speedup_vs_baseline\": {:.3}}}"
                ),
                r.name,
                r.threads,
                r.challenges,
                r.seconds,
                r.challenges_per_sec,
                r.events_per_sec,
                r.speedup_vs_baseline
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"puf_eval\",\n  \"design\": \"paper_32bit\",\n  \"smoke\": {},\n",
            "  \"cpu_model\": \"{}\",\n  \"cores\": {},\n",
            "  \"events_per_challenge\": {:.1},\n  \"rows\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        cpu_model.replace('"', "'"),
        cores,
        events_per_challenge,
        json_rows.join(",\n")
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_puf_eval.json");
    std::fs::write(out_path, json).expect("write BENCH_puf_eval.json");
    println!("  wrote {out_path}");
}

/// One pending output change, ordered exactly as the pre-engine simulator
/// ordered it (earliest time first, sequence number breaking ties).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_ps: f64,
    seq: u64,
    net: NetId,
    value: bool,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_ps
            .partial_cmp(&self.time_ps)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pre-engine evaluation path, preserved verbatim as the benchmark
/// baseline: every call recomputes the effective delays, rebuilds the
/// nested fanout lists, reallocates the functional pre-sim state and the
/// event heap, then resolves the arbiters with the same noise draws as
/// [`PufInstance::evaluate`] (so the response bits must match it exactly).
fn baseline_evaluate<R: Rng + ?Sized>(design: &AluPufDesign, chip: &PufChip, challenge: Challenge, rng: &mut R) -> u64 {
    let netlist = design.netlist();
    // The seed's delay path: `Chip::gate_delays` re-derives the fanout
    // adjacency internally on every call (no shared CSR), then the design's
    // per-gate factors are applied on top — exactly what the pre-engine
    // `effective_delays_ps` did per evaluation.
    let mut delays_ps = chip.silicon().gate_delays(netlist, &Environment::nominal());
    for (delay, &factor) in delays_ps.iter_mut().zip(design.gate_delay_factor()) {
        *delay *= factor;
    }
    let (from, to) = design.stimulus_vectors(challenge);
    let fanouts = netlist.fanouts();

    let mut values = netlist.evaluate(&from);
    let mut settle: Vec<Option<f64>> = vec![None; netlist.net_count()];
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, &net) in netlist.primary_inputs().iter().enumerate() {
        if from[i] != to[i] {
            heap.push(Event { time_ps: 0.0, seq, net, value: to[i] });
            seq += 1;
        }
    }
    while let Some(ev) = heap.pop() {
        if values[ev.net.index()] == ev.value {
            continue;
        }
        values[ev.net.index()] = ev.value;
        settle[ev.net.index()] = Some(ev.time_ps);
        for &gid in &fanouts[ev.net.index()] {
            let gate = netlist.gate_at(gid);
            let out = baseline_gate_eval(gate.kind, values[gate.inputs[0].index()], values[gate.inputs[1].index()]);
            heap.push(Event {
                time_ps: ev.time_ps + delays_ps[gid.index()],
                seq,
                net: gate.output,
                value: out,
            });
            seq += 1;
        }
    }

    let (sum0, sum1) = design.sum_buses();
    let cfg = &design.config().arbiter;
    let mut bits = 0u64;
    for i in 0..design.width() {
        let t0 = settle[sum0[i].index()].unwrap_or(0.0);
        let t1 = settle[sum1[i].index()].unwrap_or(0.0);
        let delta = t0 - t1 + design.design_skew_ps()[i] + chip.arbiter_offset_ps()[i];
        let noisy = delta + gaussian(rng) * cfg.jitter_sigma_ps;
        let p_one = 1.0 / (1.0 + (noisy / cfg.metastability_tau_ps).exp());
        if rng.gen::<f64>() < p_one {
            bits |= 1 << i;
        }
    }
    bits
}

/// The pre-engine `GateKind::eval` (a per-kind `match`), frozen here so the
/// baseline keeps paying the original data-dependent branch per fanout edge
/// even now that the shared implementation is a branchless table lookup.
fn baseline_gate_eval(kind: GateKind, a: bool, b: bool) -> bool {
    match kind {
        GateKind::Buf => a,
        GateKind::Not => !a,
        GateKind::And2 => a & b,
        GateKind::Or2 => a | b,
        GateKind::Xor2 => a ^ b,
        GateKind::Nand2 => !(a & b),
        GateKind::Nor2 => !(a | b),
        GateKind::Xnor2 => !(a ^ b),
    }
}

/// Host CPU model for the bench artifact, so recorded numbers carry their
/// hardware provenance (`/proc/cpuinfo` on Linux; "unknown" elsewhere).
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}
