//! §4.1 "Side-channel Attack Resiliency": power leakage of the obfuscation
//! network and the dual-rail countermeasure.
//!
//! The paper concedes that side-channel + ML attacks can break XOR
//! obfuscation [18] and points to countermeasures "with a small hardware
//! overhead" [18, 28]. This experiment measures the CPA attacker's
//! statistic — the correlation between internal raw-response Hamming
//! weights and the observed power trace — for the unprotected network and
//! the dual-rail variant, across measurement-noise levels, and shows what
//! the leak buys an ML attacker (HW(y) as an extra feature).

use pufatt::enroll::enroll;
use pufatt::sidechannel::{leakage_correlation, PowerModel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_silicon::env::Environment;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Side channel", "Obfuscation-network power leakage and the dual-rail fix (4.1)");
    let queries = sample_count(300, 5_000);
    println!("  configuration: 32-bit device, {queries} PUF queries traced (8 samples each)");

    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x5CA, 0).expect("supported width");
    let instance = PufInstance::new(enrolled.design(), enrolled.chip(), Environment::nominal());
    let mut rng = ChaCha8Rng::seed_from_u64(0x5CB);

    // Collect genuine raw responses (the values the network latches).
    let raw: Vec<u64> = timed("trace collection", || {
        (0..queries * 8)
            .map(|_| instance.evaluate(Challenge::random(&mut rng, 32), &mut rng).bits())
            .collect()
    });
    let true_hw: Vec<f64> = raw.iter().map(|y| y.count_ones() as f64).collect();

    println!("\n  {:<28} {:>14} {:>14}", "noise sigma (HW units)", "unprotected", "dual-rail");
    let mut best_unprotected = 0.0f64;
    let mut worst_dual_rail = 0.0f64;
    for &noise in &[0.5, 1.0, 2.0, 4.0] {
        let hw_model = PowerModel::HammingWeight { noise_sigma: noise };
        let dr_model = PowerModel::DualRail { noise_sigma: noise };
        let t_hw: Vec<f64> = raw.iter().map(|&y| hw_model.sample(y, 32, &mut rng)).collect();
        let t_dr: Vec<f64> = raw.iter().map(|&y| dr_model.sample(y, 32, &mut rng)).collect();
        let rho_hw = leakage_correlation(&true_hw, &t_hw);
        let rho_dr = leakage_correlation(&true_hw, &t_dr);
        println!("  {noise:<28} {rho_hw:>14.3} {rho_dr:>14.3}");
        best_unprotected = best_unprotected.max(rho_hw);
        worst_dual_rail = worst_dual_rail.max(rho_dr.abs());
    }

    // What the leak buys: with HW(y) observable per response, the attacker
    // learns ~log2(C(32, hw)) fewer bits of uncertainty per response;
    // report the average entropy loss.
    let mean_hw = true_hw.iter().sum::<f64>() / true_hw.len() as f64;
    let var_hw = true_hw.iter().map(|h| (h - mean_hw) * (h - mean_hw)).sum::<f64>() / true_hw.len() as f64;
    // Differential entropy of a discretised Gaussian approximates the HW
    // entropy: 0.5·log2(2πe·var).
    let hw_entropy_bits = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * var_hw).log2();

    println!();
    row("CPA correlation, unprotected", "attackable [18]", &format!("{best_unprotected:.2}"));
    row("CPA correlation, dual-rail", "~0 (countermeasure)", &format!("{worst_dual_rail:.2}"));
    row("bits leaked per response (HW observable)", "-", &format!("~{hw_entropy_bits:.1}"));

    assert!(best_unprotected > 0.7, "unprotected network must leak: {best_unprotected}");
    assert!(worst_dual_rail < 0.1, "dual-rail must suppress leakage: {worst_dual_rail}");
}
