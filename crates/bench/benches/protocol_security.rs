//! Figure 2 / §4.2: end-to-end protocol correctness and security matrix.
//!
//! Runs the full PUFatt session (PE32 prover executing the generated
//! checksum, emulator-backed verifier, channel model, time bound δ) for the
//! honest prover and each adversary of the paper's security analysis, and
//! prints which check catches whom:
//!
//! | scenario            | paper's expectation                  |
//! |---------------------|--------------------------------------|
//! | honest              | accepted (correctness)               |
//! | tampered memory     | response mismatch (soundness)        |
//! | memory-copy attack  | time bound exceeded                  |
//! | + overclock         | PUF corruption ⇒ response mismatch   |
//! | proxy/oracle        | channel too slow ⇒ time bound        |
//! | impersonation       | helper data fails ⇒ response mismatch|

use pufatt::adversary::{memory_copy_attack, overclock_evasion_attack, proxy_attack};
use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Protocol", "End-to-end attestation: honest runs and the paper's attacks (Fig. 2, 4.2)");
    let honest_runs = sample_count(5, 50);
    let params = SwattParams { region_bits: 10, rounds: 8_192, puf_interval: 32 };
    let channel = Channel::sensor_link();

    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x5EC, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 0xC10C);
    println!(
        "  configuration: region 2^{} words, {} rounds, PUF every {} blocks, F_base {:.0} MHz",
        params.region_bits, params.rounds, params.puf_interval, clock.frequency_mhz
    );

    let (mut prover, verifier, honest_cycles) =
        provision(&enrolled, params, clock, channel, 0xFEED, 1.10).expect("provisioning");
    println!("  honest attestation: {} cycles, delta = {:.3} ms", honest_cycles, verifier.delta_s * 1e3);

    let mut rng = ChaCha8Rng::seed_from_u64(0x0FF1CE);

    // Correctness: honest prover across fresh requests.
    let accepted = timed("honest runs", || {
        let mut ok = 0;
        for _ in 0..honest_runs {
            let request = AttestationRequest::random(&mut rng);
            let (verdict, _) = run_session(&mut prover, &verifier, request).expect("honest run");
            ok += verdict.accepted as usize;
        }
        ok
    });
    row("honest prover accepted", "always", &format!("{accepted}/{honest_runs}"));

    // Soundness: single tampered word in the attested region's free data
    // space (tampering executed code would additionally trap the CPU).
    let tamper_at = (prover.layout().x0_cell - 10) as usize;
    prover.memory_mut()[tamper_at] ^= 0x8000_0000;
    let (verdict, _) = run_session(&mut prover, &verifier, AttestationRequest::random(&mut rng)).expect("run");
    row("tampered memory detected", "yes", if verdict.accepted { "NO" } else { "yes (response)" });
    prover.memory_mut()[tamper_at] ^= 0x8000_0000;

    // The attack matrix.
    let region = prover.expected_region();
    let request = AttestationRequest::random(&mut rng);

    let mc = timed("memory-copy attack", || {
        memory_copy_attack(enrolled.device_handle(0xBAD1), &verifier, &region, request).expect("attack run")
    });
    row("memory-copy attack", "caught by time bound", &format!("{}", mc));

    let oc = timed("overclock evasion", || {
        overclock_evasion_attack(enrolled.device_handle(0xBAD2), &verifier, &region, request, 4.0).expect("attack run")
    });
    row("memory-copy + 4x overclock", "caught by PUF", &format!("{}", oc));

    let honest_report = prover.attest(request).expect("report for proxy model");
    let px = proxy_attack(&verifier, &honest_report, channel);
    row("proxy/oracle attack", "caught by time bound", &format!("{}", px));

    // Impersonation: a different chip of the same design.
    let imposter = enroll(AluPufConfig::paper_32bit(), 0x5ED, 0).expect("supported width");
    let (mut imposter_prover, _, _) =
        provision(&imposter, params, clock, channel, 0xFEED, 1.10).expect("imposter provisioning");
    let (verdict, _) = run_session(&mut imposter_prover, &verifier, request).expect("imposter run");
    row(
        "impersonation (wrong chip)",
        "caught by PUF",
        if verdict.response_ok { "NOT DETECTED" } else { "yes (response)" },
    );

    assert_eq!(accepted, honest_runs, "correctness must hold");
    assert!(!mc.verdict.accepted && !mc.verdict.time_ok, "memory copy must break timing");
    assert!(!oc.verdict.accepted && !oc.verdict.response_ok, "overclock must corrupt the PUF");
    assert!(!px.verdict.accepted, "proxy must be too slow");
    assert!(!verdict.response_ok, "imposter must fail");
}
