//! §4.1 FPGA measurements: two 16-bit ALU PUF boards with PDL tuning.
//!
//! Paper (two Virtex-5 boards, 16-bit PUF): inter-chip HD 3.0/16 bits
//! (18.8 %) raw and 6.6/16 bits (41.3 %) obfuscated; intra-chip HD
//! 2.9/16 bits (18.6 %) — noisier than simulation due to environmental
//! fluctuation, but consistent with it.

use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign};
use pufatt_alupuf::fpga::FpgaBoard;
use pufatt_alupuf::stats::HdHistogram;
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("FPGA", "Two-board 16-bit prototype with PDL tuning (paper 4.1)");
    let challenges_n = sample_count(3_000, 100_000);
    const PDL_STEP_PS: f64 = 2.0;
    println!("  configuration: 2 boards, 64-stage PDLs ({PDL_STEP_PS} ps/step), {challenges_n} challenges");

    let design = AluPufDesign::new(AluPufConfig::fpga_16bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF9_6A);
    let sampler = ChipSampler::new();
    let chip_a = design.fabricate(&sampler, &mut rng);
    let chip_b = design.fabricate(&sampler, &mut rng);

    let mut board_a = FpgaBoard::new(&design, &chip_a, Environment::nominal(), PDL_STEP_PS);
    let mut board_b = FpgaBoard::new(&design, &chip_b, Environment::nominal(), PDL_STEP_PS);

    let (tune_a, tune_b) = timed("PDL tuning", || {
        let ta = board_a.tune(400, 16, 0.06, &mut rng);
        let tb = board_b.tune(400, 16, 0.06, &mut rng);
        (ta, tb)
    });
    row(
        "board A bias before -> after tuning",
        "-",
        &format!("{:.3} -> {:.3}", tune_a.bias_before, tune_a.bias_after),
    );
    row(
        "board B bias before -> after tuning",
        "-",
        &format!("{:.3} -> {:.3}", tune_b.bias_before, tune_b.bias_after),
    );

    let (inter_raw, inter_obf, intra) = timed("measurement", || {
        let mut inter_raw = HdHistogram::new(16);
        let mut inter_obf = HdHistogram::new(16);
        let mut intra = HdHistogram::new(16);
        let mut remaining = challenges_n;
        while remaining > 0 {
            let group: [Challenge; RESPONSES_PER_OUTPUT] = std::array::from_fn(|_| Challenge::random(&mut rng, 16));
            let ra: [u64; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| board_a.evaluate(group[j], &mut rng).bits());
            let rb: [u64; RESPONSES_PER_OUTPUT] = std::array::from_fn(|j| board_b.evaluate(group[j], &mut rng).bits());
            for j in 0..RESPONSES_PER_OUTPUT {
                inter_raw.record((ra[j] ^ rb[j]).count_ones() as usize);
                // Intra: board A evaluates the same challenge again.
                let again = board_a.evaluate(group[j], &mut rng).bits();
                intra.record((ra[j] ^ again).count_ones() as usize);
            }
            inter_obf.record((obfuscate(&ra, 16) ^ obfuscate(&rb, 16)).count_ones() as usize);
            remaining = remaining.saturating_sub(RESPONSES_PER_OUTPUT);
        }
        (inter_raw, inter_obf, intra)
    });

    row(
        "inter-chip HD, raw",
        "3.0 b (18.8%)",
        &format!("{:.1} b ({:.1}%)", inter_raw.mean_bits(), 100.0 * inter_raw.mean_fraction()),
    );
    row(
        "inter-chip HD, obfuscated",
        "6.6 b (41.3%)",
        &format!("{:.1} b ({:.1}%)", inter_obf.mean_bits(), 100.0 * inter_obf.mean_fraction()),
    );
    row(
        "intra-chip HD",
        "2.9 b (18.6%)",
        &format!("{:.1} b ({:.1}%)", intra.mean_bits(), 100.0 * intra.mean_fraction()),
    );

    assert!(inter_obf.mean_fraction() > inter_raw.mean_fraction(), "obfuscation must raise inter-chip HD");
    assert!(intra.mean_fraction() < inter_obf.mean_fraction(), "boards must remain distinguishable");
}
