//! Ablation: the paper's BCH[32,6,16] against alternative error-correcting
//! codes on the *measured* ALU PUF error process.
//!
//! Compares, at the same simulated device:
//!
//! * BCH[32,6,16] = RM(1,5), ML-decoded (the paper's choice),
//! * classical BCH(31, k, t) instances decoded with Berlekamp–Massey,
//! * the extended binary Golay code [24,12,8] (the classic mid-rate PUF
//!   key-generator choice), and
//! * repetition codes (the naive baseline).
//!
//! Metrics: helper bits leaked per response, guaranteed correction, and
//! the decoder-aware false-negative rate against the measured per-bit flip
//! probabilities — showing why the paper's code is the right point in the
//! trade space.

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_bench::{header, sample_count, timed};
use pufatt_ecc::analysis::FailureProfile;
use pufatt_ecc::bch::BchCode;
use pufatt_ecc::golay::GolayCode;
use pufatt_ecc::repetition::RepetitionCode;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::Decoder;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Candidate {
    name: &'static str,
    decoder: Box<dyn Decoder>,
    /// Number of device response bits the code protects per codeword.
    covered_bits: usize,
}

fn main() {
    header("ECC ablation", "Error-correction alternatives on the measured PUF error process");
    let challenges_n = sample_count(250, 5_000);
    let repeats = 25;

    // Measure per-bit flip probabilities of the 32-bit device.
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xEC0A);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());

    let mut flip_profiles: Vec<Vec<f64>> = Vec::with_capacity(challenges_n);
    timed("device sampling", || {
        for _ in 0..challenges_n {
            let ch = Challenge::random(&mut rng, 32);
            let reference = emulator.emulate(ch);
            let mut flips = [0u32; 32];
            for _ in 0..repeats {
                let diff = instance.evaluate(ch, &mut rng).bits() ^ reference.bits();
                for (b, f) in flips.iter_mut().enumerate() {
                    *f += ((diff >> b) & 1) as u32;
                }
            }
            flip_profiles.push(flips.iter().map(|&f| f as f64 / repeats as f64).collect());
        }
    });

    let candidates: Vec<Candidate> = vec![
        Candidate {
            name: "BCH[32,6,16] (paper, ML)",
            decoder: Box::new(ReedMuller1::bch_32_6_16()),
            covered_bits: 32,
        },
        Candidate {
            name: "BCH(31,6,t=7) (BM)",
            decoder: Box::new(BchCode::new(5, 7)),
            covered_bits: 31,
        },
        Candidate {
            name: "BCH(31,16,t=3) (BM)",
            decoder: Box::new(BchCode::new(5, 3)),
            covered_bits: 31,
        },
        Candidate {
            name: "Golay [24,12,8] (ML)",
            decoder: Box::new(GolayCode::new()),
            covered_bits: 24,
        },
        Candidate {
            name: "repetition r=3 (k=10)",
            decoder: Box::new(RepetitionCode::new(3, 10)),
            covered_bits: 30,
        },
        Candidate {
            name: "repetition r=5 (k=6)",
            decoder: Box::new(RepetitionCode::new(5, 6)),
            covered_bits: 30,
        },
    ];

    println!("\n  {:<26} {:>6} {:>7} {:>9} {:>12}", "code", "n", "helper", "key bits", "FNR");
    let mut paper_fnr = f64::NAN;
    let mut rep_fnr = f64::NAN;
    for cand in &candidates {
        let code = cand.decoder.code();
        let profile = FailureProfile::estimate(cand.decoder.as_ref(), 1_500, &mut rng);
        // Decoder-aware FNR over measured (truncated to covered bits) flip
        // probabilities, averaged over challenges.
        let fnr: f64 = flip_profiles
            .iter()
            .map(|p| profile.false_negative_rate(&p[..cand.covered_bits.min(code.n())]))
            .sum::<f64>()
            / flip_profiles.len() as f64;
        println!("  {:<26} {:>6} {:>7} {:>9} {:>12.2e}", cand.name, code.n(), code.syndrome_bits(), code.k(), fnr);
        if cand.name.starts_with("BCH[32") {
            paper_fnr = fnr;
        }
        if cand.name.starts_with("repetition r=3") {
            rep_fnr = fnr;
        }
    }

    println!();
    println!("  Reading: the paper's code leaks 26 helper bits and survives the PUF's");
    println!("  concentrated errors; the r=3 repetition baseline leaks 20 helper bits");
    println!("  but its per-group majority collapses once any group sees 2 flips.");

    assert!(paper_fnr < rep_fnr, "the paper's code must beat 3x repetition: {paper_fnr} vs {rep_fnr}");
}
