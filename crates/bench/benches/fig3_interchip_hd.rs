//! Figure 3: inter-chip Hamming distance of the 32-bit ALU PUF,
//! raw and obfuscated.
//!
//! Paper: mean inter-chip HD 11.48/32 bits (35.9 %) raw and
//! 14.28/32 bits (44.6 %) after XOR obfuscation, over 1 000 000 challenges
//! (ideal: 16 bits, 50 %). The histogram shape (a near-binomial bump left
//! of 16 that shifts right after obfuscation) is reproduced below.

use pufatt::obfuscate::{obfuscate, RESPONSES_PER_OUTPUT};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::stats::HdHistogram;
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Figure 3", "Inter-chip HD of the ALU PUF (raw and obfuscated)");
    let challenges_n = sample_count(4_000, 1_000_000);
    let chips_n = 6;
    println!("  configuration: 32-bit ALU PUF, {chips_n} chips, {challenges_n} challenges per pair statistic");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF163);
    let chips = design.fabricate_many(&ChipSampler::new(), chips_n, &mut rng);
    let instances: Vec<PufInstance<'_>> = chips
        .iter()
        .map(|c| PufInstance::new(&design, c, Environment::nominal()))
        .collect();

    let (raw_hist, obf_hist) = timed("simulation", || {
        let mut raw_hist = HdHistogram::new(32);
        let mut obf_hist = HdHistogram::new(32);
        // Raw statistic: same challenge on every chip, all chip pairs.
        let mut remaining = challenges_n;
        while remaining > 0 {
            // One obfuscation group of 8 challenges doubles as 8 raw
            // challenges, so both statistics consume the same budget.
            let group: [Challenge; RESPONSES_PER_OUTPUT] = std::array::from_fn(|_| Challenge::random(&mut rng, 32));
            let responses: Vec<[u64; RESPONSES_PER_OUTPUT]> = instances
                .iter()
                .map(|inst| std::array::from_fn(|j| inst.evaluate(group[j], &mut rng).bits()))
                .collect();
            for a in 0..responses.len() {
                for b in a + 1..responses.len() {
                    for (ra, rb) in responses[a].iter().zip(&responses[b]) {
                        raw_hist.record((ra ^ rb).count_ones() as usize);
                    }
                    let za = obfuscate(&responses[a], 32);
                    let zb = obfuscate(&responses[b], 32);
                    obf_hist.record((za ^ zb).count_ones() as usize);
                }
            }
            remaining = remaining.saturating_sub(RESPONSES_PER_OUTPUT);
        }
        (raw_hist, obf_hist)
    });

    row(
        "mean inter-chip HD, raw",
        "11.48 b (35.9%)",
        &format!("{:.2} b ({:.1}%)", raw_hist.mean_bits(), 100.0 * raw_hist.mean_fraction()),
    );
    row(
        "mean inter-chip HD, obfuscated",
        "14.28 b (44.6%)",
        &format!("{:.2} b ({:.1}%)", obf_hist.mean_bits(), 100.0 * obf_hist.mean_fraction()),
    );
    row("ideal", "16 b (50%)", "-");

    println!("\nraw response histogram:\n{raw_hist}");
    println!("\nobfuscated output histogram:\n{obf_hist}");

    assert!(obf_hist.mean_fraction() > raw_hist.mean_fraction(), "obfuscation must improve unpredictability");
}
