//! Ablation: ALU PUF quality across adder microarchitectures.
//!
//! The paper builds its PUF on ripple-carry adders; this experiment asks
//! how much PUF quality a faster datapath gives up. Carry-lookahead and
//! carry-select adders shorten and balance the racing paths, which
//! changes the amount of manufacturing variation each output bit
//! accumulates — a question the paper motivates ("all modern processors
//! contain redundancies in their ALU structure") but does not measure.

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AdderKind, AluPufConfig, AluPufDesign, ArbiterConfig, PufInstance};
use pufatt_alupuf::stats::HdHistogram;
use pufatt_bench::{header, sample_count, timed};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Adder ablation", "PUF quality of ripple-carry vs lookahead vs carry-select ALUs");
    let challenges_n = sample_count(800, 20_000);
    let chips_n = 4;
    println!("  configuration: 32-bit PUFs, {chips_n} chips, {challenges_n} challenges per metric");

    println!(
        "\n  {:<16} {:>7} {:>12} {:>14} {:>14} {:>12}",
        "adder", "gates", "T_ALU (ps)", "inter-chip HD", "intra-chip HD", "min cycle"
    );

    let mut results = Vec::new();
    for kind in [
        AdderKind::RippleCarry,
        AdderKind::CarryLookahead,
        AdderKind::CarrySelect,
    ] {
        let config = AluPufConfig {
            width: 32,
            adder: kind,
            arbiter: ArbiterConfig::asic(),
            design_seed: 0xAB1A,
        };
        let design = AluPufDesign::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(0xADDE);
        let chips = design.fabricate_many(&ChipSampler::new(), chips_n, &mut rng);
        let instances: Vec<PufInstance<'_>> = chips
            .iter()
            .map(|c| PufInstance::new(&design, c, Environment::nominal()))
            .collect();

        let (inter, intra, t_alu) = timed(&format!("{kind:?}"), || {
            let mut inter = HdHistogram::new(32);
            let mut intra = HdHistogram::new(32);
            for _ in 0..challenges_n {
                let ch = Challenge::random(&mut rng, 32);
                let responses: Vec<_> = instances.iter().map(|i| i.evaluate(ch, &mut rng)).collect();
                for a in 0..responses.len() {
                    for b in a + 1..responses.len() {
                        inter.record_pair(responses[a], responses[b]);
                    }
                }
                intra.record_pair(responses[0], instances[0].evaluate(ch, &mut rng));
            }
            (inter, intra, instances[0].alu_critical_path_ps())
        });

        println!(
            "  {:<16} {:>7} {:>12.0} {:>13.1}% {:>13.1}% {:>9.0} ps",
            format!("{kind:?}"),
            design.netlist().gate_count(),
            t_alu,
            100.0 * inter.mean_fraction(),
            100.0 * intra.mean_fraction(),
            instances[0].min_reliable_cycle_ps()
        );
        results.push((kind, inter.mean_fraction(), intra.mean_fraction(), t_alu));
    }

    println!();
    println!("  Reading: the lookahead/select structures are ~2.3x faster AND show no");
    println!("  uniqueness loss (their wider two-level logic puts MORE independent gates");
    println!("  in each output cone, offsetting the shorter paths). The ripple-carry");
    println!("  choice therefore buys two other things: near-zero hardware overhead");
    println!("  (reusing the ALU as-is) and a long data-dependent carry chain — which");
    println!("  is exactly what gives the overclocking defence its full-carry canary.");

    // Structural expectations.
    let rca = results.iter().find(|r| r.0 == AdderKind::RippleCarry).expect("rca measured");
    let cla = results.iter().find(|r| r.0 == AdderKind::CarryLookahead).expect("cla measured");
    assert!(cla.3 < rca.3, "lookahead must be faster than ripple");
    for (kind, inter, intra, _) in &results {
        assert!(inter > intra, "{kind:?}: inter ({inter}) must exceed intra ({intra})");
    }
}
