//! §4.2 overclocking-attack resiliency: sweep of the adversary's clock
//! factor.
//!
//! The adversary runs the memory-copy checksum (extra cycles per round) and
//! overclocks to stay within δ. The paper's defence: the ALU PUF shares the
//! clock network, so `C_A/C_SWAT < F_A/F_base` forces setup-time violations
//! and wrong PUF responses. The sweep shows the two thresholds —
//!
//! * the clock factor where the attack starts *meeting the time bound*, and
//! * the factor where PUF corruption starts *breaking the response* —
//!
//! and whether a gap exists between them (with the error-correcting code
//! absorbing mild corruption, the response check engages slightly later
//! than a naive reading of the paper suggests; the region between the
//! thresholds is reported honestly).

use pufatt::adversary::build_malicious_prover;
use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::device::AluPufConfig;
use pufatt_bench::{header, row, sample_count};
use pufatt_swatt::checksum::SwattParams;

fn main() {
    header("Overclocking", "Attack clock-factor sweep (paper 4.2)");
    let repeats = sample_count(2, 10);
    let params = SwattParams { region_bits: 9, rounds: 2_048, puf_interval: 16 };
    let channel = Channel::sensor_link();

    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x0C10, 0).expect("supported width");
    let clock = puf_limited_clock(&enrolled, 1.10, 128, 0xCAFE);
    let (prover, verifier, honest_cycles) =
        provision(&enrolled, params, clock, channel, 0xFACE, 1.10).expect("provisioning");
    let region = prover.expected_region();
    println!(
        "  F_base = {:.0} MHz (PUF-limited), honest cycles = {}, delta = {:.3} ms, {repeats} run(s) per point",
        clock.frequency_mhz,
        honest_cycles,
        verifier.delta_s * 1e3
    );

    println!("\n  {:>8} {:>12} {:>12} {:>12} {:>10}", "factor", "time ok", "response ok", "accepted", "cycles");
    let factors = [1.0, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0, 4.0, 5.0];
    let mut first_time_ok = None;
    let mut last_response_ok = None;
    for &factor in &factors {
        let mut time_ok = 0;
        let mut resp_ok = 0;
        let mut accepted = 0;
        let mut cycles = 0;
        for r in 0..repeats {
            let puf = enrolled.device_handle(0xBAD0 + r as u64);
            let mut attacker = build_malicious_prover(puf, params, &region, clock, factor).expect("attacker");
            let request = AttestationRequest { x0: 0x1111 + r as u32, r0: 0x2222 + r as u32 };
            let (verdict, report) = run_session(&mut attacker, &verifier, request).expect("attack run");
            time_ok += verdict.time_ok as usize;
            resp_ok += verdict.response_ok as usize;
            accepted += verdict.accepted as usize;
            cycles = report.cycles;
        }
        println!(
            "  {factor:>8.1} {:>9}/{repeats} {:>9}/{repeats} {:>9}/{repeats} {cycles:>10}",
            time_ok, resp_ok, accepted
        );
        if time_ok * 2 > repeats && first_time_ok.is_none() {
            first_time_ok = Some(factor);
        }
        if resp_ok * 2 > repeats {
            last_response_ok = Some(factor);
        }
    }

    // Honest baseline at F_base for reference.
    let honest_factor_needed = first_time_ok.unwrap_or(f64::NAN);
    row("overclock needed to beat delta (C_A/C_SWAT)", "> 1", &format!("{honest_factor_needed:.1}x"));
    row(
        "highest factor with valid PUF responses",
        "none above F_base window",
        &format!("{:.1}x", last_response_ok.unwrap_or(f64::NAN)),
    );

    // The defence's teeth: at a deep overclock the response must break.
    let puf = enrolled.device_handle(0xDEAD);
    let mut deep = build_malicious_prover(puf, params, &region, clock, 5.0).expect("attacker");
    let (verdict, _) = run_session(&mut deep, &verifier, AttestationRequest { x0: 9, r0: 9 }).expect("run");
    assert!(verdict.time_ok, "5x overclock must beat the time bound");
    assert!(!verdict.response_ok, "5x overclock must corrupt the PUF");
}
