//! Attestation-as-a-service throughput: the socket server under load.
//!
//! Not a paper figure — a transport benchmark for the `pufatt-transport`
//! subsystem. A server fronting the fleet engine listens on a Unix-domain
//! socket; the load generator drives it with concurrent simulated devices
//! (connections × window devices in flight at once) and reports
//! sessions/sec plus latency percentiles per connection count.
//!
//! The headline row holds ≥10 000 concurrent devices in flight — every
//! device enrolled, holding an open attestation ticket, and pipelining
//! its sessions — which exercises the per-shard dispatch pools, the
//! bounded-queue backpressure (`Busy` + retry), and the graceful drain in
//! one sweep.
//!
//! Results are printed and written to `BENCH_transport.json` at the
//! workspace root for CI artifact upload. `--test` (as passed by
//! `cargo test` to harness=false benches) or `PUFATT_SMOKE=1` selects a
//! small workload.

use pufatt_bench::{full_scale, header, timed};
use pufatt_fleet::campaign::small_test_config;
use pufatt_transport::loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
use pufatt_transport::server::{Server, ServerConfig};
use pufatt_transport::Endpoint;

struct Sweep {
    connections: usize,
    window: usize,
}

fn run_sweep(sock_dir: &std::path::Path, sweep: &Sweep, sessions: u32) -> (LoadgenReport, u64) {
    let concurrent = (sweep.connections * sweep.window) as u64;
    // One live device per concurrent slot: the whole fleet is in flight
    // at once, so "concurrent devices" is not just a window product.
    let devices = concurrent as u32;
    let campaign = small_test_config(devices as usize, 4, 0x10AD ^ concurrent);
    let sock = sock_dir.join(format!("load-{}.sock", sweep.connections));
    let server = Server::start(
        &Endpoint::Uds(sock),
        campaign,
        ServerConfig {
            rate_limit_per_s: 0.0,
            max_connections: sweep.connections + 8,
            queue_depth: 512,
            read_timeout_ms: 120_000,
            write_timeout_ms: 120_000,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let report = run_loadgen(&LoadgenConfig {
        endpoint: server.endpoint().clone(),
        devices,
        sessions_per_device: sessions,
        connections: sweep.connections,
        window: sweep.window,
        read_timeout_ms: 120_000,
        write_timeout_ms: 120_000,
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");
    let server_report = server.finish();
    assert_eq!(report.devices_errored, 0, "no device may be stranded by transport errors");
    assert_eq!(report.devices_completed, u64::from(devices), "every device completes its schedule");
    assert_eq!(server_report.panicked_jobs, 0);
    assert_eq!(server_report.transport.sessions_aborted, 0, "clean loadgen run leaves no torn sessions");
    (report, concurrent)
}

fn main() {
    let smoke =
        std::env::args().any(|a| a == "--test") || std::env::var("PUFATT_SMOKE").map(|v| v == "1").unwrap_or(false);
    // connections × window = concurrent devices in flight.
    let sweeps: Vec<Sweep> = if smoke {
        vec![
            Sweep { connections: 2, window: 8 },
            Sweep { connections: 4, window: 16 },
        ]
    } else if full_scale() {
        vec![
            Sweep { connections: 4, window: 64 },
            Sweep { connections: 16, window: 256 },
            Sweep { connections: 64, window: 256 },
        ]
    } else {
        vec![
            Sweep { connections: 4, window: 64 },
            Sweep { connections: 16, window: 256 },
            Sweep { connections: 40, window: 256 },
        ]
    };
    let sessions = 2u32;

    header("TRANSPORT", "Attestation as a service: sessions/sec vs connection count (UDS)");
    let sock_dir = std::env::temp_dir().join(format!("pufatt-bench-transport-{}", std::process::id()));
    std::fs::create_dir_all(&sock_dir).expect("socket dir");

    let mut rows: Vec<String> = Vec::new();
    let mut peak_concurrent = 0u64;
    for sweep in &sweeps {
        let label = format!("{} conns x {} window", sweep.connections, sweep.window);
        let (report, concurrent) = timed(&label, || run_sweep(&sock_dir, sweep, sessions));
        peak_concurrent = peak_concurrent.max(concurrent);
        println!(
            "    {:>3} conns, {:>5} concurrent: {:>8.0} sessions/s, p50 {:>6} us, p99 {:>7} us ({} busy retries)",
            sweep.connections, concurrent, report.sessions_per_s, report.p50_us, report.p99_us, report.busy_retries
        );
        rows.push(format!("    {}", report.json_object(&format!("uds_{}conns", sweep.connections), concurrent)));
    }
    std::fs::remove_dir_all(&sock_dir).ok();

    if !smoke {
        assert!(
            peak_concurrent >= 10_000,
            "headline sweep must hold >= 10000 concurrent devices, got {peak_concurrent}"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"transport_load\",\n  \"smoke\": {},\n  \"sessions_per_device\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        sessions,
        rows.join(",\n")
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    std::fs::write(out_path, json).expect("write BENCH_transport.json");
    println!("  wrote {out_path}");
}
