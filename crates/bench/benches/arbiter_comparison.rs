//! The paper's comparison anchors: arbiter and feed-forward arbiter PUFs.
//!
//! §4.1 benchmarks the ALU PUF against numbers quoted from the literature:
//! "the Feedforward Arbiter PUF (38 % inter-chip HD)" and "(9.8 %)" intra.
//! This experiment regenerates those anchors from the additive delay model
//! and reruns the classic modeling attack across all three designs:
//!
//! * plain arbiter PUF — near-ideal uniqueness, trivially learnable with
//!   parity features (the Rührmair result);
//! * feed-forward arbiter — hardened against linear modeling, noisier;
//! * the ALU PUF — comparable statistics from *reused* hardware, with the
//!   XOR obfuscation carrying the modeling resistance.

use pufatt_alupuf::arbiter::{parity_features, ArbiterPuf, FeedForwardArbiterPuf};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_modeling::lr::{Logistic, TrainConfig};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const STAGES: usize = 64;

/// Paired/repeat evaluation closure: (chip A, chip B, chip A again).
type PairEval = Box<dyn FnMut(&mut ChaCha8Rng) -> (bool, bool, bool)>;
/// A noisy CRP oracle.
type Oracle = Box<dyn FnMut(u128, &mut ChaCha8Rng) -> bool>;

fn main() {
    header("Arbiter comparison", "ALU PUF vs the classic arbiter designs (paper 4.1 anchors)");
    let challenges_n = sample_count(2_000, 50_000);
    let train_n = sample_count(600, 10_000);
    let mut rng = ChaCha8Rng::seed_from_u64(0xA2B);
    println!("  configuration: {STAGES}-stage arbiters, {challenges_n} challenges, {train_n} training CRPs");

    // --- HD statistics ----------------------------------------------------
    let stat = |mut eval_pair: PairEval, rng: &mut ChaCha8Rng| {
        // Returns (inter-different, intra-different) fractions.
        let mut inter = 0u32;
        let mut intra = 0u32;
        for _ in 0..challenges_n {
            let (a, b, a_again) = eval_pair(rng);
            inter += (a != b) as u32;
            intra += (a != a_again) as u32;
        }
        (inter as f64 / challenges_n as f64, intra as f64 / challenges_n as f64)
    };

    let (plain_inter, plain_intra) = timed("arbiter", || {
        let a = ArbiterPuf::sample(STAGES, 5.0, 6.0, &mut rng);
        let b = ArbiterPuf::sample(STAGES, 5.0, 6.0, &mut rng);
        stat(
            Box::new(move |r| {
                let c = r.gen::<u64>() as u128;
                (a.evaluate(c, r), b.evaluate(c, r), a.evaluate(c, r))
            }),
            &mut rng,
        )
    });
    let (ff_inter, ff_intra) = timed("feed-forward", || {
        let a = FeedForwardArbiterPuf::sample(STAGES, 2, 5.0, 6.0, &mut rng);
        let b = FeedForwardArbiterPuf::sample(STAGES, 2, 5.0, 6.0, &mut rng);
        stat(
            Box::new(move |r| {
                let c = r.gen::<u64>() as u128;
                (a.evaluate(c, r), b.evaluate(c, r), a.evaluate(c, r))
            }),
            &mut rng,
        )
    });

    // ALU PUF per-bit statistics at the same scale (bit-level HD fractions).
    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let chips = design.fabricate_many(&ChipSampler::new(), 2, &mut rng);
    let (alu_inter, alu_intra) = timed("ALU PUF", || {
        let i0 = PufInstance::new(&design, &chips[0], Environment::nominal());
        let i1 = PufInstance::new(&design, &chips[1], Environment::nominal());
        let mut inter = 0u64;
        let mut intra = 0u64;
        let n = challenges_n / 32 + 1;
        for _ in 0..n {
            let ch = Challenge::random(&mut rng, 32);
            let a = i0.evaluate(ch, &mut rng);
            inter += a.hamming_distance(i1.evaluate(ch, &mut rng)) as u64;
            intra += a.hamming_distance(i0.evaluate(ch, &mut rng)) as u64;
        }
        ((inter as f64) / (n as f64 * 32.0), (intra as f64) / (n as f64 * 32.0))
    });

    println!();
    row(
        "arbiter PUF inter / intra",
        "~46% / ~10% [17]",
        &format!("{:.1}% / {:.1}%", 100.0 * plain_inter, 100.0 * plain_intra),
    );
    row(
        "feed-forward inter / intra",
        "38% / 9.8% [17]",
        &format!("{:.1}% / {:.1}%", 100.0 * ff_inter, 100.0 * ff_intra),
    );
    row(
        "ALU PUF inter / intra",
        "35.9% / 11.3% (paper)",
        &format!("{:.1}% / {:.1}%", 100.0 * alu_inter, 100.0 * alu_intra),
    );

    // --- The classic modeling attack --------------------------------------
    let attack = |mut oracle: Oracle, rng: &mut ChaCha8Rng| -> f64 {
        let collect = |n: usize, oracle: &mut dyn FnMut(u128, &mut ChaCha8Rng) -> bool, rng: &mut ChaCha8Rng| {
            (0..n)
                .map(|_| {
                    let c = rng.gen::<u64>() as u128;
                    (parity_features(c, STAGES), oracle(c, rng))
                })
                .collect::<Vec<_>>()
        };
        let train = collect(train_n, &mut *oracle, rng);
        let test = collect(train_n / 3, &mut *oracle, rng);
        let mut model = Logistic::new(STAGES + 1);
        model.fit(&train, &TrainConfig { epochs: 60, ..TrainConfig::default() }, rng);
        model.accuracy(&test)
    };

    let plain = ArbiterPuf::sample(STAGES, 5.0, 6.0, &mut rng);
    let acc_plain = timed("attack: arbiter", || attack(Box::new(move |c, r| plain.evaluate(c, r)), &mut rng));
    let ff = FeedForwardArbiterPuf::sample(STAGES, 2, 5.0, 6.0, &mut rng);
    let acc_ff = timed("attack: feed-forward", || attack(Box::new(move |c, r| ff.evaluate(c, r)), &mut rng));

    println!();
    row("LR+parity attack on arbiter PUF", ">95% [27]", &format!("{:.1}%", 100.0 * acc_plain));
    row("LR+parity attack on feed-forward", "degraded [27]", &format!("{:.1}%", 100.0 * acc_ff));
    println!();
    println!("  Reading: the plain arbiter PUF collapses to a linear threshold in the");
    println!("  parity basis (the Ruhrmair attack); feed-forward loops break linearity");
    println!("  at a reliability cost — the same trade PUFatt resolves differently,");
    println!("  with the XOR obfuscation network on top of an unmodified datapath.");

    assert!(acc_plain > 0.85, "the classic attack must crack the plain arbiter: {acc_plain}");
    assert!(acc_ff < acc_plain - 0.05, "feed-forward must resist better: {acc_ff} vs {acc_plain}");
    assert!((0.30..0.55).contains(&ff_inter), "FF inter out of band: {ff_inter}");
    assert!(ff_intra > plain_intra, "FF must be noisier");
}
