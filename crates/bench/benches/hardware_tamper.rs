//! §3 trust model: "any attempt … to modify the hardware … changes the
//! challenge/response behavior of the PUF".
//!
//! Sweeps three hardware-modification classes over their magnitude and
//! reports (a) the raw response divergence the verifier's emulator sees
//! and (b) whether a full attestation on the tampered device still passes.
//! The intact device's own noise floor calibrates what "changed" means.

use pufatt::enroll::enroll;
use pufatt::protocol::{provision, puf_limited_clock, run_session, AttestationRequest, Channel};
use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_alupuf::tamper::Tamper;
use pufatt_bench::{header, sample_count, timed};
use pufatt_silicon::env::Environment;
use pufatt_swatt::checksum::SwattParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Hardware tamper", "Response divergence under hardware modification (trust model, 3)");
    let challenges_n = sample_count(150, 2_000);
    let enrolled = enroll(AluPufConfig::paper_32bit(), 0x7A3, 0).expect("supported width");
    let design = enrolled.design();
    let emulator = PufEmulator::enroll(design, enrolled.chip(), Environment::nominal());
    let gate_count = design.netlist().gate_count();
    let mut rng = ChaCha8Rng::seed_from_u64(0x7A4);

    let divergence = |chip: &pufatt_alupuf::device::PufChip, rng: &mut ChaCha8Rng| -> f64 {
        let instance = PufInstance::new(design, chip, Environment::nominal());
        let mut hd = 0u32;
        for _ in 0..challenges_n {
            let ch = Challenge::random(rng, 32);
            hd += instance.evaluate_voted(ch, 5, rng).hamming_distance(emulator.emulate(ch));
        }
        hd as f64 / (challenges_n as f64 * 32.0)
    };

    let baseline = timed("noise floor", || divergence(enrolled.chip(), &mut rng));
    println!("  intact device vs its emulator: {:.1}% (the noise floor)\n", baseline * 100.0);

    println!("  {:<44} {:>12} {:>10}", "modification", "divergence", "visible?");
    let cases: Vec<(String, Tamper)> = vec![
        ("probe load 2% on every 5th gate".into(), Tamper::ProbeLoad { stride: 5, extra_fraction: 0.02 }),
        ("probe load 5% on every 3rd gate".into(), Tamper::ProbeLoad { stride: 3, extra_fraction: 0.05 }),
        ("probe load 10% on every gate".into(), Tamper::ProbeLoad { stride: 1, extra_fraction: 0.10 }),
        (
            "detour +2 ps through ALU0's first slices".into(),
            Tamper::RerouteDetour { from: 0, to: 40, extra_ps: 2.0 },
        ),
        (
            "detour +6 ps through ALU0's first slices".into(),
            Tamper::RerouteDetour { from: 0, to: 40, extra_ps: 6.0 },
        ),
        (
            "voltage island -20 mV over half the die".into(),
            Tamper::VoltageIsland { from: 0, to: gate_count / 2, delta_vth_v: -0.02 },
        ),
    ];
    let mut worst_visible = 0.0f64;
    for (name, tamper) in &cases {
        let chip = tamper.apply(design, enrolled.chip());
        let d = divergence(&chip, &mut rng);
        let visible = d > baseline + 0.02;
        println!("  {:<44} {:>11.1}% {:>10}", name, d * 100.0, if visible { "yes" } else { "NO" });
        if visible {
            worst_visible = worst_visible.max(d);
        }
    }

    // End-to-end: run full attestations on a mildly probed device and on a
    // capability-adding modification (the voltage island that would speed
    // up an attached core).
    let params = SwattParams { region_bits: 9, rounds: 1024, puf_interval: 16 };
    let clock = puf_limited_clock(&enrolled, 1.10, 96, 0x7A5);
    let (_, verifier, _) =
        provision(&enrolled, params, clock, Channel::sensor_link(), 0x7A6, 1.10).expect("provisioning");
    let attest_with = |tamper: &Tamper, seed: u64| {
        let chip = std::sync::Arc::new(tamper.apply(design, enrolled.chip()));
        let device =
            pufatt::DevicePuf::new(design.clone(), chip, Environment::nominal(), seed).expect("supported width");
        let mut prover = pufatt::ProverDevice::new(
            pufatt::SharedDevicePuf::new(device),
            params,
            &pufatt_swatt::codegen::CodegenOptions::default(),
            clock,
        )
        .expect("prover");
        run_session(&mut prover, &verifier, AttestationRequest { x0: 5, r0: 6 })
            .expect("session")
            .0
    };
    let probed = attest_with(&Tamper::ProbeLoad { stride: 3, extra_fraction: 0.05 }, 0x7A7);
    let islanded = attest_with(&Tamper::VoltageIsland { from: 0, to: gate_count / 2, delta_vth_v: -0.02 }, 0x7A8);
    println!("\n  attestation, mildly probed device:     {probed}");
    println!("  attestation, voltage-island device:    {islanded}");
    println!();
    println!("  Finding: a light passive probe shifts responses (visible above the");
    println!("  noise floor) yet can stay inside the error-correcting budget — the");
    println!("  ECC that makes the PUF usable also masks the mildest tampering. Any");
    println!("  modification big enough to add capability (detour, voltage island)");
    println!("  pushes past the budget and attestation rejects.");

    assert!(!islanded.response_ok, "capability-adding tampering must break attestation");
    assert!(worst_visible > baseline, "at least one modification must be visible");
}
