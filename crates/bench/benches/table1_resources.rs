//! Table 1: FPGA implementation cost of the 16-bit ALU PUF prototype
//! (Virtex-5 XC5VLX110T).
//!
//! The paper's point: the ALU PUF itself is tiny (94 LUTs); the bulk of the
//! prototype is FPGA-only support logic — programmable delay lines and the
//! SIRC data-collection harness — that an ASIC would not carry. The
//! structural estimator reproduces each row from the design's counts.

use pufatt_alupuf::resources::ResourceEstimator;
use pufatt_bench::{header, row};

fn main() {
    header("Table 1", "FPGA implementation of the 16-bit ALU PUF prototype");
    let estimator = ResourceEstimator::paper_prototype();

    println!(
        "  {:<24} {:>6} {:>6}   {:>6} {:>6}   {:>5} {:>5}   {:>5} {:>5}   {:>5} {:>5}",
        "component", "LUTs", "(est)", "Regs", "(est)", "XORs", "(est)", "BRAM", "(est)", "FIFO", "(est)"
    );
    for r in estimator.table1() {
        let p = r.paper.expect("prototype rows carry paper values");
        println!(
            "  {:<24} {:>6} {:>6}   {:>6} {:>6}   {:>5} {:>5}   {:>5} {:>5}   {:>5} {:>5}",
            r.component,
            p.luts,
            r.estimated.luts,
            p.registers,
            r.estimated.registers,
            p.xors,
            r.estimated.xors,
            p.bram,
            r.estimated.bram,
            p.fifo,
            r.estimated.fifo
        );
    }

    let total = estimator.puf_total();
    println!();
    row("PUF-specific total (no SIRC)", "-", &format!("{} LUTs / {} FFs", total.luts, total.registers));
    let alu = estimator.alu_puf();
    row(
        "ALU PUF share of PUF-specific LUTs",
        "small",
        &format!("{:.1}%", 100.0 * alu.luts as f64 / total.luts as f64),
    );

    // Scaling view: what a 32-bit deployment would cost.
    let w32 = ResourceEstimator { width: 32, ..estimator };
    let t32 = w32.alu_puf();
    row("32-bit ALU PUF (scaling estimate)", "-", &format!("{} LUTs / {} FFs", t32.luts, t32.registers));

    assert!(alu.luts * 10 < total.luts, "the ALU PUF must be a small fraction of the prototype");
}
