//! Figure 4: intra-chip Hamming distance of the raw 32-bit ALU PUF under
//! voltage variation (90–110 % V_dd), temperature variation (−20 °C to
//! +120 °C) and arbiter metastability.
//!
//! Paper: the average intra-chip HD over all cases is 3.62/32 bits
//! (11.3 %); the symmetric layout makes voltage/temperature corners barely
//! worse than pure metastability (ideal: 0 bits).

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::stats::HdHistogram;
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    header("Figure 4", "Intra-chip HD under voltage, temperature and metastability");
    let challenges_n = sample_count(1_500, 1_000_000);
    println!("  configuration: 32-bit ALU PUF, one chip, {challenges_n} challenges per condition");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF164);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let nominal = PufInstance::new(&design, &chip, Environment::nominal());

    let cases: Vec<(&str, Environment)> = vec![
        ("metastability (nominal vs nominal)", Environment::nominal()),
        ("voltage 90% Vdd", Environment::with_vdd(0.90)),
        ("voltage 95% Vdd", Environment::with_vdd(0.95)),
        ("voltage 105% Vdd", Environment::with_vdd(1.05)),
        ("voltage 110% Vdd", Environment::with_vdd(1.10)),
        ("temperature -20C", Environment::with_temp(-20.0)),
        ("temperature +60C", Environment::with_temp(60.0)),
        ("temperature +120C", Environment::with_temp(120.0)),
    ];

    let mut overall = HdHistogram::new(32);
    let mut per_case = Vec::new();
    timed("simulation", || {
        for (name, env) in &cases {
            let corner = PufInstance::new(&design, &chip, *env);
            let mut hist = HdHistogram::new(32);
            for _ in 0..challenges_n {
                let ch = Challenge::random(&mut rng, 32);
                let reference = nominal.evaluate(ch, &mut rng);
                hist.record_pair(reference, corner.evaluate(ch, &mut rng));
            }
            overall.merge(&hist);
            per_case.push((*name, hist));
        }
    });

    for (name, hist) in &per_case {
        row(name, "-", &format!("{:.2} b ({:.1}%)", hist.mean_bits(), 100.0 * hist.mean_fraction()));
    }
    row(
        "average intra-chip HD (all cases)",
        "3.62 b (11.3%)",
        &format!("{:.2} b ({:.1}%)", overall.mean_bits(), 100.0 * overall.mean_fraction()),
    );
    row("ideal", "0 b (0%)", "-");

    println!("\npooled intra-chip histogram:\n{overall}");

    // Robustness sanity: the worst corner must stay well below the
    // inter-chip level (~36 %).
    let worst = per_case.iter().map(|(_, h)| h.mean_fraction()).fold(0.0, f64::max);
    assert!(worst < 0.25, "intra-chip HD out of the paper's regime: {worst}");
}
