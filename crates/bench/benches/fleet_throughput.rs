//! Fleet engine: session throughput vs. worker count.
//!
//! Not a paper figure — a scheduler benchmark for the `pufatt-fleet`
//! subsystem. One campaign (same seed, same devices, same sessions) is
//! run at increasing worker counts; because all session time is
//! simulated, every run produces identical accept/reject totals, and the
//! only thing that changes is wall-clock throughput. The sweep therefore
//! shows the worker pool's scaling curve with the verification work as
//! the payload.

use pufatt_bench::{full_scale, header, timed};
use pufatt_fleet::{run_campaign, small_test_config};

fn main() {
    header("Fleet", "Attestation session throughput vs. worker count (pufatt-fleet scheduler)");
    let devices = if full_scale() { 256 } else { 64 };
    let workers_sweep: &[usize] = if full_scale() { &[1, 2, 4, 8, 16] } else { &[1, 2, 4] };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("  {devices} devices x 4 sessions per run; {cores} core(s) available (speedup is bounded by cores)");

    let mut baseline: Option<(u64, u64)> = None;
    let mut single_worker_rate = 0.0;
    for &workers in workers_sweep {
        let mut cfg = small_test_config(devices, workers, 0xF1EE7);
        cfg.sessions_per_device = 4;
        let report = timed(&format!("{workers:>2} workers"), || run_campaign(&cfg).expect("campaign"));
        let snap = &report.snapshot;
        let totals = (snap.sessions_accepted, snap.sessions_rejected);
        match baseline {
            None => {
                baseline = Some(totals);
                single_worker_rate = report.sessions_per_second();
            }
            Some(expected) => assert_eq!(totals, expected, "worker count must not change verdicts"),
        }
        println!(
            "    {:>2} workers: {:>7.0} sessions/s (speedup {:>4.2}x), {} accepted / {} rejected",
            workers,
            report.sessions_per_second(),
            report.sessions_per_second() / single_worker_rate.max(1e-9),
            snap.sessions_accepted,
            snap.sessions_rejected
        );
    }
    println!("  verdict totals identical at every worker count (deterministic scheduler)");
}
