//! §4.1 false-negative rate of the error correction.
//!
//! Paper: "considering the error correction mechanism used, our PUF
//! exhibits only a false negative rate of 1.53 × 10⁻⁷". The paper states
//! its BCH[32,6,16] code "can correct up to 16 bit errors"; at the measured
//! 11.3 % bit-error rate, the binomial tail `P(X ≥ 16)` is exactly
//! 1.5 × 10⁻⁷ — so this experiment reproduces the paper's computation and
//! then reports what a real `[32,6,16]` decoder (guaranteed radius 7,
//! maximum-likelihood beyond) actually achieves:
//!
//! 1. the paper's analytic method (binomial tail at the measured BER),
//! 2. the decoder-aware FNR on raw single-shot responses (Poisson–binomial
//!    per-bit flip probabilities × Monte-Carlo decoder failure profile,
//!    cross-checked by direct decoding), and
//! 3. the deployment path: 5-fold temporal majority voting in the PUF
//!    post-processing, which crushes the weakly-unstable bits and brings
//!    the decoder-aware rate down to the paper's regime.

use pufatt_alupuf::challenge::Challenge;
use pufatt_alupuf::device::{AluPufConfig, AluPufDesign, PufInstance};
use pufatt_alupuf::emulate::PufEmulator;
use pufatt_bench::{header, row, sample_count, timed};
use pufatt_ecc::analysis::FailureProfile;
use pufatt_ecc::gf2::BitVec;
use pufatt_ecc::rm::ReedMuller1;
use pufatt_ecc::ReverseFuzzyExtractor;
use pufatt_silicon::env::Environment;
use pufatt_silicon::variation::ChipSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Binomial tail P(X >= k) for X ~ Bin(n, p).
fn binomial_tail(n: u32, p: f64, k: u32) -> f64 {
    let mut pmf = (1.0 - p).powi(n as i32);
    let mut acc = if k == 0 { pmf } else { 0.0 };
    for x in 1..=n {
        pmf *= (n - x + 1) as f64 / x as f64 * p / (1.0 - p);
        if x >= k {
            acc += pmf;
        }
    }
    acc
}

fn main() {
    header("FNR", "False-negative rate of BCH[32,6,16] reverse fuzzy extraction (paper 4.1)");
    let challenges_n = sample_count(400, 20_000);
    let repeats = 30;
    const VOTES: u32 = 5;
    println!("  configuration: {challenges_n} challenges x {repeats} repeats; deployment voting = {VOTES}");

    let design = AluPufDesign::new(AluPufConfig::paper_32bit());
    let mut rng = ChaCha8Rng::seed_from_u64(0xF28);
    let chip = design.fabricate(&ChipSampler::new(), &mut rng);
    let instance = PufInstance::new(&design, &chip, Environment::nominal());
    let emulator = PufEmulator::enroll(&design, &chip, Environment::nominal());
    let fe = ReverseFuzzyExtractor::new(ReedMuller1::bch_32_6_16());

    let profile =
        timed("decoder failure profile", || FailureProfile::estimate(&ReedMuller1::bch_32_6_16(), 4_000, &mut rng));

    let mut mean_errors_raw = 0.0;
    let mut mean_errors_voted = 0.0;
    let mut fnr_raw_analytic = 0.0;
    let mut fnr_voted_analytic = 0.0;
    let mut direct_raw_failures = 0u64;
    let mut direct_voted_failures = 0u64;
    let mut direct_trials = 0u64;
    timed("device sampling", || {
        for _ in 0..challenges_n {
            let ch = Challenge::random(&mut rng, 32);
            let reference = emulator.emulate(ch);
            let ref_bits = BitVec::from_word(reference.bits(), 32);
            let mut flips_raw = [0u32; 32];
            let mut flips_voted = [0u32; 32];
            for _ in 0..repeats {
                let raw = instance.evaluate(ch, &mut rng);
                let voted = instance.evaluate_voted(ch, VOTES, &mut rng);
                for (b, (fr, fv)) in flips_raw.iter_mut().zip(flips_voted.iter_mut()).enumerate() {
                    *fr += (((raw.bits() ^ reference.bits()) >> b) & 1) as u32;
                    *fv += (((voted.bits() ^ reference.bits()) >> b) & 1) as u32;
                }
                for (resp, failures) in [(raw, &mut direct_raw_failures), (voted, &mut direct_voted_failures)] {
                    let helper = fe.generate(&BitVec::from_word(resp.bits(), 32)).expect("32-bit");
                    match fe.reproduce(&ref_bits, &helper) {
                        Ok(rec) if rec.response.as_word() == resp.bits() => {}
                        _ => *failures += 1,
                    }
                }
                direct_trials += 1;
            }
            let p_raw: Vec<f64> = flips_raw.iter().map(|&f| f as f64 / repeats as f64).collect();
            let p_voted: Vec<f64> = flips_voted.iter().map(|&f| f as f64 / repeats as f64).collect();
            mean_errors_raw += p_raw.iter().sum::<f64>();
            mean_errors_voted += p_voted.iter().sum::<f64>();
            fnr_raw_analytic += profile.false_negative_rate(&p_raw);
            fnr_voted_analytic += profile.false_negative_rate(&p_voted);
        }
    });
    mean_errors_raw /= challenges_n as f64;
    mean_errors_voted /= challenges_n as f64;
    fnr_raw_analytic /= challenges_n as f64;
    fnr_voted_analytic /= challenges_n as f64;

    let ber_raw = mean_errors_raw / 32.0;
    let paper_method_at_measured_ber = binomial_tail(32, ber_raw, 16);
    let paper_method_at_paper_ber = binomial_tail(32, 0.113, 16);

    row(
        "mean raw bit errors per response",
        "3.62 b (11.3%)",
        &format!("{:.2} b ({:.1}%)", mean_errors_raw, 100.0 * ber_raw),
    );
    row(
        "paper's method: P(X>=16) at paper BER 11.3%",
        "1.53e-7",
        &format!("{paper_method_at_paper_ber:.2e}"),
    );
    row("paper's method at our measured BER", "-", &format!("{paper_method_at_measured_ber:.2e}"));
    println!();
    row("decoder-aware FNR, raw single-shot (analytic)", "-", &format!("{fnr_raw_analytic:.2e}"));
    row(
        "decoder-aware FNR, raw single-shot (direct MC)",
        "-",
        &format!(
            "{} / {} ({:.1e})",
            direct_raw_failures,
            direct_trials,
            direct_raw_failures as f64 / direct_trials as f64
        ),
    );
    println!();
    row(
        "mean bit errors after 5-fold voting",
        "-",
        &format!("{:.2} b ({:.1}%)", mean_errors_voted, 100.0 * mean_errors_voted / 32.0),
    );
    row("decoder-aware FNR, voted (analytic)", "-", &format!("{fnr_voted_analytic:.2e}"));
    row(
        "decoder-aware FNR, voted (direct MC)",
        "-",
        &format!(
            "{} / {} ({:.1e})",
            direct_voted_failures,
            direct_trials,
            direct_voted_failures as f64 / direct_trials as f64
        ),
    );
    println!();
    println!("  Finding: the paper's 1.53e-7 corresponds to assuming the [32,6,16] code");
    println!("  corrects 16 errors; true ML decoding guarantees 7 (most patterns to ~9),");
    println!("  so the raw single-shot FNR is orders of magnitude higher. Temporal");
    println!("  majority voting in the post-processing restores the paper's regime.");

    // The paper's computation must reproduce at its stated BER to within
    // an order of magnitude (the exact tail convention — >= 16 vs > 16 —
    // and BER rounding are not specified in the paper).
    assert!(
        (2.0e-8..8.0e-7).contains(&paper_method_at_paper_ber),
        "paper-method FNR at 11.3% BER should be ~1.5e-7: {paper_method_at_paper_ber:.3e}"
    );
    assert!(fnr_voted_analytic < fnr_raw_analytic, "voting must reduce the FNR");
    assert!(fnr_voted_analytic < 1e-3, "voted FNR out of deployment regime: {fnr_voted_analytic}");
}
