//! The chaos session runner: one attestation session driven through a
//! [`LossyChannel`] under a [`FaultPlan`], with verifier-side retry,
//! exponential backoff, and explicit deadline enforcement.
//!
//! The retry state machine (documented in DESIGN.md §9):
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            │                 attempt k ≤ max                │
//!            ▼                                                │
//!   send request ──drop──▶ wait attempt_timeout ──┐           │
//!        │                                        │           │
//!     prover attests (faults apply)               ├─▶ backoff ┤
//!        │                                        │  2^(k-1)·b│
//!   send report ───drop──▶ wait attempt_timeout ──┘  (capped) │
//!        │                                                    │
//!     verify_timed ──reject────────────────────▶──────────────┘
//!        │                     any point: elapsed > deadline ──▶ Err(Timeout)
//!     accept ──▶ Ok            all attempts lost ──▶ Err(ChannelLost)
//!                              retries exhausted  ──▶ Ok(rejected verdict)
//! ```
//!
//! Everything is simulated time: drops cost the verifier its per-attempt
//! timeout, backoff delays accumulate into the session's elapsed time, and
//! no thread ever sleeps — which is also why chaos campaigns stay
//! deterministic at any worker count.

use crate::channel::{Delivery, LossyChannel};
use crate::plan::FaultPlan;
use pufatt::protocol::{run_session, AttestationRequest, MidTraversalTamper, ProverDevice, Verifier};
use pufatt::{PufattError, Verdict};
use rand::Rng;

/// XOR mask the chaos runner applies when a plan schedules mid-traversal
/// tamper. Exported so resume logic can recognise (and re-apply or undo)
/// the exact memory mutation a tampered session leaves behind.
pub const MID_TRAVERSAL_XOR: u32 = 0x5EED_5EED;

/// Traversal cycle at which the scheduled tamper fires.
pub const MID_TRAVERSAL_CYCLE: u64 = 1_000;

/// Cell the scheduled tamper targets, given the prover's layout: a word
/// just below the x0 cell, inside the attested region but outside the
/// cells the next provisioning rewrites.
pub fn mid_traversal_addr(layout: &pufatt_swatt::SwattLayout) -> u32 {
    layout.x0_cell.saturating_sub(8)
}

/// When the verifier retries, how long it waits, and when it gives up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per session (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_s · 2^(k-1)`, capped at
    /// [`RetryPolicy::backoff_cap_s`].
    pub backoff_base_s: f64,
    /// Upper bound on a single backoff wait.
    pub backoff_cap_s: f64,
    /// How long the verifier waits for a report before declaring the
    /// attempt lost (a dropped message costs exactly this much time).
    pub attempt_timeout_s: f64,
    /// Hard session deadline: once total elapsed time crosses it the
    /// session fails with [`PufattError::Timeout`], whatever else happened.
    pub deadline_s: f64,
}

impl RetryPolicy {
    /// Derives a policy from a verifier's calibrated δ: the verifier waits
    /// `2 δ` per attempt (a report later than that is either lost or
    /// useless, since `elapsed > δ` already rejects), backs off from 50 ms,
    /// and budgets the deadline so that `max_attempts` fully-lost attempts
    /// plus their backoffs still fit — i.e. exhausting the channel yields
    /// [`PufattError::ChannelLost`], not a premature timeout.
    pub fn for_verifier(verifier: &Verifier, max_attempts: u32) -> Self {
        let max_attempts = max_attempts.max(1);
        let attempt_timeout_s = 2.0 * verifier.delta_s;
        let backoff_base_s = 0.05;
        let backoff_cap_s = 0.8;
        let backoff_total: f64 = (1..max_attempts)
            .map(|k| (backoff_base_s * f64::from(1u32 << (k - 1).min(16))).min(backoff_cap_s))
            .sum();
        RetryPolicy {
            max_attempts,
            backoff_base_s,
            backoff_cap_s,
            attempt_timeout_s,
            deadline_s: f64::from(max_attempts) * attempt_timeout_s + backoff_total + verifier.delta_s,
        }
    }

    /// The backoff wait before retry `attempt` (1-based; attempt 1 has no
    /// backoff).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        (self.backoff_base_s * f64::from(1u32 << (attempt - 2).min(16))).min(self.backoff_cap_s)
    }
}

/// Everything one chaos session produced, whether it ended in a verdict or
/// a typed failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The session's result: an accept/reject [`Verdict`], or the typed
    /// error that ended it ([`PufattError::Timeout`],
    /// [`PufattError::ChannelLost`], or a prover fault).
    pub result: Result<Verdict, PufattError>,
    /// Attempts started (1 = first try succeeded or session died early).
    pub attempts: u32,
    /// Total simulated session time: transfers, compute, lost-message
    /// waits, and backoff.
    pub elapsed_s: f64,
    /// Request messages lost in transit.
    pub requests_dropped: u32,
    /// Report messages lost in transit.
    pub reports_dropped: u32,
    /// Messages that arrived in duplicate.
    pub duplicates: u32,
    /// Messages that arrived reordered.
    pub reordered: u32,
}

impl ChaosReport {
    /// Whether the verifier accepted the session.
    pub fn accepted(&self) -> bool {
        matches!(self.result, Ok(v) if v.accepted)
    }

    /// Whether the session died on the deadline or a fully lost channel
    /// (the outcomes that drive quarantine under flaky links).
    pub fn timed_out(&self) -> bool {
        matches!(self.result, Err(PufattError::Timeout { .. }) | Err(PufattError::ChannelLost { .. }))
    }

    /// Total messages dropped across both legs.
    pub fn messages_dropped(&self) -> u32 {
        self.requests_dropped + self.reports_dropped
    }
}

/// Applies a plan's *device-side* faults to a provisioned prover: response
/// bit-flips/bursts on the PUF, and the clock skew or overclock.
///
/// Overclock wins over skew when both are set, and couples the PUF to the
/// raised clock (the physically accurate §4.2 behaviour); skew leaves the
/// PUF at its safe timing (an honest drifting oscillator).
pub fn apply_device_faults(prover: &mut ProverDevice, plan: &FaultPlan) {
    prover.set_response_fault(plan.response_fault());
    let clock = prover.clock();
    if plan.overclock != 1.0 {
        prover.set_clock(clock.overclocked(plan.overclock), true);
    } else if plan.clock_skew != 1.0 {
        prover.set_clock(clock.overclocked(plan.clock_skew), false);
    }
}

/// Runs one attestation session through the lossy channel under the plan's
/// message and memory faults, with retry/backoff/deadline per `policy`.
///
/// Device-side faults (response flips, clock skew/overclock) are *not*
/// applied here — call [`apply_device_faults`] once per prover first; this
/// function only draws the per-session randomness from `rng`, so a fixed
/// `(plan, policy, rng seed)` triple replays the identical session.
pub fn run_chaos_session<R: Rng + ?Sized>(
    prover: &mut ProverDevice,
    verifier: &Verifier,
    channel: &LossyChannel,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    rng: &mut R,
) -> ChaosReport {
    let mut report = ChaosReport {
        result: Err(PufattError::ChannelLost { attempts: 0 }),
        attempts: 0,
        elapsed_s: 0.0,
        requests_dropped: 0,
        reports_dropped: 0,
        duplicates: 0,
        reordered: 0,
    };
    let mut last_verdict: Option<Verdict> = None;
    let max_attempts = policy.max_attempts.max(1);

    for attempt in 1..=max_attempts {
        report.attempts = attempt;
        report.elapsed_s += policy.backoff_s(attempt);
        if report.elapsed_s > policy.deadline_s {
            report.result = Err(PufattError::Timeout { elapsed_s: report.elapsed_s, deadline_s: policy.deadline_s });
            return report;
        }

        let request = AttestationRequest::random(rng);

        // Request leg: verifier → prover.
        let request_latency_s = match channel.transmit(request.wire_bits(), rng) {
            Delivery::Dropped => {
                report.requests_dropped += 1;
                report.elapsed_s += policy.attempt_timeout_s;
                continue;
            }
            Delivery::Delivered { latency_s, duplicated, reordered } => {
                report.duplicates += u32::from(duplicated);
                report.reordered += u32::from(reordered);
                latency_s
            }
        };

        // The prover computes; the plan may rewrite attested memory while
        // the traversal runs.
        let tamper = (plan.tamper_at_attempt == Some(attempt)).then(|| MidTraversalTamper {
            at_cycle: MID_TRAVERSAL_CYCLE,
            addr: mid_traversal_addr(&prover.layout()),
            xor: MID_TRAVERSAL_XOR,
        });
        let attestation = match prover.attest_with_tamper(request, tamper) {
            Ok(attestation) => attestation,
            Err(e) => {
                report.result = Err(e);
                return report;
            }
        };
        let compute_s = prover.clock().duration_ns(attestation.cycles) * 1e-9;

        // Report leg: prover → verifier.
        let report_latency_s = match channel.transmit(attestation.wire_bits(), rng) {
            Delivery::Dropped => {
                report.reports_dropped += 1;
                report.elapsed_s += policy.attempt_timeout_s;
                continue;
            }
            Delivery::Delivered { latency_s, duplicated, reordered } => {
                report.duplicates += u32::from(duplicated);
                report.reordered += u32::from(reordered);
                latency_s
            }
        };

        let attempt_elapsed_s = request_latency_s + compute_s + report_latency_s;
        report.elapsed_s += attempt_elapsed_s;
        if report.elapsed_s > policy.deadline_s {
            report.result = Err(PufattError::Timeout { elapsed_s: report.elapsed_s, deadline_s: policy.deadline_s });
            return report;
        }

        // The δ bound judges the attempt's own wire-to-wire time, not the
        // retries before it; the deadline above judges the whole session.
        let verdict = verifier.verify_timed(request, &attestation, attempt_elapsed_s);
        last_verdict = Some(verdict);
        if verdict.accepted {
            report.result = Ok(verdict);
            return report;
        }
    }

    report.result = match last_verdict {
        Some(verdict) => Ok(verdict),
        None => Err(PufattError::ChannelLost { attempts: report.attempts }),
    };
    report
}

/// Convenience wrapper for fault-free comparison runs: one clean session
/// through [`run_session`], shaped like a [`ChaosReport`].
///
/// # Errors
///
/// Propagates prover traps.
pub fn run_clean_session<R: Rng + ?Sized>(
    prover: &mut ProverDevice,
    verifier: &Verifier,
    rng: &mut R,
) -> Result<ChaosReport, PufattError> {
    let request = AttestationRequest::random(rng);
    let (verdict, _) = run_session(prover, verifier, request)?;
    Ok(ChaosReport {
        result: Ok(verdict),
        attempts: 1,
        elapsed_s: verdict.elapsed_s,
        requests_dropped: 0,
        reports_dropped: 0,
        duplicates: 0,
        reordered: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufatt::enroll::enroll;
    use pufatt::protocol::provision;
    use pufatt::Channel;
    use pufatt_alupuf::device::AluPufConfig;
    use pufatt_pe32::cpu::Clock;
    use pufatt_swatt::checksum::SwattParams;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_params() -> SwattParams {
        SwattParams { region_bits: 8, rounds: 256, puf_interval: 32 }
    }

    fn setup() -> (ProverDevice, Verifier) {
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let (p, v, _) =
            provision(&enrolled, small_params(), Clock::new(100.0), Channel::sensor_link(), 7, 1.10).unwrap();
        (p, v)
    }

    #[test]
    fn clean_plan_over_ideal_channel_accepts() {
        let (mut prover, verifier) = setup();
        let plan = FaultPlan::clean(1);
        apply_device_faults(&mut prover, &plan);
        let channel = LossyChannel::ideal(verifier.channel());
        let policy = RetryPolicy::for_verifier(&verifier, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        assert!(report.accepted(), "clean run must accept: {report:?}");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.messages_dropped(), 0);
    }

    #[test]
    fn total_loss_yields_channel_lost_not_a_panic() {
        let (mut prover, verifier) = setup();
        let plan = FaultPlan::clean(2).with_drops(1.0);
        let channel = LossyChannel::from_plan(verifier.channel(), &plan);
        let policy = RetryPolicy::for_verifier(&verifier, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        assert!(matches!(report.result, Err(PufattError::ChannelLost { attempts: 3 })), "{report:?}");
        assert!(report.timed_out());
        assert_eq!(report.requests_dropped, 3, "every request leg lost");
        assert!(report.elapsed_s >= 3.0 * policy.attempt_timeout_s);
    }

    #[test]
    fn drops_cost_time_and_retries_recover() {
        let (mut prover, verifier) = setup();
        // Heavy but not total loss: with 3 attempts at 50 % drop per leg,
        // seed 100 finds a delivered attempt.
        let plan = FaultPlan::clean(3).with_drops(0.5);
        let channel = LossyChannel::from_plan(verifier.channel(), &plan);
        let policy = RetryPolicy::for_verifier(&verifier, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        assert!(report.accepted(), "retries should eventually deliver: {report:?}");
        assert!(report.attempts > 1 || report.messages_dropped() == 0);
    }

    #[test]
    fn tight_deadline_yields_timeout_error() {
        let (mut prover, verifier) = setup();
        let plan = FaultPlan::clean(4);
        let channel = LossyChannel::ideal(verifier.channel());
        let mut policy = RetryPolicy::for_verifier(&verifier, 3);
        policy.deadline_s = 1e-9;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        assert!(matches!(report.result, Err(PufattError::Timeout { .. })), "{report:?}");
        assert!(report.timed_out());
    }

    #[test]
    fn beyond_t_bursts_are_rejected() {
        let (mut prover, verifier) = setup();
        // 9 > t = 7 flips on every raw evaluation: reconstruction cannot
        // track the prover, so the response never verifies.
        let plan = FaultPlan::clean(5).with_burst(9, 1);
        apply_device_faults(&mut prover, &plan);
        let channel = LossyChannel::ideal(verifier.channel());
        let policy = RetryPolicy::for_verifier(&verifier, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        let verdict = report.result.expect("messages flow; the verdict rejects");
        assert!(!verdict.accepted && !verdict.response_ok, "{verdict}");
    }

    #[test]
    fn slow_clock_skew_breaks_the_delta_bound() {
        let (mut prover, verifier) = setup();
        // A 3× slower oscillator: responses stay clean (PUF uncoupled) but
        // compute time triples, far past the 1.10-slack δ.
        let plan = FaultPlan::clean(6).with_clock_skew(1.0 / 3.0);
        apply_device_faults(&mut prover, &plan);
        let channel = LossyChannel::ideal(verifier.channel());
        let policy = RetryPolicy::for_verifier(&verifier, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        match report.result {
            Ok(verdict) => {
                assert!(!verdict.time_ok && !verdict.accepted, "slow prover must trip δ: {verdict}");
                assert!(verdict.response_ok, "skew without coupling leaves responses clean");
            }
            Err(PufattError::Timeout { .. }) => {} // tripled compute can also blow the deadline
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mid_traversal_tamper_is_detected() {
        // A longer traversal than the shared setup: with rounds ≈ 8× the
        // region size, the probability that the tampered cell is never
        // revisited after the write lands is e^-8-ish, and with a fixed
        // seed the outcome is pinned.
        let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0).unwrap();
        let params = SwattParams { region_bits: 8, rounds: 2048, puf_interval: 32 };
        let (mut prover, verifier, _) =
            provision(&enrolled, params, Clock::new(100.0), Channel::sensor_link(), 7, 1.10).unwrap();
        let plan = FaultPlan::clean(7).with_mid_traversal_tamper(1);
        apply_device_faults(&mut prover, &plan);
        let channel = LossyChannel::ideal(verifier.channel());
        let policy = RetryPolicy::for_verifier(&verifier, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
        let verdict = report.result.expect("tamper is a verdict, not an error");
        assert!(!verdict.response_ok, "a tamper landing 1k cycles in is re-read by later rounds: {verdict}");
    }

    #[test]
    fn same_seed_replays_the_identical_session() {
        let plan = FaultPlan::clean(8).with_drops(0.3).with_jitter_ms(3.0).with_bit_flips(0.02);
        let run = || {
            let (mut prover, verifier) = setup();
            apply_device_faults(&mut prover, &plan);
            let channel = LossyChannel::from_plan(verifier.channel(), &plan);
            let policy = RetryPolicy::for_verifier(&verifier, 4);
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng)
        };
        assert_eq!(run(), run(), "chaos must replay bit-for-bit");
    }
}
