//! The [`FaultPlan`] DSL: one seeded, declarative description of every
//! fault a scenario injects.
//!
//! A plan covers all four layers the robustness analysis cares about:
//!
//! | Layer      | Knobs                                   | Paper attack / failure it models        |
//! |------------|-----------------------------------------|-----------------------------------------|
//! | PUF        | `flip_rate`, `burst_weight/_period`     | excess noise vs. BCH t = 7 (§4.1)       |
//! | Transport  | `drop_rate`, `duplicate_rate`, `reorder_rate`, `jitter_ms` | lossy sensor links vs. the δ bound |
//! | Clock      | `clock_skew`, `overclock`               | honest drift vs. the §4.2 overclock attack |
//! | Memory     | `tamper_at_attempt`                     | mid-traversal TOCTOU rewrite (§4)       |
//!
//! Plans are plain data: two runs from the same plan and the same seeds
//! produce identical verdict sequences, which is what makes chaos results
//! reportable.

use pufatt::ResponseFault;
use std::fmt;

/// A complete, seeded description of the faults injected into one
/// attestation scenario. Build one with [`FaultPlan::clean`] plus the
/// `with_*` combinators, or parse the CLI syntax with [`FaultPlan::parse`].
///
/// All rates are probabilities in `[0, 1]`; all factors are multiplicative
/// with `1.0` meaning "nominal".
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for any randomness the plan's consumer draws (per-scenario
    /// streams should derive from it, e.g. per-device via splitmix).
    pub seed: u64,
    /// Independent per-bit flip probability on every raw PUF response.
    pub flip_rate: f64,
    /// Exact weight of the contiguous flip burst injected into raw PUF
    /// responses (0 disables bursts).
    pub burst_weight: u32,
    /// A burst lands on every `burst_period`-th raw evaluation
    /// (1 = every evaluation, 0 = never).
    pub burst_period: u32,
    /// Probability that a protocol message is dropped in transit.
    pub drop_rate: f64,
    /// Probability that a delivered message arrives twice.
    pub duplicate_rate: f64,
    /// Probability that a delivered message is overtaken by a later one
    /// (modelled as an extra latency penalty in a lockstep session).
    pub reorder_rate: f64,
    /// Upper bound of the uniform extra latency added per message leg, in
    /// seconds.
    pub jitter_s: f64,
    /// Honest clock drift: the prover's clock runs at `clock_skew ×`
    /// F_base with the PUF *uncoupled* (pure timing error; responses stay
    /// clean but slow provers trip the δ bound).
    pub clock_skew: f64,
    /// Overclocking attack factor: the clock is raised with the PUF
    /// *coupled*, so arbiter setup violations corrupt responses (§4.2).
    pub overclock: f64,
    /// Inject a mid-traversal memory tamper on this 1-based attempt of
    /// every session (`None` = never).
    pub tamper_at_attempt: Option<u32>,
}

impl FaultPlan {
    /// A plan that injects nothing — the clean baseline every chaos run is
    /// compared against.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            flip_rate: 0.0,
            burst_weight: 0,
            burst_period: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            jitter_s: 0.0,
            clock_skew: 1.0,
            overclock: 1.0,
            tamper_at_attempt: None,
        }
    }

    /// Adds independent per-bit PUF response flips.
    pub fn with_bit_flips(mut self, rate: f64) -> Self {
        self.flip_rate = rate;
        self
    }

    /// Adds an exact-weight contiguous flip burst every `period`-th raw
    /// evaluation.
    pub fn with_burst(mut self, weight: u32, period: u32) -> Self {
        self.burst_weight = weight;
        self.burst_period = period;
        self
    }

    /// Adds message drops.
    pub fn with_drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Adds message duplication.
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Adds message reordering.
    pub fn with_reorders(mut self, rate: f64) -> Self {
        self.reorder_rate = rate;
        self
    }

    /// Adds uniform latency jitter (milliseconds, for symmetry with the
    /// CLI syntax).
    pub fn with_jitter_ms(mut self, jitter_ms: f64) -> Self {
        self.jitter_s = jitter_ms * 1e-3;
        self
    }

    /// Sets honest clock drift (uncoupled; `1.05` = 5 % slow-side error
    /// budget consumed).
    pub fn with_clock_skew(mut self, factor: f64) -> Self {
        self.clock_skew = factor;
        self
    }

    /// Sets the coupled overclocking attack factor.
    pub fn with_overclock(mut self, factor: f64) -> Self {
        self.overclock = factor;
        self
    }

    /// Injects a mid-traversal memory tamper on the given 1-based attempt
    /// of every session.
    pub fn with_mid_traversal_tamper(mut self, attempt: u32) -> Self {
        self.tamper_at_attempt = Some(attempt.max(1));
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.response_fault().is_none()
            && self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.jitter_s == 0.0
            && self.clock_skew == 1.0
            && self.overclock == 1.0
            && self.tamper_at_attempt.is_none()
    }

    /// The PUF-layer part of the plan as the core crate's injection hook
    /// (`None` when the plan leaves responses clean).
    pub fn response_fault(&self) -> Option<ResponseFault> {
        let fault = ResponseFault {
            flip_probability: self.flip_rate,
            burst_weight: self.burst_weight,
            burst_period: self.burst_period,
        };
        fault.is_active().then_some(fault)
    }

    /// Parses the CLI fault-plan syntax: comma-separated `key=value`
    /// entries, e.g. `flip=0.01,burst=9@4,drop=0.05,dup=0.02,reorder=0.01,
    /// jitter-ms=2,skew=1.05,overclock=2.0,tamper=1`.
    ///
    /// | Key         | Value                | Meaning                                   |
    /// |-------------|----------------------|-------------------------------------------|
    /// | `flip`      | rate ∈ \[0, 1\]      | per-bit PUF response flips                |
    /// | `burst`     | `weight@period`      | exact-weight burst every Nth evaluation   |
    /// | `drop`      | rate ∈ \[0, 1\]      | message drops                             |
    /// | `dup`       | rate ∈ \[0, 1\]      | message duplication                       |
    /// | `reorder`   | rate ∈ \[0, 1\]      | message reordering                        |
    /// | `jitter-ms` | milliseconds ≥ 0     | uniform extra latency per leg             |
    /// | `skew`      | factor > 0           | honest clock drift (PUF uncoupled)        |
    /// | `overclock` | factor > 0           | coupled overclock attack                  |
    /// | `tamper`    | attempt ≥ 1          | mid-traversal memory tamper               |
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown key or out-of-range
    /// value.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::clean(seed);
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{entry}` is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|_| format!("`{key}`: cannot parse `{v}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("`{key}`: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            let factor = |v: &str| -> Result<f64, String> {
                let f: f64 = v.parse().map_err(|_| format!("`{key}`: cannot parse `{v}`"))?;
                if f <= 0.0 {
                    return Err(format!("`{key}`: factor must be positive, got {f}"));
                }
                Ok(f)
            };
            match key {
                "flip" => plan.flip_rate = rate(value)?,
                "burst" => {
                    let (weight, period) = value
                        .split_once('@')
                        .ok_or_else(|| format!("`burst` must be weight@period, got `{value}`"))?;
                    plan.burst_weight = weight.parse().map_err(|_| format!("`burst`: bad weight `{weight}`"))?;
                    plan.burst_period = period.parse().map_err(|_| format!("`burst`: bad period `{period}`"))?;
                    if plan.burst_period == 0 {
                        return Err("`burst`: period must be ≥ 1 (0 disables, so omit the key)".into());
                    }
                }
                "drop" => plan.drop_rate = rate(value)?,
                "dup" => plan.duplicate_rate = rate(value)?,
                "reorder" => plan.reorder_rate = rate(value)?,
                "jitter-ms" => {
                    let ms: f64 = value.parse().map_err(|_| format!("`jitter-ms`: cannot parse `{value}`"))?;
                    if ms < 0.0 {
                        return Err(format!("`jitter-ms`: must be ≥ 0, got {ms}"));
                    }
                    plan.jitter_s = ms * 1e-3;
                }
                "skew" => plan.clock_skew = factor(value)?,
                "overclock" => plan.overclock = factor(value)?,
                "tamper" => {
                    let attempt: u32 = value.parse().map_err(|_| format!("`tamper`: bad attempt `{value}`"))?;
                    if attempt == 0 {
                        return Err("`tamper`: attempts are 1-based".into());
                    }
                    plan.tamper_at_attempt = Some(attempt);
                }
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut parts = Vec::new();
        if self.flip_rate > 0.0 {
            parts.push(format!("flip={}", self.flip_rate));
        }
        if self.burst_weight > 0 && self.burst_period > 0 {
            parts.push(format!("burst={}@{}", self.burst_weight, self.burst_period));
        }
        if self.drop_rate > 0.0 {
            parts.push(format!("drop={}", self.drop_rate));
        }
        if self.duplicate_rate > 0.0 {
            parts.push(format!("dup={}", self.duplicate_rate));
        }
        if self.reorder_rate > 0.0 {
            parts.push(format!("reorder={}", self.reorder_rate));
        }
        if self.jitter_s > 0.0 {
            parts.push(format!("jitter-ms={}", self.jitter_s * 1e3));
        }
        if self.clock_skew != 1.0 {
            parts.push(format!("skew={}", self.clock_skew));
        }
        if self.overclock != 1.0 {
            parts.push(format!("overclock={}", self.overclock));
        }
        if let Some(at) = self.tamper_at_attempt {
            parts.push(format!("tamper={at}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_clean() {
        let plan = FaultPlan::clean(7);
        assert!(plan.is_clean());
        assert!(plan.response_fault().is_none());
        assert_eq!(plan.to_string(), "clean");
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::clean(1)
            .with_bit_flips(0.01)
            .with_burst(9, 4)
            .with_drops(0.1)
            .with_jitter_ms(2.0)
            .with_clock_skew(1.05);
        assert!(!plan.is_clean());
        let fault = plan.response_fault().expect("active fault");
        assert_eq!(fault.burst_weight, 9);
        assert!((plan.jitter_s - 0.002).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_display() {
        let spec = "flip=0.02,burst=9@4,drop=0.05,dup=0.01,reorder=0.03,jitter-ms=2,skew=1.05,overclock=2,tamper=1";
        let plan = FaultPlan::parse(spec, 42).expect("valid spec");
        let reparsed = FaultPlan::parse(&plan.to_string(), 42).expect("display is parseable");
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("flip=2.0", 0).is_err(), "rate above 1");
        assert!(FaultPlan::parse("bogus=1", 0).is_err(), "unknown key");
        assert!(FaultPlan::parse("burst=9", 0).is_err(), "burst needs @period");
        assert!(FaultPlan::parse("burst=9@0", 0).is_err(), "zero period");
        assert!(FaultPlan::parse("skew=0", 0).is_err(), "zero factor");
        assert!(FaultPlan::parse("tamper=0", 0).is_err(), "attempts are 1-based");
        assert!(FaultPlan::parse("flip", 0).is_err(), "missing value");
    }

    #[test]
    fn parse_of_empty_spec_is_clean() {
        assert!(FaultPlan::parse("", 3).expect("empty ok").is_clean());
    }
}
