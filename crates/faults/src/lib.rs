//! Fault injection and lossy-channel robustness for the PUFatt
//! reproduction (DAC 2014).
//!
//! The paper's protocol is specified over an ideal link: the verifier knows
//! the channel's transfer time, every message arrives, and the prover's
//! clock is exactly F_base. This crate is the gap between that model and a
//! deployable system — it injects the faults a fielded sensor node actually
//! sees, at every layer, deterministically:
//!
//! * [`plan`] — the [`FaultPlan`] DSL: one seeded description of PUF bit
//!   flips and bursts, message drops/duplicates/reorders/jitter, clock skew
//!   and overclocking, and mid-traversal memory tamper. Parsed from the CLI
//!   (`--fault-plan flip=0.01,drop=0.05,...`) or built with combinators.
//! * [`channel`] — the [`LossyChannel`]: the clean bandwidth/latency model
//!   plus seeded stochastic delivery.
//! * [`session`] — the chaos session runner: verifier-side retry with
//!   exponential backoff, per-attempt timeouts, and a hard session
//!   deadline, every failure a typed [`pufatt::PufattError`], never a
//!   panic.
//! * [`sweep`] — the `noise_sweep` experiment reproducing the paper's
//!   false-negative boundary at the code's `t = 7`.
//!
//! Everything runs in simulated time from caller-supplied seeds: the same
//! plan, policy, and seed replay the identical verdict sequence at any
//! parallelism, which is what lets CI assert on chaos outcomes.
//!
//! # Quickstart
//!
//! ```
//! use pufatt::enroll::enroll;
//! use pufatt::protocol::{provision, Channel};
//! use pufatt_alupuf::device::AluPufConfig;
//! use pufatt_faults::{apply_device_faults, run_chaos_session, FaultPlan, LossyChannel, RetryPolicy};
//! use pufatt_pe32::cpu::Clock;
//! use pufatt_swatt::checksum::SwattParams;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let enrolled = enroll(AluPufConfig::paper_32bit(), 42, 0)?;
//! let params = SwattParams { region_bits: 8, rounds: 256, puf_interval: 32 };
//! let (mut prover, verifier, _) =
//!     provision(&enrolled, params, Clock::new(100.0), Channel::sensor_link(), 7, 1.10)?;
//!
//! // A flaky link and a noisy-but-in-spec PUF. (Jitter is survivable only
//! // up to the δ slack — the bound judges real elapsed time.)
//! let plan = FaultPlan::parse("flip=0.01,drop=0.2", 1).map_err(std::io::Error::other)?;
//! apply_device_faults(&mut prover, &plan);
//! let channel = LossyChannel::from_plan(verifier.channel(), &plan);
//! let policy = RetryPolicy::for_verifier(&verifier, 5);
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);
//! let report = run_chaos_session(&mut prover, &verifier, &channel, &plan, &policy, &mut rng);
//! assert!(report.accepted(), "sub-t noise and 20% loss must be survivable: {report:?}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod plan;
pub mod session;
pub mod sweep;

pub use channel::{Delivery, LossyChannel};
pub use plan::FaultPlan;
pub use session::{
    apply_device_faults, mid_traversal_addr, run_chaos_session, run_clean_session, ChaosReport, RetryPolicy,
    MID_TRAVERSAL_CYCLE, MID_TRAVERSAL_XOR,
};
pub use sweep::{run_noise_sweep, NoiseSweep, SweepConfig, WeightRow, PAPER_T};
