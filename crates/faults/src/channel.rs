//! The lossy channel: the clean [`Channel`] bandwidth/latency model plus
//! jitter, drops, duplication, and reordering.
//!
//! The paper's δ-bound argument assumes the verifier can predict transfer
//! time; a real sensor link cannot promise that. This model keeps the
//! deterministic part (bandwidth + base latency) in [`Channel`] and layers
//! the stochastic part on top, drawn from a caller-supplied seeded RNG so
//! a chaos run replays bit-for-bit.

use crate::plan::FaultPlan;
use pufatt::Channel;
use rand::Rng;

/// A channel that can lose, delay, duplicate, and reorder messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyChannel {
    /// The deterministic transfer model (bandwidth + one-way base latency).
    pub base: Channel,
    /// Upper bound of the uniform extra latency per message leg, seconds.
    pub jitter_s: f64,
    /// Probability a message is dropped.
    pub drop_rate: f64,
    /// Probability a delivered message arrives twice.
    pub duplicate_rate: f64,
    /// Probability a delivered message is overtaken (arrives an extra
    /// jitter-plus-latency window late).
    pub reorder_rate: f64,
}

/// What happened to one message leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// The message arrived after `latency_s` seconds.
    Delivered {
        /// End-to-end latency of this leg, including jitter and any
        /// reordering penalty.
        latency_s: f64,
        /// A duplicate copy also arrived (the receiver deduplicates; the
        /// cost is wasted bandwidth, counted by the session runner).
        duplicated: bool,
        /// The message was overtaken by later traffic.
        reordered: bool,
    },
    /// The message was lost.
    Dropped,
}

impl LossyChannel {
    /// A lossless, jitter-free wrapper — behaves exactly like `base`.
    pub fn ideal(base: Channel) -> Self {
        LossyChannel {
            base,
            jitter_s: 0.0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
        }
    }

    /// Builds the channel a [`FaultPlan`] describes over a base transfer
    /// model.
    pub fn from_plan(base: Channel, plan: &FaultPlan) -> Self {
        LossyChannel {
            base,
            jitter_s: plan.jitter_s,
            drop_rate: plan.drop_rate,
            duplicate_rate: plan.duplicate_rate,
            reorder_rate: plan.reorder_rate,
        }
    }

    /// Whether the channel can ever deviate from its base model.
    pub fn is_ideal(&self) -> bool {
        self.jitter_s == 0.0 && self.drop_rate == 0.0 && self.duplicate_rate == 0.0 && self.reorder_rate == 0.0
    }

    /// Simulates one message leg of `bits` bits.
    pub fn transmit<R: Rng + ?Sized>(&self, bits: u64, rng: &mut R) -> Delivery {
        // Fixed draw order keeps the stream identical whatever the rates
        // are: drop, jitter, duplicate, reorder.
        let dropped = self.drop_rate > 0.0 && rng.gen::<f64>() < self.drop_rate;
        let jitter = if self.jitter_s > 0.0 { rng.gen::<f64>() * self.jitter_s } else { 0.0 };
        let duplicated = self.duplicate_rate > 0.0 && rng.gen::<f64>() < self.duplicate_rate;
        let reordered = self.reorder_rate > 0.0 && rng.gen::<f64>() < self.reorder_rate;
        if dropped {
            return Delivery::Dropped;
        }
        let mut latency_s = self.base.transfer_s(bits) + jitter;
        if reordered {
            // Overtaken: the message sits behind the traffic that passed
            // it, one extra base-latency-plus-jitter window.
            latency_s += self.base.latency_s + self.jitter_s;
        }
        Delivery::Delivered { latency_s, duplicated, reordered }
    }

    /// Parses the CLI channel syntax: a preset name optionally followed by
    /// `key=value` overrides, e.g. `sensor`, `lan,jitter-ms=2`,
    /// `satellite,drop=0.1,dup=0.02,reorder=0.05`.
    ///
    /// Presets: `sensor` (250 kbit/s, 2 ms — the paper's 802.15.4-class
    /// link), `lan` (100 Mbit/s, 0.2 ms), `satellite` (1 Mbit/s, 280 ms).
    /// Unset stochastic knobs fall back to the values in `plan`, so
    /// `--channel sensor --fault-plan drop=0.1` behaves as expected.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown preset or key.
    pub fn parse(spec: &str, plan: &FaultPlan) -> Result<Self, String> {
        let mut entries = spec.split(',').map(str::trim).filter(|e| !e.is_empty());
        let preset = entries.next().unwrap_or("sensor");
        let base = match preset {
            "sensor" => Channel::sensor_link(),
            "lan" => Channel { bandwidth_bps: 100e6, latency_s: 0.0002 },
            "satellite" => Channel { bandwidth_bps: 1e6, latency_s: 0.280 },
            other => return Err(format!("unknown channel preset `{other}` (expected sensor, lan, or satellite)")),
        };
        let mut channel = LossyChannel::from_plan(base, plan);
        for entry in entries {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("channel entry `{entry}` is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|_| format!("`{key}`: cannot parse `{v}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("`{key}`: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "drop" => channel.drop_rate = rate(value)?,
                "dup" => channel.duplicate_rate = rate(value)?,
                "reorder" => channel.reorder_rate = rate(value)?,
                "jitter-ms" => {
                    let ms: f64 = value.parse().map_err(|_| format!("`jitter-ms`: cannot parse `{value}`"))?;
                    if ms < 0.0 {
                        return Err(format!("`jitter-ms`: must be ≥ 0, got {ms}"));
                    }
                    channel.jitter_s = ms * 1e-3;
                }
                other => return Err(format!("unknown channel key `{other}`")),
            }
        }
        Ok(channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_channel_matches_base_model() {
        let ch = LossyChannel::ideal(Channel::sensor_link());
        assert!(ch.is_ideal());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..32 {
            match ch.transmit(1000, &mut rng) {
                Delivery::Delivered { latency_s, duplicated, reordered } => {
                    assert!((latency_s - ch.base.transfer_s(1000)).abs() < 1e-12);
                    assert!(!duplicated && !reordered);
                }
                Delivery::Dropped => panic!("ideal channels never drop"),
            }
        }
    }

    #[test]
    fn drop_rate_is_respected_statistically() {
        let mut ch = LossyChannel::ideal(Channel::sensor_link());
        ch.drop_rate = 0.5;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let drops = (0..1000)
            .filter(|_| matches!(ch.transmit(64, &mut rng), Delivery::Dropped))
            .count();
        assert!((350..=650).contains(&drops), "≈500 of 1000 at p=0.5, got {drops}");
    }

    #[test]
    fn jitter_and_reorder_add_latency() {
        let mut ch = LossyChannel::ideal(Channel::sensor_link());
        ch.jitter_s = 0.010;
        ch.reorder_rate = 1.0;
        let floor = ch.base.transfer_s(64) + ch.base.latency_s;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..16 {
            let Delivery::Delivered { latency_s, reordered, .. } = ch.transmit(64, &mut rng) else {
                panic!("no drops configured");
            };
            assert!(reordered);
            assert!(latency_s >= floor, "{latency_s} vs floor {floor}");
            assert!(latency_s <= floor + 2.0 * ch.jitter_s + 1e-12);
        }
    }

    #[test]
    fn same_seed_same_delivery_stream() {
        let mut ch = LossyChannel::ideal(Channel::sensor_link());
        ch.drop_rate = 0.3;
        ch.jitter_s = 0.004;
        ch.duplicate_rate = 0.2;
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| ch.transmit(512, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should diverge");
    }

    #[test]
    fn parse_presets_and_overrides() {
        let plan = FaultPlan::clean(0).with_drops(0.1);
        let ch = LossyChannel::parse("sensor", &plan).expect("preset ok");
        assert_eq!(ch.drop_rate, 0.1, "plan rates flow through");
        let ch = LossyChannel::parse("lan,drop=0.25,jitter-ms=3", &plan).expect("overrides ok");
        assert_eq!(ch.drop_rate, 0.25, "explicit channel keys win");
        assert!((ch.jitter_s - 0.003).abs() < 1e-12);
        assert!(ch.base.bandwidth_bps > 1e7);
        assert!(LossyChannel::parse("carrier-pigeon", &plan).is_err());
        assert!(LossyChannel::parse("sensor,bogus=1", &plan).is_err());
    }
}
